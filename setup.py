"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so
PEP 517 editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-use-pep517`` perform a classic develop install;
all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
