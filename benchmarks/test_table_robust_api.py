"""T4 — the derived robust API, quantified (Fig. 2's output as a table).

Per function: probes used, the weakest robust type of each parameter,
and whether fault injection strengthened the declared type.  Includes
the paper's worked example — strcpy's first argument "actually has to be
a pointer to a writable buffer with enough space to accommodate the
source string" — as a hard assertion.
"""

from __future__ import annotations

from collections import Counter

from repro.robust import RobustAPIDocument


def test_t4_robust_api_table(campaign_result, derivations, registry,
                             manpages, artifact, benchmark):
    rows = [
        "T4 — derived robust API (weakest robust argument types)",
        f"{'function':<12} {'param':<8} {'declared':<16} "
        f"{'robust type':<22} {'rank':>4}",
    ]
    strengthened = 0
    total = 0
    for name in sorted(derivations):
        derivation = derivations[name]
        for param in derivation.params:
            total += 1
            if param.strengthened:
                strengthened += 1
            rank = param.robust_type.rank if param.robust_type else -1
            robust = param.robust_type.name if param.robust_type else "UNSAT"
            rows.append(f"{name:<12} {param.param:<8} "
                        f"{param.declared:<16} {robust:<22} {rank:>4}")
    rows.append(f"strengthened: {strengthened}/{total} parameters")
    artifact("t4_robust_api_table", "\n".join(rows))

    # the paper's worked example
    strcpy = derivations["strcpy"]
    assert strcpy.param("dest").robust_type.name == "writable_capacity"
    assert strcpy.param("src").robust_type.name == "terminated_string"

    # no parameter may be unsatisfiable on this library
    assert all(
        p.robust_type is not None
        for d in derivations.values() for p in d.params
    )
    # a majority of pointer-taking parameters get strengthened
    assert strengthened / total > 0.4
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # artifact test: run once under --benchmark-only

def test_t4_distribution_by_type(derivations, artifact, benchmark):
    """How often each robust type is the answer (the API's shape)."""
    counts = Counter(
        p.robust_type.name
        for d in derivations.values() for p in d.params if p.robust_type
    )
    rows = ["T4b — robust-type frequency"]
    for name, count in counts.most_common():
        rows.append(f"  {name:<24} {count}")
    artifact("t4_type_distribution", "\n".join(rows))
    assert counts["terminated_string"] >= 3
    assert counts["uchar_or_eof"] >= 1
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # artifact test: run once under --benchmark-only

def test_t4_declaration_document_speed(benchmark, registry, manpages,
                                       derivations):
    """Building + serialising the full declaration document."""
    def build():
        return RobustAPIDocument.build(registry, manpages, derivations).to_xml()

    xml = benchmark(build)
    assert "robust-type" in xml


def test_t4_xml_parse_speed(benchmark, registry, manpages, derivations):
    """Parsing the declaration file back (a consumer's cost)."""
    xml = RobustAPIDocument.build(registry, manpages, derivations).to_xml()
    document = benchmark(lambda: RobustAPIDocument.from_xml(xml))
    assert len(document.functions) == 106
