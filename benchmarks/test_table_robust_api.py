"""T4 — the derived robust API, quantified (Fig. 2's output as a table).

Per function: probes used, the weakest robust type of each parameter,
and whether fault injection strengthened the declared type.  Includes
the paper's worked example — strcpy's first argument "actually has to be
a pointer to a writable buffer with enough space to accommodate the
source string" — as a hard assertion.

The full-coverage half (``BENCH_robust_api.json``) quantifies the
introspection-derived check plans: functions covered, parameters with
plans, parity with the hand-tuned document on the probed subset, and
the compiled-vs-interpreted dispatch overhead of plan-sourced checks
(gated at ``HEALERS_DISPATCH_GATE``, like the T2 overhead gate).
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from collections import Counter

from repro.libc import math_registry
from repro.linker import DynamicLinker, SharedLibrary
from repro.robust import RobustAPIDocument, coverage_report, derive_check_plans
from repro.runtime import SimProcess
from repro.wrappers import PRESETS, WrapperFactory

DISPATCH_GATE = float(os.environ.get("HEALERS_DISPATCH_GATE", "3.0"))


def test_t4_robust_api_table(campaign_result, derivations, registry,
                             manpages, artifact, benchmark):
    rows = [
        "T4 — derived robust API (weakest robust argument types)",
        f"{'function':<12} {'param':<8} {'declared':<16} "
        f"{'robust type':<22} {'rank':>4}",
    ]
    strengthened = 0
    total = 0
    for name in sorted(derivations):
        derivation = derivations[name]
        for param in derivation.params:
            total += 1
            if param.strengthened:
                strengthened += 1
            rank = param.robust_type.rank if param.robust_type else -1
            robust = param.robust_type.name if param.robust_type else "UNSAT"
            rows.append(f"{name:<12} {param.param:<8} "
                        f"{param.declared:<16} {robust:<22} {rank:>4}")
    rows.append(f"strengthened: {strengthened}/{total} parameters")
    artifact("t4_robust_api_table", "\n".join(rows))

    # the paper's worked example
    strcpy = derivations["strcpy"]
    assert strcpy.param("dest").robust_type.name == "writable_capacity"
    assert strcpy.param("src").robust_type.name == "terminated_string"

    # no parameter may be unsatisfiable on this library
    assert all(
        p.robust_type is not None
        for d in derivations.values() for p in d.params
    )
    # a majority of pointer-taking parameters get strengthened
    assert strengthened / total > 0.4
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # artifact test: run once under --benchmark-only

def test_t4_distribution_by_type(derivations, artifact, benchmark):
    """How often each robust type is the answer (the API's shape)."""
    counts = Counter(
        p.robust_type.name
        for d in derivations.values() for p in d.params if p.robust_type
    )
    rows = ["T4b — robust-type frequency"]
    for name, count in counts.most_common():
        rows.append(f"  {name:<24} {count}")
    artifact("t4_type_distribution", "\n".join(rows))
    assert counts["terminated_string"] >= 3
    assert counts["uchar_or_eof"] >= 1
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # artifact test: run once under --benchmark-only

def test_t4_declaration_document_speed(benchmark, registry, manpages,
                                       derivations):
    """Building + serialising the full declaration document."""
    def build():
        return RobustAPIDocument.build(registry, manpages, derivations).to_xml()

    xml = benchmark(build)
    assert "robust-type" in xml


def test_t4_xml_parse_speed(benchmark, registry, manpages, derivations):
    """Parsing the declaration file back (a consumer's cost)."""
    xml = RobustAPIDocument.build(registry, manpages, derivations).to_xml()
    document = benchmark(lambda: RobustAPIDocument.from_xml(xml))
    assert len(document.functions) == 106


def _linker_with(registry, api_document, preset, backend="compiled"):
    linker = DynamicLinker()
    linker.add_library(SharedLibrary.from_registry(registry))
    if preset != "none":
        WrapperFactory(registry, api_document).preload(
            linker, PRESETS[preset], backend=backend
        )
    return linker


def test_full_coverage_check_plans(registry, manpages, derivations,
                                   api_document, artifact, benchmark):
    """BENCH_robust_api.json — the full-coverage headline numbers.

    Three claims, quantified in one artifact: (1) introspection derives
    a check plan for every function in both bundled libraries (123/123,
    no injection required); (2) on the fault-injected subset the
    introspected document reproduces the hand-tuned checks
    parameter-for-parameter; (3) the plan-sourced robustness wrapper
    pays no extra dispatch cost — the compiled backend still beats the
    interpreted hook chain by ``DISPATCH_GATE``x on a machinery-
    dominated call (same interleaved-minimum protocol as T2).
    """
    plans = derive_check_plans(registry, manpages, derivations)
    plans.update(derive_check_plans(math_registry(), manpages))
    report = coverage_report(plans)
    assert report["functions"] == 123
    assert report["params_by_source"], "every param must carry a source"
    assert sum(report["params_by_source"].values()) == report["params"]

    # (2) parity with the hand-tuned document on the probed subset
    introspected = RobustAPIDocument.build_introspected(
        registry, manpages, derivations)
    mismatches = []
    for name in sorted(derivations):
        hand = api_document.functions[name]
        derived = introspected.functions[name]
        for hp, dp in zip(hand.params, derived.params):
            if (hp.check, hp.robust_type) != (dp.check, dp.robust_type):
                mismatches.append(f"{name}.{hp.name}")
    assert not mismatches, f"derived plans diverge: {mismatches}"

    # (3) dispatch overhead of the plan-sourced robustness wrapper
    repeats, rounds = 20000, 7
    subjects = {
        "none": _linker_with(registry, introspected, "none"),
        "compiled": _linker_with(registry, introspected, "robustness",
                                 backend="compiled"),
        "interpreted": _linker_with(registry, introspected, "robustness",
                                    backend="interpreted"),
    }
    symbols = {k: lk.resolve("toupper").symbol
               for k, lk in subjects.items()}
    proc = SimProcess()
    for symbol in symbols.values():  # warm resolution + caches
        symbol(proc, ord("a"))
    best = {k: float("inf") for k in symbols}
    for _ in range(rounds):
        for kind, symbol in symbols.items():
            start = time.perf_counter_ns()
            for _ in range(repeats):
                symbol(proc, ord("a"))
            cost = (time.perf_counter_ns() - start) / repeats
            best[kind] = min(best[kind], cost)
    overhead_compiled = max(best["compiled"] - best["none"], 1e-9)
    overhead_interp = max(best["interpreted"] - best["none"], 1e-9)
    dispatch_speedup = overhead_interp / overhead_compiled

    payload = {
        "functions_covered": report["functions"],
        "functions_with_checks": report["functions_with_checks"],
        "params": report["params"],
        "params_with_plans": report["params_with_plans"],
        "params_by_source": report["params_by_source"],
        "relational_params": report["relational_params"],
        "hand_tuned_parity": {
            "functions_compared": len(derivations),
            "param_mismatches": len(mismatches),
        },
        "dispatch": {
            "case": "toupper via introspected robustness wrapper",
            "repeats_per_round": repeats,
            "rounds": rounds,
            "unwrapped_ns": round(best["none"], 1),
            "compiled_ns": round(best["compiled"], 1),
            "interpreted_ns": round(best["interpreted"], 1),
            "dispatch_overhead_compiled_ns": round(overhead_compiled, 1),
            "dispatch_overhead_interpreted_ns": round(overhead_interp, 1),
            "dispatch_speedup": round(dispatch_speedup, 2),
        },
        "gate": {"min_dispatch_speedup": DISPATCH_GATE},
    }
    out = pathlib.Path(__file__).parent / "out"
    out.mkdir(exist_ok=True)
    (out / "BENCH_robust_api.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    rows = [
        "full-coverage check plans (introspection-derived)",
        f"functions covered:    {report['functions']}/123",
        f"  with checks:        {report['functions_with_checks']}",
        f"params with plans:    {report['params_with_plans']}"
        f"/{report['params']}",
        f"  relational:         {report['relational_params']}",
        f"hand-tuned parity:    {len(derivations)} functions, "
        f"{len(mismatches)} mismatches",
        f"dispatch speedup:     {dispatch_speedup:.2f}x "
        f"(gate {DISPATCH_GATE}x)",
    ]
    artifact("full_coverage_check_plans", "\n".join(rows))

    assert dispatch_speedup >= DISPATCH_GATE, (
        f"introspected robustness wrapper: compiled dispatch only "
        f"{dispatch_speedup:.2f}x faster than the interpreted hook "
        f"chain (gate: {DISPATCH_GATE}x)"
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # artifact test: run once under --benchmark-only
