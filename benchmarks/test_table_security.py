"""T3 — security table ([3]-style): attack detection matrix.

Rows: the attack corpus.  Columns: defence configurations (none, heap
size-table only, full security wrapper, security + stack protector).
Cells: whether the attack achieved its goal.  Plus the false-positive
check over the benign corpus — [3]'s evaluation reported zero false
positives for the heap-containment wrappers.
"""

from __future__ import annotations

import pytest

from repro.apps import app_by_name, run_app, standard_system
from repro.linker import DynamicLinker, SharedLibrary
from repro.security.attacks import (
    ALL_ATTACKS,
    BENIGN_INPUTS,
    craft_stack_smash_protected,
)
from repro.security.policy import SecurityPolicy
from repro.wrappers import SECURITY, WrapperFactory
from repro.wrappers.presets import default_generator_registry

DEFENCES = ["none", "sizetable-only", "security", "security+stackguard"]


def make_linker(registry, api_document, defence):
    if defence == "none":
        return standard_system(registry)[1]
    linker = DynamicLinker()
    linker.add_library(SharedLibrary.from_registry(registry))
    if defence == "sizetable-only":
        policy = SecurityPolicy(reject_percent_n=False, safe_gets=False,
                                verify_heap="never")
    else:
        policy = SecurityPolicy()
    factory = WrapperFactory(registry, api_document,
                             generators=default_generator_registry(policy))
    factory.preload(linker, SECURITY)
    return linker


def run_attack(attack, linker, defence):
    stack_protect = defence == "security+stackguard"
    if attack.name == "stack-smash" and stack_protect:
        payload = craft_stack_smash_protected()
    else:
        payload = attack.payload()
    return run_app(attack.app, linker, stdin=payload,
                   stack_protect=stack_protect)


def test_t3_detection_matrix(registry, api_document, artifact, benchmark):
    """Attack × defence matrix with the expected containment pattern."""
    rows = [
        "T3 — attack containment matrix (H = hijacked/disrupted, "
        "c = contained)",
        f"{'attack':<18}" + "".join(f"{d:>22}" for d in DEFENCES),
    ]
    outcome = {}
    for attack in ALL_ATTACKS:
        cells = []
        for defence in DEFENCES:
            linker = make_linker(registry, api_document, defence)
            result = run_attack(attack, linker, defence)
            hijacked = attack.hijacked(result)
            outcome[(attack.name, defence)] = hijacked
            cells.append(f"{'H' if hijacked else 'c':>22}")
        rows.append(f"{attack.name:<18}" + "".join(cells))
    artifact("t3_security_matrix", "\n".join(rows))

    # every attack lands with no defence
    for attack in ALL_ATTACKS:
        assert outcome[(attack.name, "none")], attack.name
    # the bounds check (size table) alone stops the interception-visible
    # write overflows
    assert not outcome[("heap-smash", "sizetable-only")]
    # the full wrapper also stops the gets flood and stealth corruption
    assert not outcome[("gets-flood", "security")]
    assert not outcome[("stealth-corrupt", "security")]
    # stack smashing needs the stack protector, not the heap wrapper
    assert outcome[("stack-smash", "security")]
    assert not outcome[("stack-smash", "security+stackguard")]
    # with everything on, the whole corpus is contained
    for attack in ALL_ATTACKS:
        assert not outcome[(attack.name, "security+stackguard")], attack.name
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # artifact test: run once under --benchmark-only

def test_t3_false_positive_rate(registry, api_document, artifact, benchmark):
    """Benign corpus under the full wrapper: zero behaviour changes."""
    plain = make_linker(registry, api_document, "none")
    defended = make_linker(registry, api_document, "security")
    rows = ["T3b — benign corpus under the security wrapper"]
    false_positives = 0
    for app_name, stdin in sorted(BENIGN_INPUTS.items()):
        app = app_by_name(app_name)
        raw = run_app(app, plain, stdin=stdin)
        wrapped = run_app(app, defended, stdin=stdin)
        identical = (raw.stdout == wrapped.stdout
                     and raw.status == wrapped.status
                     and not wrapped.crashed)
        false_positives += 0 if identical else 1
        rows.append(f"  {app_name:<12} "
                    f"{'identical' if identical else 'CHANGED'}")
    rows.append(f"false positives: {false_positives}/{len(BENIGN_INPUTS)}")
    artifact("t3_false_positives", "\n".join(rows))
    assert false_positives == 0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # artifact test: run once under --benchmark-only

@pytest.mark.parametrize("defence", DEFENCES)
def test_t3_heap_smash_speed(benchmark, registry, api_document, defence):
    """Time of the heap-smash attempt under each defence."""
    linker = make_linker(registry, api_document, defence)
    attack = ALL_ATTACKS[0]
    assert attack.name == "heap-smash"
    result = benchmark(lambda: run_attack(attack, linker, defence))
    assert attack.hijacked(result) == (defence == "none")
