"""Ablation — hang-detection fuel threshold (DESIGN.md §5).

Fuel is the deterministic stand-in for the native harness's watchdog
timeout.  Too small a budget misclassifies legitimate work as hangs
(false HANGs on qsort's honest n·log n); too large just slows the sweep.
This ablation measures classification quality and sweep time across
budgets, validating the default.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import Outcome
from repro.injection import Campaign
from repro.runtime.sandbox import DEFAULT_PROBE_FUEL

BUDGETS = [2_000, 20_000, DEFAULT_PROBE_FUEL, 400_000]

#: probes that are *legitimate* heavy work (must not classify as HANG)
HEAVY_VALID = [("qsort", "nmemb", "bound_x1"),
               ("strcpy", "src", "long_string")]
#: probes that are *true* hangs at any reasonable budget
TRUE_HANGS = [("strlen", "s", "unterminated_huge"),
              ("strcpy", "src", "unterminated_huge")]

FUNCTIONS = sorted({f for f, _, _ in HEAVY_VALID + TRUE_HANGS})


def classify(registry, manpages, fuel):
    campaign = Campaign(registry, manpages=manpages, fuel=fuel)
    start = time.perf_counter()
    result = campaign.run(FUNCTIONS)
    elapsed = time.perf_counter() - start
    outcomes = {}
    for name, report in result.reports.items():
        for record in report.records:
            outcomes[(name, record.probe.param_name,
                      record.probe.value_label)] = record.outcome
    return outcomes, elapsed


def test_ablation_fuel_thresholds(registry, manpages, artifact, benchmark):
    rows = ["fuel-threshold ablation",
            f"{'budget':>9} {'false hangs':>12} {'missed hangs':>13} "
            f"{'sweep s':>8}"]
    stats = {}
    for budget in BUDGETS:
        outcomes, elapsed = classify(registry, manpages, budget)
        false_hangs = sum(
            1 for key in HEAVY_VALID if outcomes[key] == Outcome.HANG
        )
        missed_hangs = sum(
            1 for key in TRUE_HANGS
            if outcomes[key] not in (Outcome.HANG, Outcome.CRASH)
        )
        stats[budget] = (false_hangs, missed_hangs)
        rows.append(f"{budget:>9} {false_hangs:>12} {missed_hangs:>13} "
                    f"{elapsed:>8.2f}")
    artifact("ablation_fuel", "\n".join(rows))

    # tiny budgets misclassify honest work as hangs
    assert stats[2_000][0] > 0
    # the default budget has neither false nor missed hangs
    assert stats[DEFAULT_PROBE_FUEL] == (0, 0)
    # and a 4x budget agrees (the classification has converged)
    assert stats[400_000] == (0, 0)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # artifact test: run once under --benchmark-only

@pytest.mark.parametrize("budget", BUDGETS)
def test_ablation_fuel_sweep_time(benchmark, registry, manpages, budget):
    """Sweep time for one hang-heavy function at each budget."""
    campaign = Campaign(registry, manpages=manpages, fuel=budget)
    report = benchmark.pedantic(
        lambda: campaign.probe_function("strlen"), rounds=3, iterations=1
    )
    assert report.total_probes > 0
