"""Ablation — security-wrapper layers (DESIGN.md §5).

Which protection layer stops which attack class, and what each costs:
* size-table bounds enforcement alone,
* + heap verification at free sites,
* + canary-augmented allocator,
* + safe gets and the %n policy (the full wrapper).
"""

from __future__ import annotations

import pytest

from repro.apps import MSGFORMAT, run_app
from repro.linker import DynamicLinker, SharedLibrary
from repro.runtime import SimProcess
from repro.security.attacks import GETS_FLOOD, HEAP_SMASH, STEALTH_CORRUPT
from repro.security.policy import SecurityPolicy
from repro.wrappers import SECURITY, WrapperFactory
from repro.wrappers.presets import default_generator_registry

LAYERS = {
    "bounds-only": SecurityPolicy(reject_percent_n=False, safe_gets=False,
                                  verify_heap="never"),
    "bounds+verify": SecurityPolicy(reject_percent_n=False, safe_gets=False,
                                    verify_heap="free"),
    "full": SecurityPolicy(),
    "full+always-verify": SecurityPolicy(verify_heap="always"),
}


def deploy(registry, api_document, policy):
    linker = DynamicLinker()
    linker.add_library(SharedLibrary.from_registry(registry))
    factory = WrapperFactory(registry, api_document,
                             generators=default_generator_registry(policy))
    factory.preload(linker, SECURITY)
    return linker


def test_ablation_layer_coverage(registry, api_document, artifact, benchmark):
    """Coverage matrix: protection layer × attack."""
    attacks = [HEAP_SMASH, GETS_FLOOD, STEALTH_CORRUPT]
    rows = ["security-layer ablation (c = contained, H = hit)",
            f"{'layer':<20}" + "".join(f"{a.name:>18}" for a in attacks)]
    contained = {}
    for layer, policy in LAYERS.items():
        cells = []
        for attack in attacks:
            linker = deploy(registry, api_document, policy)
            result = run_app(attack.app, linker, stdin=attack.payload())
            hit = attack.hijacked(result)
            contained[(layer, attack.name)] = not hit
            cells.append(f"{'H' if hit else 'c':>18}")
        rows.append(f"{layer:<20}" + "".join(cells))
    artifact("ablation_security_layers", "\n".join(rows))

    # bounds checking alone stops the classic strcpy heap smash
    assert contained[("bounds-only", "heap-smash")]
    # but not the gets flood (gets is not expressible as a bounds check)
    assert not contained[("bounds-only", "gets-flood")]
    # safe gets closes it
    assert contained[("full", "gets-flood")]
    # stealth corruption needs heap verification or safe gets; the
    # bounds-only configuration misses it
    assert not contained[("bounds-only", "stealth-corrupt")]
    assert contained[("full", "stealth-corrupt")]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # artifact test: run once under --benchmark-only

def test_ablation_canary_allocator(registry, api_document, artifact, benchmark):
    """Allocator canaries catch overflows from *non-intercepted* writes
    that the size table can never see."""
    # 17-byte chunks leave 15 bytes of alignment padding, so a small
    # overflow stays inside the chunk and clobbers no header
    proc = SimProcess(heap_canaries=True)
    victim = proc.heap.malloc(17)
    proc.heap.malloc(17)
    # a rogue write the wrapper never intercepts (e.g. inline app code)
    proc.space.write(victim, b"R" * 22)
    problems = proc.heap.check_integrity()
    assert any("canary" in p for p in problems)

    plain = SimProcess(heap_canaries=False)
    victim = plain.heap.malloc(17)
    plain.heap.malloc(17)
    plain.space.write(victim, b"R" * 22)  # padding absorbs it silently
    assert plain.heap.check_integrity() == []
    artifact(
        "ablation_canary",
        "canary allocator detects padding-zone overflow: yes\n"
        "plain allocator detects the same overflow: no\n",
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # artifact test: run once under --benchmark-only

@pytest.mark.parametrize("layer", sorted(LAYERS))
def test_ablation_layer_cost(benchmark, registry, api_document, layer):
    """Benign-workload cost of each protection layer."""
    linker = deploy(registry, api_document, LAYERS[layer])

    def serve():
        return run_app(MSGFORMAT, linker,
                       stdin=b"ECHO hello\nADD 1 2\nQUIT\n")

    result = benchmark(serve)
    assert result.succeeded
