"""F5 — Fig. 5 / demo 3.3: the profiling wrapper's collected data.

"Upon termination, the wrapper generate[s] a XML-style log file that
shows the frequency of function calls in this program, the percentage of
execution time in each function, the distribution of function errors,
the causes of such errors (classified by errnos)" — and the document is
sent to the central collection server.

The workload is wordcount over the sample corpus plus an error-provoking
run (missing files → ENOENT), so every panel of the figure has data.
"""

from __future__ import annotations

from repro.apps import WORDCOUNT, standard_files
from repro.collection import CollectionServer, submit_document
from repro.core import Healers
from repro.profiling import ProfileDocument, render_full_report
from repro.runtime import Errno


def profiled_run():
    toolkit = Healers()
    built = toolkit.preload("profiling")
    try:
        files = standard_files()
        ok = toolkit.run(WORDCOUNT, argv=["/data/sample.txt"], files=files)
        assert ok.succeeded
        # provoke errno traffic: fopen failures
        for missing in ("/no/such/file", "/also/missing"):
            bad = toolkit.run(WORDCOUNT, argv=[missing], files=files)
            assert bad.status == 1
    finally:
        toolkit.clear_preloads()
    return ProfileDocument.from_state(
        built.state, application="wordcount", wrapper_type="profiling"
    )


def test_fig5_profile_report(artifact, benchmark):
    """All four Fig. 5 panels populated, with the expected shapes."""
    document = profiled_run()
    report = render_full_report(document)
    artifact("f5_profiling_report", report)
    artifact("f5_profile_document", document.to_xml())

    kinds = document.collected_kinds()
    assert "call-counts" in kinds
    assert "execution-time" in kinds
    assert "errno-distribution" in kinds

    frequencies = dict(
        (name, calls) for name, calls, _ in document.call_frequencies()
    )
    # the hot loop: one strcmp per table slot per word dominates
    assert max(frequencies, key=frequencies.get) == "strcmp"
    assert frequencies["fgets"] > frequencies["fopen"]

    errnos = {name: count for _, name, count in document.errno_distribution()}
    assert errnos.get("ENOENT", 0) == 2  # the two missing files

    shares = document.time_shares()
    assert abs(sum(share for _, _, share in shares) - 1.0) < 1e-6
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # artifact test: run once under --benchmark-only

def test_fig5_collection_roundtrip(artifact, benchmark):
    """Ship the document to the central server and query the store."""
    document = profiled_run()
    with CollectionServer() as server:
        assert submit_document(server.address, document.to_xml())
    stored = server.store.documents[0]
    assert "strcmp" in stored.wrapped_functions
    assert "errno-distribution" in stored.kinds
    aggregated = server.store.aggregate_calls()
    assert aggregated["strcmp"] == document.functions["strcmp"].calls
    artifact(
        "f5_collection_index",
        "\n".join(
            f"{stored.document.application}: functions="
            f"{len(stored.wrapped_functions)} kinds={','.join(stored.kinds)}"
            for stored in server.store.documents
        ),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # artifact test: run once under --benchmark-only

def test_fig5_profiled_run_speed(benchmark):
    """Wall time of a fully profiled wordcount run."""
    toolkit = Healers()
    toolkit.preload("profiling")
    files = standard_files()

    def run():
        return toolkit.run(WORDCOUNT, argv=["/data/sample.txt"], files=files)

    result = benchmark(run)
    assert result.succeeded


def test_fig5_document_render_speed(benchmark):
    """XML serialisation speed for a populated profile document."""
    document = profiled_run()
    xml = benchmark(document.to_xml)
    assert ProfileDocument.from_xml(xml).total_calls == document.total_calls
