"""Shared fixtures for the experiment-reproduction benchmarks.

Each benchmark regenerates one figure/table of the paper (see DESIGN.md's
experiment index) and writes its reproduced artifact under
``benchmarks/out/`` so EXPERIMENTS.md can reference the exact output.

The fault-injection fixtures default to a representative cross-family
subset of the library to keep wall time reasonable; set
``HEALERS_BENCH_FULL=1`` to sweep all 106 functions.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.injection import Campaign
from repro.libc import standard_registry
from repro.manpages import load_corpus
from repro.robust import RobustAPIDocument, derive_api

#: cross-family subset: strings, memory, alloc, convert, ctype, stdio,
#: wide, algorithm — every chain kind appears at least once
REPRESENTATIVE_FUNCTIONS = [
    "strcpy", "strncpy", "strcat", "strlen", "strcmp", "strchr", "strstr",
    "strtok", "strdup",
    "memcpy", "memmove", "memset", "memcmp",
    "malloc", "calloc", "realloc", "free",
    "atoi", "strtol", "strtod",
    "toupper", "isalpha",
    "sprintf", "snprintf", "gets", "fgets", "fopen", "fclose", "puts",
    "qsort", "bsearch",
    "wcslen", "wcscpy", "wctrans",
    "time", "gmtime", "mktime", "strftime", "ctime",
]

OUT_DIR = pathlib.Path(__file__).parent / "out"


def bench_functions():
    if os.environ.get("HEALERS_BENCH_FULL"):
        return None  # the whole library
    return REPRESENTATIVE_FUNCTIONS


@pytest.fixture(scope="session")
def registry():
    return standard_registry()


@pytest.fixture(scope="session")
def manpages():
    return load_corpus()


@pytest.fixture(scope="session")
def campaign_result(registry, manpages):
    campaign = Campaign(registry, manpages=manpages)
    return campaign.run(bench_functions())


@pytest.fixture(scope="session")
def derivations(campaign_result, registry, manpages):
    return derive_api(campaign_result, registry, manpages)


@pytest.fixture(scope="session")
def api_document(registry, manpages, derivations):
    return RobustAPIDocument.build(registry, manpages, derivations)


@pytest.fixture(scope="session")
def artifact():
    """Writer: artifact('t1_robustness', text) → benchmarks/out/…txt."""
    OUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> pathlib.Path:
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text)
        print(f"\n[artifact written: {path}]")
        return path

    return write
