"""P1 — parallel, resumable campaigns over the full libc registry.

The paper runs its sweep "once per library release"; the scale question
is what a re-run costs.  This benchmark demonstrates the two acceptance
properties of the campaign engine on the *full* registry (every libc
function, not the representative subset):

* a ``--jobs 4`` process-pool run is **verdict-identical** to the serial
  run — byte-identical store XML, not merely the same verdict set;
* a second run resuming from the probe-result cache executes **zero**
  fresh probes (100% cache hits) and still reproduces the same XML.
"""

from __future__ import annotations

import os
import time

from repro.injection import Campaign, ProbeCache, ProbeExecutor, \
    campaign_to_xml
from repro.libc import standard_registry


def test_campaign_parallel_and_resume(registry, manpages, artifact,
                                      benchmark, tmp_path):
    serial_started = time.perf_counter()
    serial = Campaign(registry, manpages=manpages).run()
    serial_seconds = time.perf_counter() - serial_started
    serial_xml = campaign_to_xml(serial)

    cache = ProbeCache.for_registry(registry)
    parallel_started = time.perf_counter()
    executor = ProbeExecutor(
        Campaign(registry, manpages=manpages),
        jobs=4, backend="process",
        registry_factory=standard_registry,
        cache=cache,
    )
    parallel = executor.run()
    parallel_seconds = time.perf_counter() - parallel_started
    parallel_xml = campaign_to_xml(parallel)

    # acceptance 1: --jobs 4 is verdict-identical to the serial sweep
    assert parallel_xml == serial_xml
    assert executor.stats.executed == executor.stats.planned

    # acceptance 2: a --resume run executes 0 fresh probes
    cache_path = tmp_path / "probe-cache.xml"
    cache.save(str(cache_path))
    resumed_cache = ProbeCache.load_or_create(str(cache_path), registry)
    resume_started = time.perf_counter()
    resumer = ProbeExecutor(Campaign(registry, manpages=manpages),
                            jobs=4, backend="thread", cache=resumed_cache)
    resumed = resumer.run()
    resume_seconds = time.perf_counter() - resume_started
    assert resumer.stats.executed == 0
    assert resumer.stats.cached == resumer.stats.planned
    assert resumer.stats.cache_hit_rate == 1.0
    assert campaign_to_xml(resumed) == serial_xml

    lines = [
        "P1 parallel & resumable campaign (full libc registry)",
        f"  host CPUs                     : {os.cpu_count()} "
        "(pool speedup is bounded by this)",
        f"  functions probed              : {len(serial.reports)}",
        f"  probe matrix                  : {serial.total_probes} probes",
        f"  serial sweep                  : {serial_seconds:8.2f} s",
        f"  --jobs 4 (process pool)       : {parallel_seconds:8.2f} s "
        f"({serial_seconds / parallel_seconds:.1f}x)",
        f"  --resume (100% cache hits)    : {resume_seconds:8.2f} s "
        f"({serial_seconds / resume_seconds:.1f}x)",
        f"  fresh probes on resume        : {resumer.stats.executed}",
        "  store XML byte-identical across serial / jobs=4 / resume: yes",
    ]
    artifact("p1_campaign_parallel", "\n".join(lines))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_resume_throughput(benchmark, registry, manpages):
    """Verdicts/second when every probe is a cache hit."""
    cache = ProbeCache.for_registry(registry)
    names = ["strcpy", "memcpy", "sprintf", "strtol", "qsort"]
    ProbeExecutor(Campaign(registry, manpages=manpages),
                  cache=cache).run(names)

    def resume():
        executor = ProbeExecutor(Campaign(registry, manpages=manpages),
                                 cache=cache)
        result = executor.run(names)
        assert executor.stats.executed == 0
        return result

    result = benchmark(resume)
    assert result.total_probes > 0
