"""P6 — multi-fault adversarial campaigns: the containment matrix.

The scored attack corpus runs under every wrapper preset while
seed-deterministic k-fault schedules (k ∈ {1..3}) stress the same run.
Three claims gate the experiment:

1. **Containment** — under the ``security`` preset no attack escapes
   at k=1 (rate ≥ ``HEALERS_ADVERSARIAL_GATE``, default 1.0), and the
   gated presets (security, hardened) produce zero escapes anywhere in
   the explored space.
2. **Pruning** — equivalence classes + domination skip ≥ 30 % of the
   naive k-fault space while still covering every k ∈ {1, 2, 3}.
3. **Replayability** — every record (and in particular every escape)
   re-executes to the same verdict from just its
   ``(attack, preset, seed, trial, k-set)`` witness.

Writes ``benchmarks/out/BENCH_adversarial.json`` and a containment
matrix artifact.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.chaos import ChaosCampaign, DEFAULT_PRESETS

#: minimum k=1 containment rate under the security preset
ADVERSARIAL_GATE = float(os.environ.get("HEALERS_ADVERSARIAL_GATE",
                                        "1.0"))

#: minimum fraction of the naive k-fault space the pruner must skip
PRUNE_FLOOR = 0.30

CAMPAIGN_SEED = 2003
CAMPAIGN_TRIALS = 2
CAMPAIGN_KMAX = 3


def test_adversarial_containment_matrix(registry, api_document,
                                        artifact):
    campaign = ChaosCampaign(
        registry, api_document,
        seeds=(CAMPAIGN_SEED,), trials=CAMPAIGN_TRIALS,
        kmax=CAMPAIGN_KMAX, exec_backend="thread", jobs=2,
    )
    report = campaign.run()
    matrix = report.matrix()
    prune = report.prune

    # coverage: the full preset row set, ≥6 attack classes, k ∈ {1..3}
    assert set(DEFAULT_PRESETS) <= set(matrix)
    classes = {record.attack_class for record in report.records}
    assert len(classes) >= 6, sorted(classes)
    k_seen = {record.k for record in report.records}
    assert k_seen == {1, 2, 3}, k_seen

    # pruning: measured, and above the floor
    assert prune.skipped_fraction >= PRUNE_FLOOR, prune.to_dict()
    assert prune.executed + prune.skipped == prune.naive

    # containment: the paper's claim, as a gate
    security_k1 = report.containment_rate("security", k=1)
    assert security_k1 >= ADVERSARIAL_GATE, (
        f"security k=1 containment {security_k1:.0%} below gate "
        f"{ADVERSARIAL_GATE:.0%}"
    )
    gated_escapes = [record for record in report.escapes()
                     if record.preset in ("security", "hardened")]
    assert not gated_escapes, [
        record.replay_witness() for record in gated_escapes
    ]

    # every escape carries a complete replay witness
    for record in report.escapes():
        witness = record.replay_witness()
        assert set(witness) == {"attack", "preset", "seed", "trial",
                                "k", "kset"}
        assert witness["k"] == len(witness["kset"]) >= 1

    # replayability: a deterministic sample re-executes identically,
    # and so does every escape
    stride = max(1, len(report.records) // 5)
    sample = list(report.records[::stride])[:5] + report.escapes()[:3]
    for record in sample:
        again = campaign.replay(record.replay_witness())
        assert again.verdict == record.verdict, record.replay_witness()
        assert again.faults == record.faults

    payload = {
        "campaign": {
            "seed": CAMPAIGN_SEED,
            "trials": CAMPAIGN_TRIALS,
            "kmax": CAMPAIGN_KMAX,
            "horizon": campaign.horizon,
            "presets": list(campaign.presets),
            "attacks": [attack.name for attack in campaign.attacks],
            "attack_classes": sorted(classes),
        },
        "matrix": matrix,
        "containment": {
            preset: {
                "overall": round(report.containment_rate(preset), 4),
                "k1": round(report.containment_rate(preset, k=1), 4),
            }
            for preset in campaign.presets
        },
        "records_by_k": {str(k): sum(1 for r in report.records
                                     if r.k == k)
                         for k in sorted(k_seen)},
        "prune": prune.to_dict(),
        "escapes": [record.replay_witness()
                    for record in report.escapes()],
        "gate": {"security_k1_floor": ADVERSARIAL_GATE,
                 "prune_floor": PRUNE_FLOOR},
    }
    out = pathlib.Path(__file__).parent / "out"
    out.mkdir(exist_ok=True)
    (out / "BENCH_adversarial.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    verdict_cols = ["escaped", "crashed", "detected", "repaired",
                    "contained", "hang"]
    rows = [
        f"P6 — adversarial containment (seed {CAMPAIGN_SEED}, "
        f"{CAMPAIGN_TRIALS} trials, kmax={CAMPAIGN_KMAX}, "
        f"horizon {campaign.horizon})",
        f"{'preset':<12} " + " ".join(f"{v:>9}" for v in verdict_cols)
        + f" {'contain':>8}",
    ]
    for preset in campaign.presets:
        counts: dict = {}
        for cell in matrix.get(preset, {}).values():
            for verdict, count in cell.items():
                counts[verdict] = counts.get(verdict, 0) + count
        rows.append(
            f"{preset:<12} "
            + " ".join(f"{counts.get(v, 0):>9}" for v in verdict_cols)
            + f" {report.containment_rate(preset):>7.0%}"
        )
    rows.append(
        f"prune: naive {prune.naive} -> executed {prune.executed} "
        f"({prune.skipped_fraction:.0%} skipped: "
        f"{prune.pruned_equivalence} equivalence, "
        f"{prune.pruned_dominated} dominated)"
    )
    rows.append(f"escapes: {len(report.escapes())} "
                f"(all replayable from their witnesses)")
    artifact("p6_adversarial_matrix", "\n".join(rows))
