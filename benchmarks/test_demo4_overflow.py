"""D4 — demo 3.4: buffer-overflow prevention.

"It first shows that an attacker can hijack the control flow of a root
privileged program by overflowing a buffer allocated on the heap.  This
results in a root shell for the attacker.  … Then we show that our
security wrapper can detect such buffer overflows and terminate the
attacker's program."

Reproduced exactly: the heap-smash exploit yields a root shell on the
unprotected daemon and a SecurityViolation termination under the
security wrapper; the rest of the corpus rounds out the picture.
"""

from __future__ import annotations

import pytest

from repro.apps import run_app, standard_system
from repro.errors import SecurityViolation
from repro.linker import DynamicLinker, SharedLibrary
from repro.security.attacks import (
    ALL_ATTACKS,
    BENIGN_INPUTS,
    HEAP_SMASH,
)
from repro.wrappers import SECURITY, WrapperFactory


def undefended_linker(registry):
    return standard_system(registry)[1]


def defended_linker(registry, api_document):
    linker = DynamicLinker()
    linker.add_library(SharedLibrary.from_registry(registry))
    WrapperFactory(registry, api_document).preload(linker, SECURITY)
    return linker


def test_demo4_narrative(registry, api_document, artifact, benchmark):
    """The two halves of the demo, end to end."""
    lines = ["demo 3.4 — heap smashing against authd (root daemon)"]
    payload = HEAP_SMASH.payload()
    lines.append(f"payload: {len(payload)} bytes "
                 f"(fill + little-endian gadget address)")

    result = run_app(HEAP_SMASH.app, undefended_linker(registry),
                     stdin=payload)
    assert result.process.root_shell, "exploit must succeed unprotected"
    lines.append("[unprotected] control flow hijacked -> ROOT SHELL")
    lines.append(f"  stdout: {result.stdout.strip().splitlines()[-1]}")

    result = run_app(HEAP_SMASH.app,
                     defended_linker(registry, api_document),
                     stdin=payload)
    assert not result.process.root_shell
    assert isinstance(result.exception, SecurityViolation)
    lines.append("[security wrapper] overflow detected, program terminated")
    lines.append(f"  reason: {result.exception}")
    artifact("d4_overflow_demo", "\n".join(lines))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # artifact test: run once under --benchmark-only

def test_demo4_full_corpus(registry, api_document, artifact, benchmark):
    """Every attack succeeds undefended; heap-class attacks are contained."""
    undefended = undefended_linker(registry)
    defended = defended_linker(registry, api_document)
    rows = ["attack            undefended   security-wrapper"]
    for attack in ALL_ATTACKS:
        raw = run_app(attack.app, undefended, stdin=attack.payload())
        wrapped = run_app(attack.app, defended, stdin=attack.payload())
        raw_hit = attack.hijacked(raw)
        wrapped_hit = attack.hijacked(wrapped)
        rows.append(f"{attack.name:<17} "
                    f"{'HIJACKED' if raw_hit else 'blocked':<12} "
                    f"{'HIJACKED' if wrapped_hit else 'contained'}")
        assert raw_hit, f"{attack.name} must succeed undefended"
        if attack.name != "stack-smash":
            assert not wrapped_hit, f"{attack.name} must be contained"
    artifact("d4_attack_corpus", "\n".join(rows))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # artifact test: run once under --benchmark-only

def test_demo4_no_false_positives(registry, api_document, benchmark):
    """Benign traffic is identical with and without the wrapper."""
    from repro.apps import app_by_name

    undefended = undefended_linker(registry)
    defended = defended_linker(registry, api_document)
    for app_name, stdin in BENIGN_INPUTS.items():
        app = app_by_name(app_name)
        raw = run_app(app, undefended, stdin=stdin)
        wrapped = run_app(app, defended, stdin=stdin)
        assert wrapped.stdout == raw.stdout
        assert wrapped.status == raw.status == 0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # artifact test: run once under --benchmark-only

def test_demo4_exploit_speed(benchmark, registry):
    """How fast the unprotected exploit lands (payload -> root shell)."""
    linker = undefended_linker(registry)
    payload = HEAP_SMASH.payload()

    def attack():
        return run_app(HEAP_SMASH.app, linker, stdin=payload)

    result = benchmark(attack)
    assert result.process.root_shell


def test_demo4_containment_speed(benchmark, registry, api_document):
    """Cost of the contained run (detection + termination)."""
    linker = defended_linker(registry, api_document)
    payload = HEAP_SMASH.payload()

    def attack():
        return run_app(HEAP_SMASH.app, linker, stdin=payload)

    result = benchmark(attack)
    assert isinstance(result.exception, SecurityViolation)
