"""T2 — overhead table: "low overhead during normal operations".

Two granularities, as in [5]:
* micro — per-call cost of each wrapper type over representative calls
  (a cheap call, strlen, shows the worst-case *relative* overhead; a
  heavier call, qsort, shows the amortised case);
* macro — whole-application wall time for the bundled workloads with
  each wrapper preloaded, relative to unwrapped runs.

Shape expectations: counting wrappers (profiling/logging) cost a small
constant per call; checking wrappers (robustness/security) cost more on
trivial calls but stay a modest multiple end-to-end ("an application
should only pay the overhead for the protection it actually needs").
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.apps import CSVSTAT, WORDCOUNT, run_app, standard_files
from repro.linker import DynamicLinker, SharedLibrary
from repro.runtime import SimProcess
from repro.wrappers import PRESETS, WrapperFactory

WRAPPERS = ["none", "profiling", "logging", "robustness", "security",
            "hardened"]

#: minimum compiled-vs-interpreted dispatch speedup on the checking
#: wrappers; CI relaxes this to 2.0 on shared (noisy) runners
DISPATCH_GATE = float(os.environ.get("HEALERS_DISPATCH_GATE", "3.0"))


def linker_with(registry, api_document, preset, backend="compiled"):
    linker = DynamicLinker()
    linker.add_library(SharedLibrary.from_registry(registry))
    if preset != "none":
        WrapperFactory(registry, api_document).preload(
            linker, PRESETS[preset], backend=backend
        )
    return linker


def call_cost_ns(linker, name, args_factory, repeats=2000):
    symbol = linker.resolve(name).symbol
    proc, args = args_factory()
    start = time.perf_counter_ns()
    for _ in range(repeats):
        symbol(proc, *args)
    return (time.perf_counter_ns() - start) / repeats


def test_t2_overhead_table(registry, api_document, artifact, benchmark):
    """The full micro + macro table with relative factors."""

    def strlen_case():
        proc = SimProcess()
        return proc, (proc.alloc_cstring(b"a moderately long string"),)

    def memcpy_case():
        proc = SimProcess()
        return proc, (proc.alloc_buffer(256), proc.alloc_bytes(b"q" * 256),
                      256)

    micro_cases = {"strlen": strlen_case, "memcpy": memcpy_case}
    micro = {}
    for preset in WRAPPERS:
        linker = linker_with(registry, api_document, preset)
        micro[preset] = {
            case: call_cost_ns(linker, case, factory)
            for case, factory in micro_cases.items()
        }

    files = standard_files()
    macro = {}
    for preset in WRAPPERS:
        linker = linker_with(registry, api_document, preset)
        start = time.perf_counter_ns()
        for _ in range(3):
            assert run_app(WORDCOUNT, linker, argv=["/data/sample.txt"],
                           files=files).succeeded
            assert run_app(CSVSTAT, linker, argv=["/data/values.csv"],
                           files=files).succeeded
        macro[preset] = (time.perf_counter_ns() - start) / 3

    rows = [
        "T2 — wrapper overhead (relative to unwrapped)",
        f"{'wrapper':<12} {'strlen µ':>10} {'memcpy µ':>10} "
        f"{'apps macro':>11}",
    ]
    for preset in WRAPPERS:
        rows.append(
            f"{preset:<12} "
            f"{micro[preset]['strlen'] / micro['none']['strlen']:>9.2f}x "
            f"{micro[preset]['memcpy'] / micro['none']['memcpy']:>9.2f}x "
            f"{macro[preset] / macro['none']:>10.2f}x"
        )
    artifact("t2_overhead_table", "\n".join(rows))

    # shape: profiling stays cheap per call; every wrapper's macro
    # overhead is a small multiple; relative cost shrinks on heavier calls
    assert micro["profiling"]["strlen"] / micro["none"]["strlen"] < 2.0
    for preset in WRAPPERS[1:]:
        assert macro[preset] / macro["none"] < 4.0, preset
    assert (micro["robustness"]["memcpy"] / micro["none"]["memcpy"]
            < micro["robustness"]["strlen"] / micro["none"]["strlen"] * 1.5)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # artifact test: run once under --benchmark-only

def test_dispatch_fastpath_speedup(registry, api_document, artifact):
    """Compiled vs interpreted dispatch: the fast-path gate.

    Measures the *dispatch overhead* (wrapped minus unwrapped per-call
    cost) of each wrapper type under both composition backends on a
    machinery-dominated call (``toupper``: the base call is trivial, so
    nearly all wrapped time is wrapper machinery).  Rounds interleave
    the subjects and keep the per-subject minimum, so CPU frequency
    drift between subjects cancels out.  Writes BENCH_overhead.json and
    gates the checking wrappers (robustness, security) at
    ``DISPATCH_GATE``x.
    """
    repeats, rounds = 20000, 7
    results = {}
    for preset in WRAPPERS[1:]:
        subjects = {
            "none": linker_with(registry, api_document, "none"),
            "compiled": linker_with(registry, api_document, preset,
                                    backend="compiled"),
            "interpreted": linker_with(registry, api_document, preset,
                                       backend="interpreted"),
        }
        symbols = {k: lk.resolve("toupper").symbol
                   for k, lk in subjects.items()}
        proc = SimProcess()
        for symbol in symbols.values():  # warm resolution + caches
            symbol(proc, ord("a"))
        best = {k: float("inf") for k in symbols}
        for _ in range(rounds):
            for kind, symbol in symbols.items():
                start = time.perf_counter_ns()
                for _ in range(repeats):
                    symbol(proc, ord("a"))
                cost = (time.perf_counter_ns() - start) / repeats
                best[kind] = min(best[kind], cost)
        overhead_compiled = max(best["compiled"] - best["none"], 1e-9)
        overhead_interp = max(best["interpreted"] - best["none"], 1e-9)
        results[preset] = {
            "unwrapped_ns": round(best["none"], 1),
            "compiled_ns": round(best["compiled"], 1),
            "interpreted_ns": round(best["interpreted"], 1),
            "compiled_calls_per_sec": round(1e9 / best["compiled"]),
            "interpreted_calls_per_sec": round(1e9 / best["interpreted"]),
            "dispatch_overhead_compiled_ns": round(overhead_compiled, 1),
            "dispatch_overhead_interpreted_ns": round(overhead_interp, 1),
            "dispatch_speedup": round(overhead_interp / overhead_compiled,
                                      2),
        }

    payload = {
        "case": "toupper (machinery-dominated call)",
        "repeats_per_round": repeats,
        "rounds": rounds,
        "gate": {"wrappers": ["robustness", "security"],
                 "min_dispatch_speedup": DISPATCH_GATE},
        "wrappers": results,
    }
    out = pathlib.Path(__file__).parent / "out"
    out.mkdir(exist_ok=True)
    (out / "BENCH_overhead.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    rows = ["dispatch speedup: compiled vs interpreted backend (toupper)",
            f"{'wrapper':<12} {'compiled':>12} {'interpreted':>12} "
            f"{'speedup':>8}"]
    for preset, row in results.items():
        rows.append(
            f"{preset:<12} {row['compiled_calls_per_sec']:>10}/s "
            f"{row['interpreted_calls_per_sec']:>10}/s "
            f"{row['dispatch_speedup']:>7.2f}x"
        )
    artifact("dispatch_speedup", "\n".join(rows))

    for preset in ("robustness", "security"):
        assert results[preset]["dispatch_speedup"] >= DISPATCH_GATE, (
            f"{preset}: compiled dispatch only "
            f"{results[preset]['dispatch_speedup']}x faster than the "
            f"interpreted hook chain (gate: {DISPATCH_GATE}x)"
        )


@pytest.mark.parametrize("preset", WRAPPERS)
def test_t2_macro_wordcount(benchmark, registry, api_document, preset):
    """pytest-benchmark series: wordcount under each wrapper type."""
    linker = linker_with(registry, api_document, preset)
    files = standard_files()

    def run():
        return run_app(WORDCOUNT, linker, argv=["/data/sample.txt"],
                       files=files)

    result = benchmark(run)
    assert result.succeeded


@pytest.mark.parametrize("preset", ["none", "robustness", "security"])
def test_t2_micro_strcpy(benchmark, registry, api_document, preset):
    """pytest-benchmark series: one strcpy under the checking wrappers."""
    linker = linker_with(registry, api_document, preset)
    symbol = linker.resolve("strcpy").symbol
    proc = SimProcess()
    dest = proc.alloc_buffer(64)
    src = proc.alloc_cstring(b"payload string")
    result = benchmark(lambda: symbol(proc, dest, src))
    assert result == dest
