"""P5 — self-healing recovery: containment under chaos + wrapper overhead.

Two claims gate this experiment:

1. **Containment** — under the deterministic chaos harness (allocator
   OOM, heap clobber, filesystem errors at ``CHAOS_RATE``), the
   self-healing policy (repair + retry) keeps ≥ 95 % of application
   trials alive, against the escalate-on-violation baseline which
   aborts on the same fault schedule.
2. **Overhead** — the recovery wrapper (security features + retry
   generator + policy dispatch) costs at most
   ``HEALERS_RECOVERY_GATE``× (default 1.5×) the plain security
   wrapper on a fault-free hot path.

Writes ``benchmarks/out/BENCH_recovery.json`` and a containment-rate
table artifact.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.chaos import ChaosHarness
from repro.linker import DynamicLinker, SharedLibrary
from repro.recovery import escalating_policy, self_healing_policy
from repro.runtime import SimProcess
from repro.security.policy import SecurityPolicy
from repro.wrappers import RECOVERY, SECURITY, WrapperFactory
from repro.wrappers.presets import default_generator_registry

#: maximum recovery-wrapper / security-wrapper hot-path time ratio
RECOVERY_GATE = float(os.environ.get("HEALERS_RECOVERY_GATE", "1.5"))

#: minimum surviving-trial fraction under the self-healing policy
CONTAINMENT_FLOOR = 0.95

CHAOS_SEED = 2003
CHAOS_RATE = 0.1
CHAOS_TRIALS = 5


def run_chaos(registry, policy) -> "ChaosReport":
    harness = ChaosHarness(registry, policy=policy, seed=CHAOS_SEED,
                           rate=CHAOS_RATE)
    return harness.run(trials=CHAOS_TRIALS)


def per_app_rates(report) -> dict:
    rates: dict = {}
    for trial in report.trials:
        survived, total = rates.get(trial.app, (0, 0))
        rates[trial.app] = (survived + trial.survived, total + 1)
    return {app: survived / total
            for app, (survived, total) in sorted(rates.items())}


def wrapped_linker(registry, api_document, spec, policy):
    linker = DynamicLinker()
    linker.add_library(SharedLibrary.from_registry(registry))
    factory = WrapperFactory(
        registry, api_document,
        generators=default_generator_registry(policy),
    )
    factory.preload(linker, spec, telemetry=False)
    return linker


def hot_path_seconds(linker, rounds: int = 5, calls: int = 2000) -> float:
    """Best per-round seconds for a fault-free wrapped-call mix."""
    proc = SimProcess(heap_canaries=True)
    strcpy = linker.resolve("strcpy").symbol
    strlen = linker.resolve("strlen").symbol
    malloc = linker.resolve("malloc").symbol
    free = linker.resolve("free").symbol
    src = proc.alloc_cstring(b"recovery benchmark payload")
    dest = proc.alloc_buffer(64)
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter_ns()
        for _ in range(calls):
            strcpy(proc, dest, src)
            strlen(proc, dest)
            free(proc, malloc(proc, 48))
        best = min(best, time.perf_counter_ns() - start)
    return best / 1e9


def test_recovery_containment_and_overhead(registry, api_document,
                                           artifact):
    healing = run_chaos(
        registry, SecurityPolicy(recovery=self_healing_policy())
    )
    escalate = run_chaos(
        registry, SecurityPolicy(recovery=escalating_policy())
    )

    security_s = hot_path_seconds(
        wrapped_linker(registry, api_document, SECURITY, SecurityPolicy())
    )
    recovery_s = hot_path_seconds(
        wrapped_linker(registry, api_document, RECOVERY,
                       SecurityPolicy(recovery=self_healing_policy()))
    )
    overhead = recovery_s / security_s

    recoveries: dict = {}
    for trial in healing.trials:
        for action, count in trial.recoveries.items():
            recoveries[action] = recoveries.get(action, 0) + count

    payload = {
        "chaos": {"seed": CHAOS_SEED, "rate": CHAOS_RATE,
                  "trials_per_app": CHAOS_TRIALS},
        "containment": {
            "self_healing": round(healing.containment_rate, 3),
            "escalate_baseline": round(escalate.containment_rate, 3),
            "per_app_self_healing": {
                app: round(rate, 3)
                for app, rate in per_app_rates(healing).items()
            },
            "per_app_escalate": {
                app: round(rate, 3)
                for app, rate in per_app_rates(escalate).items()
            },
            "faults_fired": healing.faults_fired(),
            "recovery_actions": recoveries,
        },
        "overhead": {
            "security_wrapper_s": round(security_s, 6),
            "recovery_wrapper_s": round(recovery_s, 6),
            "ratio": round(overhead, 3),
        },
        "gate": {"containment_floor": CONTAINMENT_FLOOR,
                 "max_overhead_ratio": RECOVERY_GATE},
    }
    out = pathlib.Path(__file__).parent / "out"
    out.mkdir(exist_ok=True)
    (out / "BENCH_recovery.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    heal_rates = per_app_rates(healing)
    esc_rates = per_app_rates(escalate)
    rows = [
        "P5 — containment under chaos "
        f"(seed {CHAOS_SEED}, rate {CHAOS_RATE}, "
        f"{CHAOS_TRIALS} trials/app)",
        f"{'application':<12} {'self-healing':>13} {'escalate':>10}",
    ]
    for app in heal_rates:
        rows.append(f"{app:<12} {heal_rates[app]:>12.0%} "
                    f"{esc_rates[app]:>9.0%}")
    rows.append(f"{'overall':<12} {healing.containment_rate:>12.0%} "
                f"{escalate.containment_rate:>9.0%}")
    rows.append(f"recovery actions: {recoveries}; "
                f"wrapper overhead {overhead:.2f}x (gate "
                f"{RECOVERY_GATE}x)")
    artifact("p5_recovery_containment", "\n".join(rows))

    assert healing.containment_rate >= CONTAINMENT_FLOOR, (
        f"self-healing containment {healing.containment_rate:.0%} "
        f"below the {CONTAINMENT_FLOOR:.0%} floor"
    )
    assert healing.containment_rate > escalate.containment_rate, (
        "self-healing must out-survive the escalate baseline"
    )
    assert overhead <= RECOVERY_GATE, (
        f"recovery wrapper costs {overhead:.2f}x the security wrapper "
        f"(gate: {RECOVERY_GATE}x)"
    )
