"""P8 — serving throughput: requests/sec with cross-call wrapper fusion.

The serving benchmark drives each bundled server app (kvd, httpd,
tmpld) through a :class:`ServingSession` on the deterministic hot
request mix and reports requests/sec for every preset — unwrapped
baseline plus the four wrapped presets — with the fused fast path on
and off.  Fused and unfused lanes replay byte-identical streams and
must agree on stdout, errno and fuel, so every throughput row doubles
as a differential check.

Methodology: the fused/unfused lanes run *paired* (alternating drives
inside each round) with a ``gc.collect`` before each round, and the
reported figure is the best of ``HEALERS_SERVING_ROUNDS`` rounds —
paired best-of-k cancels most scheduler/allocator drift between lanes.

The headline number is the hot-mix fused-over-unfused speedup on the
``robustness`` preset — the full argument-checking configuration whose
per-call guard work fusion exists to amortize — taken over the app
where interposition dominates the request (the peak app, named in the
payload).  ``HEALERS_SERVING_GATE`` (default 1.5) gates that headline;
shared CI runners can relax it.

Writes ``benchmarks/out/BENCH_serving.json`` and the
``p8_serving_table`` artifact; the fusion ablation (fusion off / fuel
batching off / resolver cache off / check memo off) appends its
section to both.
"""

from __future__ import annotations

import gc
import json
import os
import pathlib
import time

import pytest

from repro.apps import SERVER_APPS
from repro.serving import LoadGenerator, ServingSession
from repro.wrappers import ResolverTable
from repro.wrappers.presets import full_coverage_api

#: minimum fused-over-unfused hot-mix speedup on the headline preset
SERVING_GATE = float(os.environ.get("HEALERS_SERVING_GATE", "1.5"))
WRAPPED_PRESETS = ("robustness", "security", "hardened", "recovery")
HEADLINE_PRESET = "robustness"
REQUESTS = int(os.environ.get("HEALERS_SERVING_REQUESTS", "800"))
ROUNDS = int(os.environ.get("HEALERS_SERVING_ROUNDS", "3"))
SEED = 7

OUT = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="module")
def serving_api(registry, manpages):
    return full_coverage_api(registry, manpages)


def build_session(app, preset, registry, api, gen, *, fused,
                  resolver=None, fuel_batching=True, check_memo=True):
    """One warmed session: traces recorded (fused), warmup served."""
    session = ServingSession(
        app, preset=preset, registry=registry, api=api, fused=fused,
        fuel_batching=fuel_batching, check_memo=check_memo,
        resolver=resolver,
    )
    if fused:
        session.record_traces(gen.warmup, gen.samples)
    session.serve_all(gen.warmup)
    session.drive(gen.stream(200))  # untimed: warm traces and memos
    return session


def paired_best(sessions, gen, requests=REQUESTS, rounds=ROUNDS):
    """Best rps per session over paired rounds (same streams, alternated)."""
    best = [0.0] * len(sessions)
    stats = [None] * len(sessions)
    for _ in range(rounds):
        gc.collect()
        for index, session in enumerate(sessions):
            result = session.drive(gen.stream(requests))
            if result.rps > best[index]:
                best[index] = result.rps
                stats[index] = result
    return best, stats


def assert_identical(fused, unfused):
    """The differential contract every throughput row must satisfy."""
    assert fused.stdout_text() == unfused.stdout_text()
    assert fused.process.fuel_used == unfused.process.fuel_used
    assert fused.process.errno == unfused.process.errno


def test_p8_serving_throughput(registry, serving_api, artifact):
    """BENCH_serving.json — the req/s matrix and the fusion headline."""
    apps = {}
    headline = {"preset": HEADLINE_PRESET, "app": None, "speedup": 0.0}
    for app in SERVER_APPS:
        gen = LoadGenerator(app.name, mix="hot", seed=SEED)
        rows = {}
        base = build_session(app, "unwrapped", registry, serving_api, gen,
                             fused=False)
        (base_rps,), _ = paired_best([base], gen)
        rows["unwrapped"] = {"rps": round(base_rps, 1)}
        for preset in WRAPPED_PRESETS:
            resolver = ResolverTable()
            fused = build_session(app, preset, registry, serving_api, gen,
                                  fused=True, resolver=resolver)
            unfused = build_session(app, preset, registry, serving_api,
                                    gen, fused=False, resolver=resolver)
            (rps_f, rps_u), (stat_f, _) = paired_best([fused, unfused],
                                                      gen)
            assert_identical(fused, unfused)
            assert stat_f.deopts == 0
            assert stat_f.trace_hits == stat_f.requests
            speedup = rps_f / rps_u if rps_u else 0.0
            rows[preset] = {
                "fused_rps": round(rps_f, 1),
                "unfused_rps": round(rps_u, 1),
                "fused_speedup": round(speedup, 2),
                "overhead_vs_unwrapped": round(base_rps / rps_f, 2)
                if rps_f else None,
                "trace_hits": stat_f.trace_hits,
                "deopts": stat_f.deopts,
            }
            if (preset == HEADLINE_PRESET
                    and speedup > headline["speedup"]):
                headline["app"] = app.name
                headline["speedup"] = round(speedup, 2)
        apps[app.name] = rows

    payload = {
        "mix": "hot",
        "seed": SEED,
        "requests_per_round": REQUESTS,
        "rounds": ROUNDS,
        "gate": {"min_hot_mix_speedup": SERVING_GATE},
        "hot_mix_speedup": headline,
        "apps": apps,
    }
    OUT.mkdir(exist_ok=True)
    (OUT / "BENCH_serving.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    rows = ["P8 — serving throughput, hot mix (requests/sec)",
            f"{'app':<7} {'preset':<11} {'unfused':>9} {'fused':>9} "
            f"{'speedup':>8} {'vs unwrapped':>13}"]
    for app_name, presets in apps.items():
        base_rps = presets["unwrapped"]["rps"]
        rows.append(f"{app_name:<7} {'unwrapped':<11} {'-':>9} "
                    f"{base_rps:>9.0f} {'-':>8} {'1.00x':>13}")
        for preset in WRAPPED_PRESETS:
            row = presets[preset]
            rows.append(
                f"{app_name:<7} {preset:<11} {row['unfused_rps']:>9.0f} "
                f"{row['fused_rps']:>9.0f} {row['fused_speedup']:>7.2f}x "
                f"{row['overhead_vs_unwrapped']:>12.2f}x"
            )
    rows.append(f"hot-mix headline: {headline['app']} "
                f"{HEADLINE_PRESET} {headline['speedup']:.2f}x "
                f"(gate {SERVING_GATE}x)")
    artifact("p8_serving_table", "\n".join(rows))

    assert headline["speedup"] >= SERVING_GATE, (
        f"fused fast path only {headline['speedup']}x unfused on the "
        f"hot mix ({headline['app']}, {HEADLINE_PRESET}); "
        f"gate: {SERVING_GATE}x"
    )


def test_p8_fusion_ablation(registry, serving_api, artifact):
    """Which fusion layer buys what: drop one lever at a time.

    Runs the headline cell (peak app on the robustness preset — httpd,
    whose request is wrapper-interposition dominated) with each layer
    disabled in isolation, plus the resolver-table ablation, which is a
    *build-time* lever: repeated (app, preset) session builds with and
    without the shared table.
    """
    app = next(a for a in SERVER_APPS if a.name == "httpd")
    gen = LoadGenerator(app.name, mix="hot", seed=SEED)
    variants = {
        "full": dict(fused=True),
        "fusion_off": dict(fused=False),
        "check_memo_off": dict(fused=True, check_memo=False),
    }
    sessions = {
        name: build_session(app, HEADLINE_PRESET, registry, serving_api,
                            gen, **kwargs)
        for name, kwargs in variants.items()
    }
    order = list(sessions)
    best, _ = paired_best([sessions[name] for name in order], gen)
    rps = dict(zip(order, best))
    for name in order[1:]:
        assert_identical(sessions[name], sessions["full"])

    # fuel batching only exists under a fuel budget (budgeted runs
    # disable the verdict memo, so this pair isolates the batch draw):
    # one budget comparison per request vs one per metered operation
    def budgeted(batching):
        session = ServingSession(
            app, preset=HEADLINE_PRESET, registry=registry,
            api=serving_api, fused=True, fuel_batching=batching,
            fuel=1 << 40,
        )
        session.record_traces(gen.warmup, gen.samples)
        session.serve_all(gen.warmup)
        session.drive(gen.stream(200))
        return session

    pair = [budgeted(True), budgeted(False)]
    (batch_on, batch_off), _ = paired_best(pair, gen)
    assert pair[0].process.fuel_used == pair[1].process.fuel_used

    # the resolver table is a build-time lever: dlsym(RTLD_NEXT) is
    # lazy, so "build" here is session construction plus the first
    # request of each kind (which forces every import's resolution)
    def build_seconds(resolver):
        best_run = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            session = ServingSession(
                app, preset=HEADLINE_PRESET, registry=registry,
                api=serving_api, fused=True, resolver=resolver)
            session.serve_all(gen.stream(20))
            best_run = min(best_run, time.perf_counter() - start)
        return best_run

    shared = ResolverTable()
    build_seconds(shared)  # first build populates the table
    resolver_on = build_seconds(shared)
    resolver_off = build_seconds(None)

    ablation = {
        "cell": {"app": app.name, "preset": HEADLINE_PRESET},
        "rps": {name: round(value, 1) for name, value in rps.items()},
        "relative": {
            name: round(value / rps["full"], 2) if rps["full"] else None
            for name, value in rps.items()
        },
        "fuel_batching": {
            "note": "measured under a 2^40 fuel budget (budgeted runs "
                    "bypass the verdict memo, isolating the batch draw)",
            "batched_rps": round(batch_on, 1),
            "per_call_rps": round(batch_off, 1),
            "speedup": round(batch_on / batch_off, 2)
            if batch_off else None,
        },
        "resolver_cache": {
            "note": "build-time lever: session construction plus the "
                    "first request of each kind (lazy dlsym)",
            "rebuild_s_cached": round(resolver_on, 4),
            "rebuild_s_uncached": round(resolver_off, 4),
            "table_hits": shared.hits,
            "table_misses": shared.misses,
            "build_speedup": round(resolver_off / resolver_on, 2)
            if resolver_on else None,
        },
    }
    bench_path = OUT / "BENCH_serving.json"
    payload = (json.loads(bench_path.read_text())
               if bench_path.exists() else {})
    payload["ablation"] = ablation
    OUT.mkdir(exist_ok=True)
    bench_path.write_text(json.dumps(payload, indent=2) + "\n")

    rows = [f"P8 ablation — {app.name}/{HEADLINE_PRESET} hot mix",
            f"{'variant':<18} {'rps':>9} {'vs full':>8}"]
    for name in order:
        rows.append(f"{name:<18} {rps[name]:>9.0f} "
                    f"{rps[name] / rps['full']:>7.2f}x")
    rows.append(
        f"fuel batching (under budget): {batch_on:.0f} rps batched vs "
        f"{batch_off:.0f} rps per-call ({batch_on / batch_off:.2f}x)"
    )
    rows.append(
        f"resolver cache: rebuild {resolver_on * 1e3:.1f}ms cached vs "
        f"{resolver_off * 1e3:.1f}ms uncached"
    )
    table_path = OUT / "p8_serving_table.txt"
    text = "\n".join(rows)
    if table_path.exists():
        text = table_path.read_text().rstrip() + "\n\n" + text
    artifact("p8_serving_table", text)

    # every lever must at least not hurt the full configuration
    slowest = min(rps, key=rps.get)
    assert rps["full"] >= rps[slowest] * 0.95 or slowest == "full"
