"""F1 — Fig. 1: the wrapper-interposition architecture.

The figure shows three applications (a root process, a user application,
another user application) each running over the *same* shared libraries
but through *different* wrappers — security, robustness, profiling — and
shows that applications can share a wrapper.

This benchmark reproduces the deployment: all three wrapper types are
built over one simulated libc, each app binds through its own preload
configuration, and every app still behaves correctly.  The timed section
is symbol resolution + a wrapped call, i.e. the interposition machinery
itself.
"""

from __future__ import annotations

import pytest

from repro.apps import AUTHD, MSGFORMAT, WORDCOUNT, run_app, standard_files
from repro.linker import DynamicLinker, SharedLibrary
from repro.runtime import SimProcess
from repro.wrappers import PRESETS, WrapperFactory


def deploy(registry, api_document, preset):
    linker = DynamicLinker()
    linker.add_library(SharedLibrary.from_registry(registry))
    factory = WrapperFactory(registry, api_document)
    built = factory.preload(linker, PRESETS[preset])
    return linker, built


def test_fig1_deployment_matrix(registry, api_document, artifact, benchmark):
    """Each app runs under its designated wrapper type; wrappers are
    shared between applications (one wrapper library instance, several
    apps), matching the figure's arrows."""
    rows = ["app          wrapper      status  interposed-calls"]
    assignments = [
        (AUTHD, "security"),      # "root process -> security wrapper"
        (WORDCOUNT, "robustness"),  # "user application -> robustness"
        (MSGFORMAT, "profiling"),   # "user application -> profiling"
    ]
    for app, preset in assignments:
        linker, built = deploy(registry, api_document, preset)
        result = run_app(
            app, linker,
            argv=["/data/sample.txt"] if app is WORDCOUNT else [],
            stdin=b"alice\n" if app is AUTHD else b"ECHO ok\nQUIT\n",
            files=standard_files(),
        )
        assert result.succeeded, f"{app.name} under {preset}"
        interposed = sum(built.state.calls.values()) or "n/a"
        rows.append(f"{app.name:<12} {preset:<12} {result.status:<7} "
                    f"{interposed}")
    # sharing: two apps over the same robustness wrapper instance
    linker, built = deploy(registry, api_document, "robustness")
    first = run_app(WORDCOUNT, linker, argv=["/data/sample.txt"],
                    files=standard_files())
    second = run_app(MSGFORMAT, linker, stdin=b"ECHO hi\nQUIT\n")
    assert first.succeeded and second.succeeded
    rows.append("wordcount+msgformat shared one robustness wrapper: ok")
    artifact("f1_architecture", "\n".join(rows))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # artifact test: run once under --benchmark-only

@pytest.mark.parametrize("preset", sorted(PRESETS))
def test_fig1_interposed_call(benchmark, registry, api_document, preset):
    """Cost of one wrapped strlen call (the interposition path)."""
    linker, _ = deploy(registry, api_document, preset)
    record = linker.resolve("strlen")
    assert record.interposed
    proc = SimProcess()
    text = proc.alloc_cstring(b"benchmark payload")
    result = benchmark(lambda: record.symbol(proc, text))
    assert result == 17


def test_fig1_unwrapped_call(benchmark, registry):
    """Baseline: the same call with no wrapper in the way."""
    linker = DynamicLinker()
    linker.add_library(SharedLibrary.from_registry(registry))
    record = linker.resolve("strlen")
    proc = SimProcess()
    text = proc.alloc_cstring(b"benchmark payload")
    result = benchmark(lambda: record.symbol(proc, text))
    assert result == 17
