"""P10 — chaos under load: availability with the graceful-degradation ladder.

A rate-ramped fault storm (calm → ramp → peak → cooldown) is armed
against live kvd serving traffic on the mutation-dominated ``storm``
mix.  The supervised lane runs a :class:`ResilientSession` — per-request
fuel deadlines, degrade-action containment feeding a circuit breaker
that steps fused → table → interpreted → shed, and request-boundary
healing.  The baseline lane runs the identical storm against a bare
session with none of that: the first uncontained fault is terminal.

The claims this benchmark gates:

* supervised availability ≥ ``HEALERS_STORM_GATE`` (default 0.95) while
  the same storm drives the unsupervised baseline below 50%;
* p99 answered-request cost stays bounded by the fuel deadline;
* every shed/degrade/timeout/crash decision replays from its
  ``(seed, trial, request_index)`` witness alone;
* zero cross-request wrapper-state corruption: after the storm the heap
  verifies clean, and a quiesced probe stream is byte-identical between
  the stormed session and a never-stormed twin.

Writes ``benchmarks/out/BENCH_chaos_serving.json`` and the
``p10_chaos_serving`` artifact.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.apps import SERVER_APPS
from repro.chaos import StormSchedule
from repro.serving import (
    LoadGenerator,
    ResilientSession,
    run_unsupervised,
)
from repro.serving.session import Request
from repro.wrappers.presets import full_coverage_api

#: availability floor for the supervised lane
STORM_GATE = float(os.environ.get("HEALERS_STORM_GATE", "0.95"))
#: the baseline must do *worse* than this, or the storm proves nothing
BASELINE_CEILING = 0.50
REQUESTS = int(os.environ.get("HEALERS_STORM_REQUESTS", "400"))
SEED = 42
LOAD_SEED = 11
PRESET = "security"

APPS = {app.name: app for app in SERVER_APPS}
OUT = pathlib.Path(__file__).parent / "out"

#: drains every key kvd traffic can ever create (4 named + 4 churn),
#: so stormed and fresh sessions converge to the same empty store
QUIESCE = [Request(line=b"DEL " + key) for key in
           (b"alpha", b"beta", b"gamma", b"delta",
            b"churn0", b"churn1", b"churn2", b"churn3")]

#: fresh-key probe stream served identically on both sessions
PROBES = [Request(line=line) for line in (
    b"SET probe one", b"GET probe", b"SET probe two", b"GET probe",
    b"DEL probe", b"GET probe", b"SET probe2 deep", b"GET probe2",
)]


@pytest.fixture(scope="module")
def serving_api(registry, manpages):
    return full_coverage_api(registry, manpages)


def _supervised(registry, serving_api):
    gen = LoadGenerator("kvd", mix="storm", seed=LOAD_SEED)
    schedule = StormSchedule(seed=SEED, requests=REQUESTS)
    session = ResilientSession(APPS["kvd"], preset=PRESET,
                               registry=registry, api=serving_api)
    session.prepare(gen)
    report = session.serve_storm(schedule, gen.stream(REQUESTS))
    return session, report


def _probe_window(session) -> bytes:
    """Serve quiesce + probes; returns the probe-only stdout bytes."""
    for request in QUIESCE:
        session.serve_one(request)
    start = len(session.process.fs.stdout)
    for request in PROBES:
        session.serve_one(request)
    return session.process.fs.stdout[start:]


def test_p10_chaos_under_load(registry, serving_api, artifact):
    # -- supervised lane (twice: the whole run must be deterministic) --
    session, report = _supervised(registry, serving_api)
    _, report_again = _supervised(registry, serving_api)
    assert report.to_dict() == report_again.to_dict()

    # -- unsupervised baseline: same storm, no ladder ------------------
    schedule = StormSchedule(seed=SEED, requests=REQUESTS)
    baseline = run_unsupervised(
        APPS["kvd"], schedule,
        LoadGenerator("kvd", mix="storm", seed=LOAD_SEED).stream(REQUESTS),
        preset=PRESET, registry=registry, api=serving_api,
        gen=LoadGenerator("kvd", mix="storm", seed=LOAD_SEED),
    )

    # -- the availability claim ----------------------------------------
    assert report.availability >= STORM_GATE, (
        f"supervised availability {report.availability:.3f} under the "
        f"gate {STORM_GATE}")
    assert baseline.availability < BASELINE_CEILING, (
        f"baseline availability {baseline.availability:.3f} not low "
        f"enough for the storm to prove anything")

    # -- bounded tail: answered requests never exceed the deadline -----
    p99 = report.fuel_quantile(0.99)
    assert p99 <= session.slo.deadline_fuel

    # -- witness replay: every non-ok decision from three integers -----
    witnesses = report.witnesses()
    assert witnesses, "a storm with no incidents gates nothing"
    for witness in witnesses:
        replayed = StormSchedule.replay_witness(witness)
        plan = report.schedule.plan_for(witness["request_index"])
        if plan is None:
            assert replayed is None
        else:
            assert replayed.to_dict() == plan.to_dict()

    # -- zero cross-request corruption ---------------------------------
    stormed = session.session
    assert stormed.process.heap.check_integrity() == []
    twin = ResilientSession(APPS["kvd"], preset=PRESET,
                            registry=registry, api=serving_api)
    twin.prepare(LoadGenerator("kvd", mix="storm", seed=LOAD_SEED))
    stormed_window = _probe_window(stormed)
    fresh_window = _probe_window(twin.session)
    assert stormed_window == fresh_window, (
        "stormed session diverged from a never-stormed twin on a "
        "quiesced probe stream: cross-request state corruption")

    # -- artifact ------------------------------------------------------
    payload = {
        "app": "kvd",
        "preset": PRESET,
        "gate": STORM_GATE,
        "baseline_ceiling": BASELINE_CEILING,
        "supervised": report.to_dict(),
        "baseline": baseline.to_dict(),
        "ladder": session.breaker.snapshot(),
        "witnesses_checked": len(witnesses),
        "deadline_fuel": session.slo.deadline_fuel,
        "differential": {
            "heap_defects": 0,
            "probe_bytes": len(stormed_window),
            "identical": True,
        },
    }
    OUT.mkdir(exist_ok=True)
    (OUT / "BENCH_chaos_serving.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True))

    counts = report.counts()
    lines = [
        "P10  chaos under load: fault storm vs the degradation ladder",
        f"     storm: seed {SEED}, {REQUESTS} requests, "
        f"{report.schedule.total_faults()} faults scheduled",
        f"     supervised  availability {report.availability:6.1%}  "
        f"(ok {counts['ok']}, degraded {counts['degraded']}, "
        f"timeout {counts['timeout']}, crashed {counts['crashed']}, "
        f"shed {counts['shed']})",
        f"     baseline    availability {baseline.availability:6.1%}  "
        f"(dead {baseline.counts()['dead']})",
        f"     p50/p99 fuel {report.fuel_quantile(0.5)}/"
        f"{p99} (deadline {session.slo.deadline_fuel})",
        f"     ladder moves: " + (", ".join(
            f"{t['from']}->{t['to']}@{t['request_index']}"
            for t in session.breaker.snapshot()["transitions"]) or "none"),
        f"     witnesses replayed: {len(witnesses)}; "
        f"post-storm differential: clean",
    ]
    artifact("p10_chaos_serving", "\n".join(lines))
