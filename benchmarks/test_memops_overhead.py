"""P4 — memory-substrate throughput: vectorized vs scalar reference.

The vectorized substrate replaces the byte-at-a-time simulation loops with
bulk slice operations plus exact fault/fuel replay; the original loops
survive as the ``HEALERS_SCALAR_MEMORY=1`` backend.  This benchmark
measures MB/s for the three hottest patterns — ``memcpy`` (bulk copy),
``strlen`` (terminator scan) and the allocator's canary integrity sweep —
on 64 KiB working sets under both backends, writes
``benchmarks/out/BENCH_memops.json`` and gates the vectorized backend at
``HEALERS_MEMOPS_GATE``x (default 5x) the scalar throughput.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.libc import helpers
from repro.memory import PAGE_SIZE, Perm
from repro.runtime import SimProcess

BUFFER = 64 * 1024

#: minimum vectorized-over-scalar throughput ratio on 64 KiB working sets
MEMOPS_GATE = float(os.environ.get("HEALERS_MEMOPS_GATE", "5.0"))


def make_proc(scalar: bool) -> SimProcess:
    proc = SimProcess()
    proc.space.scalar = scalar
    return proc


def best_seconds(fn, repeats: int, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter_ns()
        for _ in range(repeats):
            fn()
        best = min(best, (time.perf_counter_ns() - start) / repeats)
    return best / 1e9


def memcpy_case(scalar: bool) -> float:
    """Bytes/s for a 64 KiB libc-level memcpy loop."""
    proc = make_proc(scalar)
    region = proc.space.map_region(2 * BUFFER + PAGE_SIZE, Perm.RW, "bench")
    src, dest = region.start, region.start + BUFFER
    proc.space.fill(src, 0x5A, BUFFER)
    repeats = 1 if scalar else 50
    seconds = best_seconds(
        lambda: helpers.copy_bytes_forward(proc, dest, src, BUFFER), repeats
    )
    return BUFFER / seconds


def strlen_case(scalar: bool) -> float:
    """Bytes/s for a 64 KiB terminator scan."""
    proc = make_proc(scalar)
    region = proc.space.map_region(BUFFER + PAGE_SIZE, Perm.RW, "bench")
    proc.space.fill(region.start, 0x41, BUFFER - 1)
    proc.space.write(region.start + BUFFER - 1, b"\x00")
    repeats = 1 if scalar else 50
    seconds = best_seconds(
        lambda: helpers.scan_string_length(proc, region.start), repeats
    )
    return BUFFER / seconds


def canary_case(scalar: bool) -> float:
    """Bytes/s of heap walked by the canary integrity sweep."""
    proc = SimProcess(heap_canaries=True)
    proc.space.scalar = scalar
    for _ in range(512):
        proc.malloc(96)
    walked = proc.heap._brk - proc.heap.mapping.start
    assert walked >= BUFFER  # the sweep covers a 64 KiB-class working set
    assert proc.heap.check_integrity() == []
    repeats = 2 if scalar else 20
    seconds = best_seconds(lambda: proc.heap.check_integrity(), repeats)
    return walked / seconds


CASES = {
    "memcpy": memcpy_case,
    "strlen": strlen_case,
    "canary_scan": canary_case,
}


def test_memops_throughput_gate(artifact):
    results = {}
    for name, case in CASES.items():
        scalar_bps = case(scalar=True)
        vector_bps = case(scalar=False)
        results[name] = {
            "scalar_mb_per_sec": round(scalar_bps / 1e6, 2),
            "vectorized_mb_per_sec": round(vector_bps / 1e6, 2),
            "speedup": round(vector_bps / scalar_bps, 1),
        }

    payload = {
        "working_set_bytes": BUFFER,
        "gate": {"min_speedup": MEMOPS_GATE},
        "cases": results,
    }
    out = pathlib.Path(__file__).parent / "out"
    out.mkdir(exist_ok=True)
    (out / "BENCH_memops.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    rows = ["P4 — memory substrate throughput (64 KiB working sets)",
            f"{'case':<14} {'scalar':>12} {'vectorized':>12} {'speedup':>9}"]
    for name, row in results.items():
        rows.append(
            f"{name:<14} {row['scalar_mb_per_sec']:>9.2f}MB/s "
            f"{row['vectorized_mb_per_sec']:>9.2f}MB/s "
            f"{row['speedup']:>8.1f}x"
        )
    artifact("p4_memops_throughput", "\n".join(rows))

    for name, row in results.items():
        assert row["speedup"] >= MEMOPS_GATE, (
            f"{name}: vectorized only {row['speedup']}x the scalar "
            f"backend (gate: {MEMOPS_GATE}x)"
        )
