"""Ablation — check strength (DESIGN.md §5).

The robustness wrapper installs the *weakest robust type*'s check for
each parameter.  Two alternatives bracket that choice:

* weaker (pointer-validity only): cheaper, but misses the failures that
  need termination/capacity knowledge;
* maximal (strictest rung of every chain, regardless of derivation):
  same coverage on this library, but pays for checks the experiments
  proved unnecessary.

This is the coverage/overhead trade-off behind "the method should have
low overhead … an application should only pay the overhead for the
protection it actually needs".
"""

from __future__ import annotations

import copy
import time

import pytest

from repro.ftypes.chains import CHAINS
from repro.injection import Campaign
from repro.linker import DynamicLinker, SharedLibrary
from repro.robust import RobustAPIDocument
from repro.runtime import SimProcess
from repro.wrappers import ROBUSTNESS, WrapperFactory

STRATEGIES = ["validity-only", "derived", "maximal"]


def variant_document(api_document, strategy):
    document = copy.deepcopy(api_document)
    for decl in document.functions.values():
        for param in decl.params:
            if not param.chain:
                continue
            chain = CHAINS[param.chain]
            if strategy == "validity-only":
                # rank-1 check when the chain has one (pointer validity)
                param.check = chain[1].check if len(chain) > 1 else ""
            elif strategy == "maximal":
                param.check = chain[-1].check
            # "derived" keeps what the campaign produced
    return document


def deployed_campaign(registry, manpages, document):
    linker = DynamicLinker()
    linker.add_library(SharedLibrary.from_registry(registry))
    built = WrapperFactory(registry, document).preload(linker, ROBUSTNESS)

    def interpose(function):
        symbol = built.library.lookup(function.name)
        return symbol.impl if symbol else function.impl

    return Campaign(registry, manpages=manpages, interposer=interpose), linker


FUNCTIONS = ["strcpy", "strlen", "strcat", "memcpy", "toupper", "free",
             "sprintf", "strtol"]


def test_ablation_check_strength(registry, manpages, api_document,
                                 artifact, benchmark):
    """Residual failure rate and check cost per strategy."""
    rows = ["check-strength ablation",
            f"{'strategy':<16} {'residual':>9} {'strlen cost':>12}"]
    residuals = {}
    costs = {}
    for strategy in STRATEGIES:
        document = variant_document(api_document, strategy)
        campaign, linker = deployed_campaign(registry, manpages, document)
        result = campaign.run(FUNCTIONS)
        residuals[strategy] = result.failure_rate
        symbol = linker.resolve("strlen").symbol
        proc = SimProcess()
        text = proc.alloc_cstring(b"cost probe string")
        start = time.perf_counter_ns()
        for _ in range(3000):
            symbol(proc, text)
        costs[strategy] = (time.perf_counter_ns() - start) / 3000
        rows.append(f"{strategy:<16} {residuals[strategy]:>9.1%} "
                    f"{costs[strategy]:>10.0f}ns")
    artifact("ablation_check_strength", "\n".join(rows))

    # weaker checks leave real failures on the table
    assert residuals["validity-only"] > residuals["derived"]
    # derived and maximal coincide in coverage on this library
    assert abs(residuals["derived"] - residuals["maximal"]) < 0.02
    # but validity-only is the cheapest per call
    assert costs["validity-only"] <= costs["maximal"] * 1.2
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # artifact test: run once under --benchmark-only

@pytest.mark.parametrize("strategy", STRATEGIES)
def test_ablation_check_cost(benchmark, registry, manpages, api_document,
                             strategy):
    """Benchmark series: wrapped strcpy under each check strategy."""
    document = variant_document(api_document, strategy)
    _, linker = deployed_campaign(registry, manpages, document)
    symbol = linker.resolve("strcpy").symbol
    proc = SimProcess()
    dest = proc.alloc_buffer(64)
    src = proc.alloc_cstring(b"payload")
    result = benchmark(lambda: symbol(proc, dest, src))
    assert result == dest
