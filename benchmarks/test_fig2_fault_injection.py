"""F2 — Fig. 2: prototypes → fault-injection experiments → robust API.

The figure's pipeline has three boxes; this benchmark runs each and
reports the quantities the pipeline produces: prototypes extracted from
the header tree, probes executed with their outcome breakdown, and the
number of parameters whose robust type is stronger than the declared
type.  The Ballista-style expectation (the paper's motivation) is a
*substantial* raw failure rate on the unprotected library.
"""

from __future__ import annotations

from repro.core import Healers
from repro.injection import Campaign


def test_fig2_pipeline(campaign_result, derivations, artifact, benchmark):
    """End-to-end shape check + artifact with the pipeline's numbers."""
    toolkit = Healers()
    prototypes = toolkit.extract_prototypes()
    counts = campaign_result.outcome_counts()
    strengthened = sum(
        1 for d in derivations.values() for p in d.params if p.strengthened
    )
    total_params = sum(len(d.params) for d in derivations.values())
    lines = [
        "Fig. 2 pipeline reproduction",
        f"  stage 1  prototypes extracted from headers : {len(prototypes)} "
        "(libc + libm)",
        f"  stage 2  functions probed                  : "
        f"{len(campaign_result.reports)}",
        f"           probes executed                   : "
        f"{campaign_result.total_probes}",
        f"           robustness failures               : "
        f"{campaign_result.total_failures} "
        f"({campaign_result.failure_rate:.1%})",
    ]
    for outcome in ("crash", "hang", "abort", "silent", "error", "pass"):
        lines.append(f"             {outcome:<8} {counts.get(outcome, 0)}")
    lines += [
        f"  stage 3  parameters derived                : {total_params}",
        f"           strengthened beyond declared type : {strengthened}",
    ]
    artifact("f2_fault_injection", "\n".join(lines))

    # shape assertions: the library is brittle, the pipeline finds it
    assert len(prototypes) == 123  # libc (106) + libm (17)
    assert campaign_result.failure_rate > 0.20
    assert counts.get("crash", 0) > counts.get("abort", 0)
    assert strengthened >= total_params * 0.4
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # artifact test: run once under --benchmark-only

def test_fig2_probe_throughput(benchmark, registry, manpages):
    """Probes/second for one representative function's full sweep."""
    campaign = Campaign(registry, manpages=manpages)
    report = benchmark(lambda: campaign.probe_function("strcpy"))
    assert report.total_probes >= 15


def test_fig2_prototype_extraction(benchmark):
    """Header-tree render + parse round trip (pipeline stage 1)."""
    toolkit = Healers()
    prototypes = benchmark(toolkit.extract_prototypes)
    assert len(prototypes) == 123


def test_fig2_derivation_speed(benchmark, campaign_result, registry,
                               manpages):
    """Weakest-robust-type search over the campaign's verdicts."""
    from repro.robust import derive_api

    derived = benchmark(
        lambda: derive_api(campaign_result, registry, manpages)
    )
    assert len(derived) == len(campaign_result.reports)
