"""P9 — collection fabric soak: throughput, backpressure, zero loss.

Compares the legacy thread-per-connection :class:`CollectionServer`
against the sharded non-blocking :class:`IngestServer` fabric on the
same document stream at growing connection counts, then soaks the
fabric with ≥1000 concurrent shippers (every one holding its own open
connection), a paced :class:`CollectionSink` segment that must finish
with ``dropped == 0``, and a chaos net-reset/slow-peer schedule under
which every acked document must be stored or spool-replayed after a
server restart (the zero-loss contract).

The headline is the fabric-over-legacy documents/sec ratio at the
highest connection count; ``HEALERS_COLLECTION_GATE`` (default 5.0)
gates it — shared CI runners can relax it.  ``HEALERS_SOAK_SHIPPERS``
(default 1000) scales the soak; CI uses 128.

Writes ``benchmarks/out/BENCH_collection.json`` and the
``p9_collection_soak`` table artifact.  The ablation test appends its
section (shards off, spool off, credits off) to both.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time

import pytest

from repro.chaos import ChaosInjector, ChaosPlan
from repro.collection import (
    CollectionServer,
    FabricClient,
    IngestServer,
    submit_documents,
)
from repro.profiling import ProfileDocument
from repro.telemetry import CollectionSink
from repro.wrappers.state import WrapperState

#: minimum fabric-over-legacy docs/sec ratio at the top connection count
COLLECTION_GATE = float(os.environ.get("HEALERS_COLLECTION_GATE", "5.0"))
SOAK_SHIPPERS = int(os.environ.get("HEALERS_SOAK_SHIPPERS", "1000"))
SOAK_DOCS_EACH = int(os.environ.get("HEALERS_SOAK_DOCS", "4"))
#: (connections, batch frames per connection) sweep for the comparison
SWEEP = ((16, 8), (64, 8), (256, 4))
BATCH = 8
SHARDS = 4

OUT = pathlib.Path(__file__).parent / "out"
BENCH_PATH = OUT / "BENCH_collection.json"


def _document_xml(application="bench", calls=3):
    state = WrapperState()
    state.calls["strlen"] = calls
    state.exectime_ns["strlen"] = 100 * calls
    return ProfileDocument.from_state(state, application, "profiling").to_xml()


#: per-shipper documents: a fleet ships many applications, and the
#: application is the fabric's shard-routing key — a single-app stream
#: would serialise every frame onto one shard
_WORKER_DOCS = {}


def _worker_doc(worker: int) -> str:
    if worker not in _WORKER_DOCS:
        _WORKER_DOCS[worker] = _document_xml(f"app{worker}")
    return _WORKER_DOCS[worker]


def _update_bench(section: str, payload) -> None:
    OUT.mkdir(exist_ok=True)
    data = {}
    if BENCH_PATH.exists():
        data = json.loads(BENCH_PATH.read_text())
    data[section] = payload
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


def _drive_legacy(conns: int, frames_each: int) -> float:
    """Legacy server: one connection (and server thread) per frame."""
    with CollectionServer() as server:
        def shipper(worker):
            doc = _worker_doc(worker)
            for _ in range(frames_each):
                submit_documents(server.address, [doc] * BATCH)

        threads = [threading.Thread(target=shipper, args=(w,))
                   for w in range(conns)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        total = conns * frames_each * BATCH
        assert len(server.store) == total
        assert not server.errors
    return total / elapsed


def _drive_fabric(conns: int, frames_each: int, *, shards=SHARDS,
                  spool_dir=None, credit_limit=64) -> float:
    """Fabric: one persistent credit-paced connection per shipper."""
    with IngestServer(shards=shards, spool_dir=spool_dir,
                      credit_limit=credit_limit) as server:
        def shipper(worker):
            doc = _worker_doc(worker)
            client = FabricClient(server.address, shipper=f"w{worker}",
                                  window=credit_limit)
            for _ in range(frames_each):
                client.ship([doc] * BATCH, wait=False)
            client.flush()
            client.close()

        threads = [threading.Thread(target=shipper, args=(w,))
                   for w in range(conns)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        total = conns * frames_each * BATCH
        assert len(server.store) == total
        assert not server.errors
    return total / elapsed


def test_p9_throughput_vs_legacy(artifact):
    """BENCH_collection.json — docs/sec sweep and the ≥5x headline."""
    rows = []
    for conns, frames_each in SWEEP:
        # paired best-of-2 rounds cancels most scheduler drift
        legacy = max(_drive_legacy(conns, frames_each)
                     for _ in range(2))
        fabric = max(_drive_fabric(conns, frames_each)
                     for _ in range(2))
        rows.append({
            "connections": conns,
            "documents": conns * frames_each * BATCH,
            "legacy_docs_per_sec": round(legacy, 1),
            "fabric_docs_per_sec": round(fabric, 1),
            "speedup": round(fabric / legacy, 2),
        })
    headline = rows[-1]
    _update_bench("throughput", {
        "sweep": rows,
        "headline": {
            "connections": headline["connections"],
            "speedup": headline["speedup"],
        },
        "gate": {"min_speedup_at_top_connections": COLLECTION_GATE},
    })
    lines = [
        "P9a — collection fabric vs legacy server (docs/sec)",
        f"{'conns':>6} {'legacy':>10} {'fabric':>10} {'speedup':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row['connections']:>6} {row['legacy_docs_per_sec']:>10,.0f}"
            f" {row['fabric_docs_per_sec']:>10,.0f}"
            f" {row['speedup']:>7.2f}x")
    artifact("p9_collection_throughput", "\n".join(lines) + "\n")
    assert headline["speedup"] >= COLLECTION_GATE, (
        f"fabric is only {headline['speedup']}x legacy at "
        f"{headline['connections']} connections; "
        f"gate: {COLLECTION_GATE}x")


def test_p9_fleet_soak(artifact):
    """≥1000 concurrent shippers, all connections open at once, and a
    paced CollectionSink segment that must drop nothing."""
    drivers = max(1, min(100, SOAK_SHIPPERS // 10))
    with IngestServer(shards=SHARDS) as server:
        clients = [FabricClient(server.address, shipper=f"s{i}")
                   for i in range(SOAK_SHIPPERS)]

        def drive(worker):
            mine = clients[worker::drivers]
            for client in mine:
                client.ship([_worker_doc(worker)] * SOAK_DOCS_EACH,
                            wait=False)
            for client in mine:
                client.flush()

        threads = [threading.Thread(target=drive, args=(w,))
                   for w in range(drivers)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        concurrent = len(server._connections)
        total = SOAK_SHIPPERS * SOAK_DOCS_EACH
        assert len(server.store) == total
        assert concurrent >= SOAK_SHIPPERS  # every shipper held its line
        for client in clients:
            client.close()

        # paced-sink segment: backpressure must pace, never drop
        sink = CollectionSink(server.address, batch_size=16,
                              flush_interval=0.01, pace=True,
                              max_pending=128)
        sink_docs = 500
        for i in range(sink_docs):
            sink.ship(_document_xml(f"sink{i % 8}", calls=i + 1))
        summary = sink.close()
        assert summary["dropped"] == 0
        assert sink.dropped == 0
        assert summary["shipped"] == sink_docs
        assert len(server.store) == total + sink_docs

    soak = {
        "shippers": SOAK_SHIPPERS,
        "documents": total,
        "concurrent_connections": concurrent,
        "docs_per_sec": round(total / elapsed, 1),
        "sink_documents": sink_docs,
        "sink_dropped": summary["dropped"],
    }
    _update_bench("soak", soak)
    artifact("p9_collection_soak", (
        "P9b — fleet soak\n"
        f"shippers              {SOAK_SHIPPERS:>8}\n"
        f"concurrent conns      {concurrent:>8}\n"
        f"documents             {total:>8}\n"
        f"docs/sec              {soak['docs_per_sec']:>8,.0f}\n"
        f"paced sink documents  {sink_docs:>8}\n"
        f"paced sink dropped    {summary['dropped']:>8}\n"))


def test_p9_chaos_zero_loss(tmp_path):
    """acked ⇒ stored-or-replayed under net-reset/slow-peer chaos."""
    spool = str(tmp_path / "spool")
    shippers, docs_each = 8, 12
    shipped = [[] for _ in range(shippers)]
    plan_seed = 11
    with IngestServer(shards=SHARDS, spool_dir=spool) as server:
        def shipper(worker):
            plan = ChaosPlan.for_trial(
                plan_seed, worker, sites=("net-reset", "net-slow"),
                rate=0.25)
            injector = ChaosInjector(plan)
            client = FabricClient(server.address,
                                  shipper=f"chaos{worker}",
                                  retry_backoff=0.001)
            injector.arm_fabric(client)
            for i in range(docs_each):
                xml = _document_xml(f"chaos{worker}", calls=i + 1)
                client.ship([xml])
                shipped[worker].append(xml)
            client.flush()
            client.close()

        threads = [threading.Thread(target=shipper, args=(w,))
                   for w in range(shippers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        acked = sorted(xml for per in shipped for xml in per)
        stored = sorted(d.raw_xml for d in server.store.documents)
        assert stored == acked  # exactly once despite the resets

    # the crash-restart half of the contract: a fresh server replays
    # the spool and still holds every acked document
    with IngestServer(shards=SHARDS, spool_dir=spool) as reborn:
        replayed = sorted(d.raw_xml for d in reborn.store.documents)
        assert replayed == acked
    _update_bench("chaos_zero_loss", {
        "shippers": shippers,
        "documents_acked": len(acked),
        "documents_stored": len(stored),
        "documents_after_restart": len(replayed),
        "lost": 0,
    })


def test_p9_ablations(artifact):
    """Each fabric pillar earns its keep: shards, spool, credits."""
    conns, frames_each = 64, 6
    total = conns * frames_each * BATCH
    lanes = {
        "full": dict(shards=SHARDS, spool_dir=None, credit_limit=64),
        "shards-off": dict(shards=1, spool_dir=None, credit_limit=64),
        "credits-off": dict(shards=SHARDS, spool_dir=None,
                            credit_limit=1),
    }
    rates = {}
    for name, kwargs in lanes.items():
        rates[name] = max(_drive_fabric(conns, frames_each, **kwargs)
                          for _ in range(2))
    # spool-on needs a disk-backed lane of its own
    import tempfile

    def spooled():
        with tempfile.TemporaryDirectory() as spool_dir:
            return _drive_fabric(conns, frames_each, shards=SHARDS,
                                 spool_dir=spool_dir)

    rates["spool-on"] = max(spooled() for _ in range(2))
    section = {
        name: {"docs_per_sec": round(rate, 1),
               "relative_to_full": round(rate / rates["full"], 3)}
        for name, rate in rates.items()
    }
    section["config"] = {"connections": conns, "documents": total}
    _update_bench("ablations", section)
    lines = [
        "P9c — fabric ablations (64 connections, docs/sec)",
        f"{'lane':<12} {'docs/sec':>10} {'vs full':>8}",
    ]
    for name in ("full", "shards-off", "credits-off", "spool-on"):
        row = section[name]
        lines.append(f"{name:<12} {row['docs_per_sec']:>10,.0f} "
                     f"{row['relative_to_full']:>7.2f}x")
    artifact("p9_collection_ablations", "\n".join(lines) + "\n")
    # correctness holds in every lane (asserted inside _drive_fabric);
    # credits-off must still be lossless, merely slower
    assert rates["credits-off"] > 0
