"""F4 — Fig. 4 / demos 3.1–3.2: library and application scanning.

Demo 3.1: list all libraries, select one, list its functions, produce the
XML declaration file.  Demo 3.2 (Fig. 4's screenshot): select an
executable, extract "the list of libraries linked to this application as
well as the list of undefined functions".
"""

from __future__ import annotations

from repro.core import Healers
from repro.robust import RobustAPIDocument


def test_fig4_scanning_views(artifact, benchmark):
    """Reproduce both browser views over the standard system image."""
    toolkit = Healers()
    lines = ["demo 3.1 — libraries on the system"]
    for scan in toolkit.list_libraries():
        lines.append(f"  {scan.path:<20} soname={scan.soname:<12} "
                     f"functions={scan.function_count}")
    libc_scan = toolkit.scan_library("/lib/libc.so.6")
    lines.append(f"  libc functions (first 10): "
                 f"{', '.join(libc_scan.functions[:10])} …")

    lines.append("")
    lines.append("demo 3.2 — application scans (the Fig. 4 view)")
    for path in toolkit.list_applications():
        scan = toolkit.scan_application(path)
        if not scan.dynamically_linked:
            lines.append(f"  {path}: statically linked (not protectable)")
            continue
        libraries = ", ".join(
            f"{soname} => {p}" for soname, p in
            scan.resolved_libraries.items()
        )
        lines.append(f"  {path}")
        lines.append(f"    linked libraries : {libraries}")
        lines.append(f"    undefined funcs  : "
                     f"{', '.join(scan.undefined_functions)}")
        lines.append(f"    wrappable        : {scan.coverage:.0%}")
    artifact("f4_scanning", "\n".join(lines))

    # shape: every bundled dynamic app fully resolvable and wrappable
    dynamic = [toolkit.scan_application(p)
               for p in toolkit.list_applications()]
    linked = [s for s in dynamic if s.dynamically_linked]
    assert len(linked) == 6
    assert all(s.coverage == 1.0 for s in linked)
    assert all(not s.missing_libraries for s in linked)
    # statcalc resolves both of its libraries
    statcalc = [s for s in linked if s.path == "/bin/statcalc"][0]
    assert set(statcalc.resolved_libraries) == {"libc.so.6", "libm.so.6"}
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # artifact test: run once under --benchmark-only

def test_fig4_declaration_file(artifact, benchmark):
    """The XML declaration file for the selected library (demo 3.1)."""
    toolkit = Healers()
    xml = toolkit.declaration_file("/lib/libc.so.6")
    artifact("f4_declaration_head", xml[:2500])
    document = RobustAPIDocument.from_xml(xml)
    assert len(document.functions) == 106
    strcpy = document.functions["strcpy"]
    assert [p.name for p in strcpy.params] == ["dest", "src"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # artifact test: run once under --benchmark-only

def test_fig4_library_scan_speed(benchmark):
    """Parse + inventory speed for the main library."""
    toolkit = Healers()
    scan = benchmark(lambda: toolkit.scan_library("/lib/libc.so.6"))
    assert scan.function_count == 106


def test_fig4_application_scan_speed(benchmark):
    """Parse + linkage-resolution speed for one application."""
    toolkit = Healers()
    scan = benchmark(lambda: toolkit.scan_application("/bin/wordcount"))
    assert scan.coverage == 1.0
