"""Telemetry gate — bus overhead vs the old direct state mutation.

The event-bus refactor moved the profiling hooks from in-place
``WrapperState`` mutation to ``bus.emit`` of typed events.  This gate
rebuilds the pre-refactor hooks verbatim (direct mutation, no bus) and
asserts the per-call overhead of the bus path stays under 2x the direct
path, so the pipeline's flexibility never silently costs the "low
overhead during normal operations" claim.  The p50/p99 per-call numbers
land in ``benchmarks/out/telemetry_overhead.txt``.
"""

from __future__ import annotations

import time

from repro.linker import DynamicLinker, SharedLibrary
from repro.runtime import Errno, SimProcess
from repro.telemetry import MetricsSink
from repro.wrappers import PROFILING, WrapperFactory
from repro.wrappers.generators import (
    CallCounterGen,
    CallerGen,
    CollectErrorsGen,
    ExectimeGen,
    FuncErrorsGen,
    PrototypeGen,
)
from repro.wrappers.microgen import GeneratorRegistry, RuntimeHooks

REPEATS = 3000
ROUNDS = 5


# ----------------------------------------------------------------------
# the pre-refactor hooks, verbatim: direct WrapperState mutation
# ----------------------------------------------------------------------

class DirectCallCounterGen(CallCounterGen):
    def runtime_hooks(self, unit) -> RuntimeHooks:
        state = unit.state
        name = unit.name

        def count(frame) -> None:
            state.calls[name] += 1

        return RuntimeHooks(generator=self.name, prefix=count)


class DirectExectimeGen(ExectimeGen):
    def runtime_hooks(self, unit) -> RuntimeHooks:
        state = unit.state
        name = unit.name

        def start(frame) -> None:
            frame.scratch["exectime_start"] = time.perf_counter_ns()

        def stop(frame) -> None:
            started = frame.scratch.get("exectime_start")
            if started is not None:
                state.exectime_ns[name] += (
                    time.perf_counter_ns() - started
                )

        return RuntimeHooks(generator=self.name, prefix=start, postfix=stop)


class DirectCollectErrorsGen(CollectErrorsGen):
    def runtime_hooks(self, unit) -> RuntimeHooks:
        state = unit.state

        def before(frame) -> None:
            frame.scratch["collect_errors_err"] = frame.process.errno

        def after(frame) -> None:
            errno_now = frame.process.errno
            if errno_now != frame.scratch.get("collect_errors_err"):
                bucket = errno_now
                if bucket < 0 or bucket >= Errno.MAX_ERRNO:
                    bucket = Errno.MAX_ERRNO
                state.global_errnos[bucket] += 1

        return RuntimeHooks(generator=self.name, prefix=before,
                            postfix=after)


class DirectFuncErrorsGen(FuncErrorsGen):
    def runtime_hooks(self, unit) -> RuntimeHooks:
        from collections import Counter

        state = unit.state
        name = unit.name

        def before(frame) -> None:
            frame.scratch["func_error_err"] = frame.process.errno

        def after(frame) -> None:
            errno_now = frame.process.errno
            if errno_now != frame.scratch.get("func_error_err"):
                bucket = errno_now
                if bucket < 0 or bucket >= Errno.MAX_ERRNO:
                    bucket = Errno.MAX_ERRNO
                state.func_errnos.setdefault(
                    name, Counter())[bucket] += 1

        return RuntimeHooks(generator=self.name, prefix=before,
                            postfix=after)


def legacy_registry() -> GeneratorRegistry:
    registry = GeneratorRegistry()
    for generator in (PrototypeGen(), CallerGen(), DirectCallCounterGen(),
                      DirectExectimeGen(), DirectCollectErrorsGen(),
                      DirectFuncErrorsGen()):
        registry.register(generator)
    return registry


# ----------------------------------------------------------------------


#: a near-free call, so the wrapper overhead dominates the measurement
PROBE_FUNCTION = "toupper"
PROBE_ARGS = (ord("a"),)


def _profiling_linker(registry, api_document, generators=None):
    linker = DynamicLinker()
    linker.add_library(SharedLibrary.from_registry(registry))
    factory = WrapperFactory(registry, api_document, generators=generators)
    built = factory.preload(linker, PROFILING, functions=[PROBE_FUNCTION])
    return linker, built


def _plain_linker(registry):
    linker = DynamicLinker()
    linker.add_library(SharedLibrary.from_registry(registry))
    return linker


def _measure_interleaved(linkers) -> list:
    """Best-of-rounds per-call cost of each linker, rounds interleaved
    across the paths so machine-load drift hits all of them equally."""
    proc = SimProcess()
    symbols = [linker.resolve(PROBE_FUNCTION).symbol for linker in linkers]
    best = [float("inf")] * len(symbols)
    for _ in range(ROUNDS):
        for which, symbol in enumerate(symbols):
            start = time.perf_counter_ns()
            for _ in range(REPEATS):
                symbol(proc, *PROBE_ARGS)
            best[which] = min(
                best[which], (time.perf_counter_ns() - start) / REPEATS
            )
    return best


def test_bus_overhead_under_2x_direct(registry, api_document, artifact):
    direct_linker, direct_built = _profiling_linker(
        registry, api_document, generators=legacy_registry())
    bus_linker, bus_built = _profiling_linker(registry, api_document)
    metrics = MetricsSink()
    bus_built.bus.subscribe(metrics)

    base_ns, direct_ns, bus_ns = _measure_interleaved(
        [_plain_linker(registry), direct_linker, bus_linker])

    # both paths observed the same calls (timing rounds included)
    expected = ROUNDS * REPEATS
    assert direct_built.state.calls[PROBE_FUNCTION] == expected
    assert bus_built.state.calls[PROBE_FUNCTION] == expected
    p50, p99 = metrics.exectime_quantiles(PROBE_FUNCTION)

    direct_overhead = max(direct_ns - base_ns, 1.0)
    bus_overhead = max(bus_ns - base_ns, 1.0)
    ratio = bus_overhead / direct_overhead

    rows = [
        f"Telemetry bus overhead — profiling wrapper on {PROBE_FUNCTION}",
        f"{'path':<22} {'per call':>12}",
        f"{'unwrapped':<22} {base_ns:>10.0f}ns",
        f"{'direct mutation':<22} {direct_ns:>10.0f}ns  "
        f"(+{direct_overhead:.0f}ns)",
        f"{'event bus':<22} {bus_ns:>10.0f}ns  (+{bus_overhead:.0f}ns)",
        f"bus/direct overhead ratio: {ratio:.2f}x (gate: < 2.00x)",
        "",
        "wrapped-call exectime distribution (MetricsSink reservoir):",
        f"  p50 {p50} ns   p99 {p99} ns "
        f"({metrics.snapshot()['exectime'][PROBE_FUNCTION]['samples']}"
        f" samples)",
    ]
    artifact("telemetry_overhead", "\n".join(rows))

    assert ratio < 2.0, (
        f"bus overhead {bus_overhead:.0f}ns is {ratio:.2f}x the direct "
        f"mutation overhead {direct_overhead:.0f}ns"
    )


def test_emit_path_is_allocation_bounded(registry, api_document):
    """The bus buffer never outgrows its capacity during a hot loop."""
    linker, built = _profiling_linker(registry, api_document)
    symbol = linker.resolve(PROBE_FUNCTION).symbol
    proc = SimProcess()
    for _ in range(5000):
        symbol(proc, *PROBE_ARGS)
    assert len(built.bus._buffer) < built.bus.capacity
    assert built.state.calls[PROBE_FUNCTION] == 5000
