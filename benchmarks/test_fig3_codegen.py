"""F3 — Fig. 3: the generated wrapper function for wctrans.

The figure shows the profiling wrapper for ``wctrans`` assembled from six
micro-generators: prototype, function exectime, collect errors, func
errors, call counter, caller — prefix fragments in generator order,
postfix fragments in reverse.  This benchmark regenerates that exact C
function, asserts its structure fragment by fragment, and times both
backends (C text and executable composition).
"""

from __future__ import annotations

import re

from repro.wrappers import (
    PROFILING,
    WrapperFactory,
    compose_wrapper,
    render_function,
    render_library,
    units_for,
)

FIG3_BANNERS_IN_ORDER = [
    "/* Prefix code by micro-gen prototype */",
    "/* Prefix code by micro-gen function exectime */",
    "/* Prefix code by micro-gen collect errors */",
    "/* Prefix code by micro-gen func errors */",
    "/* Prefix code by micro-gen call counter */",
    "/* Postfix code by micro-gen caller */",
    "/* Postfix code by micro-gen func errors */",
    "/* Postfix code by micro-gen collect errors */",
    "/* Postfix code by micro-gen function exectime */",
    "/* Postfix code by micro-gen prototype */",
]


def test_fig3_wctrans_wrapper(registry, api_document, artifact, benchmark):
    """Regenerate Fig. 3 and verify every structural element."""
    factory = WrapperFactory(registry, api_document)
    units, _ = units_for(factory, ["wctrans"])
    generators = factory.resolve_spec(PROFILING)
    source = render_function(units[0], generators)
    artifact("f3_wctrans_wrapper", source)

    positions = [source.index(banner) for banner in FIG3_BANNERS_IN_ORDER]
    assert positions == sorted(positions), "fragment order differs from Fig. 3"

    for line in (
        "wctrans_t wctrans(const char * name)",
        "wctrans_t ret;",
        "rdtsc(exectime_start);",
        "int collect_errors_err = errno;",
        "int func_error_err = errno;",
        "ret = (*addr_wctrans)(name);",
        "exectime_end - exectime_start;",
        "return ret;",
    ):
        assert line in source, f"missing Fig. 3 element: {line}"
    # the errno bucketing with the MAX_ERRNO clamp, as printed in the paper
    assert re.search(r"errno < 0 \|\| errno >= MAX_ERRNO", source)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # artifact test: run once under --benchmark-only

def test_fig3_library_rendering(registry, api_document, artifact, benchmark):
    """Whole-library C output: globals deduplicated, init resolves all."""
    factory = WrapperFactory(registry, api_document)
    names = registry.names()
    units, _ = units_for(factory, names)
    source = render_library(units, factory.resolve_spec(PROFILING),
                            soname="libhealers_profiling.so")
    artifact("f3_library_head", source[:2000])
    assert source.count("static unsigned long long exectime[") == 1
    for name in names:
        assert f'addr_{name} = dlsym(RTLD_NEXT, "{name}");' in source
    assert f"#define MAX_FUNCTIONS {len(names)}" in source
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # artifact test: run once under --benchmark-only

def test_fig3_render_throughput(benchmark, registry, api_document):
    """C text generation speed for the full 106-function library."""
    factory = WrapperFactory(registry, api_document)
    units, _ = units_for(factory, registry.names())
    generators = factory.resolve_spec(PROFILING)
    source = benchmark(lambda: render_library(units, generators))
    assert len(source) > 10_000


def test_fig3_runtime_composition(benchmark, registry, api_document):
    """Executable-wrapper composition speed (the Python backend)."""
    from repro.linker import DynamicLinker, SharedLibrary
    from repro.wrappers import WrapperFactory

    linker = DynamicLinker()
    linker.add_library(SharedLibrary.from_registry(registry))
    factory = WrapperFactory(registry, api_document)

    built = benchmark(
        lambda: factory.build_library(linker, PROFILING)
    )
    assert len(built.functions) == 106
