"""T1 — robustness table ([4]-style): failure rates before/after wrappers.

The claim under test (Section 2.2, via [4]): fault-containment wrappers
generated from the derived robust API "automatically … correct a large
set of such problems".  Shape expectation: the unprotected library shows
Ballista-scale failure rates; the robustness wrapper eliminates
essentially all crash/hang/abort outcomes (the one principled exception
is ``gets``, which cannot be validated by argument inspection — the
hardened wrapper, which bounds it, reaches zero).
"""

from __future__ import annotations

import pytest

from repro.injection import Campaign
from repro.linker import DynamicLinker, SharedLibrary
from repro.wrappers import HARDENED, ROBUSTNESS, WrapperFactory


def wrapped_campaign(registry, manpages, api_document, spec):
    linker = DynamicLinker()
    linker.add_library(SharedLibrary.from_registry(registry))
    built = WrapperFactory(registry, api_document).preload(linker, spec)

    def interpose(function):
        symbol = built.library.lookup(function.name)
        return symbol.impl if symbol else function.impl

    return Campaign(registry, manpages=manpages, interposer=interpose)


@pytest.fixture(scope="module")
def after_robustness(registry, manpages, api_document, campaign_result):
    campaign = wrapped_campaign(registry, manpages, api_document, ROBUSTNESS)
    return campaign.run(list(campaign_result.reports))


@pytest.fixture(scope="module")
def after_hardened(registry, manpages, api_document, campaign_result):
    campaign = wrapped_campaign(registry, manpages, api_document, HARDENED)
    return campaign.run(list(campaign_result.reports))


def test_t1_failure_rate_table(campaign_result, after_robustness,
                               after_hardened, artifact, benchmark):
    """The headline table: per-function before/after failure rates."""
    rows = [
        "T1 — robustness failures before/after fault-containment wrappers",
        f"{'function':<12} {'probes':>6} {'raw':>8} {'robustness':>11} "
        f"{'hardened':>9}",
    ]
    for name in sorted(campaign_result.reports):
        raw = campaign_result.reports[name]
        rob = after_robustness.reports[name]
        hard = after_hardened.reports[name]
        rows.append(
            f"{name:<12} {raw.total_probes:>6} {raw.failure_rate:>8.1%} "
            f"{rob.failure_rate:>11.1%} {hard.failure_rate:>9.1%}"
        )
    rows.append(
        f"{'TOTAL':<12} {campaign_result.total_probes:>6} "
        f"{campaign_result.failure_rate:>8.1%} "
        f"{after_robustness.failure_rate:>11.1%} "
        f"{after_hardened.failure_rate:>9.1%}"
    )
    artifact("t1_robustness_table", "\n".join(rows))

    # shape assertions (who wins, by what kind of factor)
    assert campaign_result.failure_rate > 0.20
    assert after_robustness.failure_rate < 0.03
    assert after_hardened.failure_rate == 0.0
    assert after_robustness.failure_rate < campaign_result.failure_rate / 10

    # the only functions allowed to retain failures under pure checking
    residual = set(after_robustness.functions_with_failures())
    assert residual <= {"gets"}
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # artifact test: run once under --benchmark-only

def test_t1_no_new_failures_on_valid_inputs(campaign_result,
                                            after_robustness, benchmark):
    """Containment must not break valid calls: every probe that passed
    raw also passes (or error-returns) under the wrapper."""
    from repro.errors import Outcome

    for name, raw_report in campaign_result.reports.items():
        wrapped_report = after_robustness.reports[name]
        raw_by_key = {
            (r.probe.param_name, r.probe.value_label): r.outcome
            for r in raw_report.records
        }
        for record in wrapped_report.records:
            key = (record.probe.param_name, record.probe.value_label)
            if raw_by_key.get(key) == Outcome.PASS:
                assert record.outcome in (Outcome.PASS, Outcome.ERROR), (
                    f"{name}{key}: wrapper regressed a passing probe to "
                    f"{record.outcome}"
                )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # artifact test: run once under --benchmark-only

def test_t1_wrapped_sweep_speed(benchmark, registry, manpages,
                                api_document):
    """Probe throughput through the robustness wrapper (one function)."""
    campaign = wrapped_campaign(registry, manpages, api_document,
                                ROBUSTNESS)
    report = benchmark(lambda: campaign.probe_function("strcpy"))
    assert report.failure_rate == 0.0
