"""Simulated process memory: address space, heap allocator, call stack.

This package is the substrate substituting for real virtual memory in the
HEALERS reproduction (see DESIGN.md section 2).  The public surface:

* :class:`~repro.memory.model.AddressSpace` — paged mappings with
  permissions; invalid access raises
  :class:`~repro.errors.SegmentationFault`.
* :class:`~repro.memory.heap.HeapAllocator` — boundary-tag allocator with
  in-band, corruptible chunk metadata and optional canaries.
* :class:`~repro.memory.stack.CallStack` — downward-growing stack with
  return-address slots and optional stack-protector canaries.
"""

from repro.memory.heap import (
    ALLOC_MAGIC,
    CANARY_SIZE,
    CANARY_VALUE,
    FREE_MAGIC,
    HEADER_SIZE,
    ChunkInfo,
    HeapAllocator,
    HeapStats,
    RepairReport,
)
from repro.memory.model import (
    MAX_ADDRESS,
    MIN_ADDRESS,
    NULL,
    PAGE_SIZE,
    AddressSpace,
    Mapping,
    Perm,
    page_align,
)
from repro.memory.stack import CallStack, Frame

__all__ = [
    "ALLOC_MAGIC",
    "CANARY_SIZE",
    "CANARY_VALUE",
    "FREE_MAGIC",
    "HEADER_SIZE",
    "MAX_ADDRESS",
    "MIN_ADDRESS",
    "NULL",
    "PAGE_SIZE",
    "AddressSpace",
    "CallStack",
    "ChunkInfo",
    "Frame",
    "HeapAllocator",
    "HeapStats",
    "Mapping",
    "Perm",
    "RepairReport",
    "page_align",
]
