"""Downward-growing call stack with return-address slots and canaries.

The stack exists so that the attack corpus can demonstrate *stack* smashing
(overwriting a saved return address through an on-stack buffer) alongside
the heap smashing of demo 3.4, and so the stack-protector policy (canary
between locals and the return address, as in StackGuard / libsafe [1]) can
be reproduced as one of the HEALERS security-wrapper features.

Frame layout, addresses decreasing downward::

    frame base (old stack pointer)
      -8    saved return address (u64 token)
      -16   stack canary (u64), when protection is enabled
      ...   locals, allocated top-down; a buffer overflow writes *upward*
            through the canary into the return address.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import SegmentationFault, StackSmashingDetected
from repro.memory.model import AddressSpace, Mapping, Perm

RETURN_SLOT = 8
CANARY_SLOT = 8


@dataclass
class Frame:
    """One activation record on the simulated stack."""

    name: str
    base: int
    return_address: int
    canary_address: Optional[int]
    canary_value: Optional[int]
    locals_top: int
    locals: List[int] = field(default_factory=list)

    @property
    def return_slot(self) -> int:
        """Address of the saved-return-address slot."""
        return self.base - RETURN_SLOT


class CallStack:
    """A simulated process stack supporting frame push/pop and alloca."""

    def __init__(
        self,
        space: AddressSpace,
        size: int = 256 * 1024,
        protect: bool = False,
        name: str = "[stack]",
    ):
        self.space = space
        self.mapping: Mapping = space.map_region(size, Perm.RW, name)
        self.protect = protect
        self.sp = self.mapping.end
        self.frames: List[Frame] = []
        #: per-process random canary, as glibc derives one at startup
        self.canary_seed = secrets.randbits(64) | 0xFF

    def push_frame(self, name: str, return_address: int = 0) -> Frame:
        """Enter a function: save the return address (and canary)."""
        base = self.sp
        sp = base - RETURN_SLOT
        self._check_sp(sp, 8)
        self.space.write_u64(sp, return_address)
        canary_address = None
        canary_value = None
        if self.protect:
            sp -= CANARY_SLOT
            self._check_sp(sp, 8)
            canary_value = self.canary_seed
            canary_address = sp
            self.space.write_u64(sp, canary_value)
        frame = Frame(
            name=name,
            base=base,
            return_address=return_address,
            canary_address=canary_address,
            canary_value=canary_value,
            locals_top=sp,
        )
        self.sp = sp
        self.frames.append(frame)
        return frame

    def alloca(self, size: int, align: int = 16) -> int:
        """Reserve ``size`` bytes of locals in the current frame."""
        if not self.frames:
            raise RuntimeError("alloca outside any frame")
        if size < 0:
            raise ValueError("negative alloca")
        sp = (self.sp - size) & ~(align - 1)
        self._check_sp(sp, size)
        self.sp = sp
        self.frames[-1].locals.append(sp)
        return sp

    def pop_frame(self) -> int:
        """Leave the current function.

        Returns the (possibly attacker-controlled) value read back from the
        return-address slot; callers compare it with the value they pushed
        to detect control-flow hijack.  Raises
        :class:`StackSmashingDetected` when protection is on and the canary
        was clobbered — the check runs *before* the return address is used,
        as a real stack protector does.
        """
        if not self.frames:
            raise RuntimeError("pop_frame on empty stack")
        frame = self.frames.pop()
        if frame.canary_address is not None:
            if self.space.read_u64(frame.canary_address) != frame.canary_value:
                raise StackSmashingDetected(frame.name)
        returned = self.space.read_u64(frame.return_slot)
        self.sp = frame.base
        return returned

    @property
    def current_frame(self) -> Optional[Frame]:
        """The innermost frame, or None when the stack is empty."""
        return self.frames[-1] if self.frames else None

    def depth(self) -> int:
        """Number of live frames."""
        return len(self.frames)

    def _check_sp(self, sp: int, size: int) -> None:
        if sp < self.mapping.start:
            raise SegmentationFault(sp, "write", "stack overflow")
        if sp + size > self.mapping.end:
            raise SegmentationFault(sp, "write", "stack underflow")
