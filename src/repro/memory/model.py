"""Flat paged address space with mapping permissions.

This is the substrate on which the simulated C library operates.  It
reproduces the memory-protection behaviour that makes native C libraries
brittle: dereferencing an unmapped or permission-violating address raises
:class:`~repro.errors.SegmentationFault`, while in-bounds writes past the end
of an *allocation* (but inside the heap mapping) silently corrupt adjacent
data — exactly the behaviour heap-smashing attacks rely on.

Addresses are plain Python integers.  Page zero is never mappable, so any
NULL (or near-NULL) dereference faults, as on a real OS.
"""

from __future__ import annotations

import bisect
import enum
import struct
from typing import Iterator, List, Optional

from repro.errors import BusError, SegmentationFault

PAGE_SIZE = 4096
#: Lowest mappable address; the zero page is reserved to catch NULL derefs.
MIN_ADDRESS = PAGE_SIZE
#: 32-bit style address-space ceiling (keeps addresses readable in dumps).
MAX_ADDRESS = 2 ** 32

NULL = 0


class Perm(enum.IntFlag):
    """Access permissions of a mapping (a subset of PROT_READ/WRITE/EXEC)."""

    NONE = 0
    READ = 1
    WRITE = 2
    EXEC = 4
    RW = READ | WRITE
    RX = READ | EXEC


def page_align(value: int) -> int:
    """Round ``value`` up to the next page boundary."""
    return (value + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)


class Mapping:
    """A contiguous mapped region with uniform permissions."""

    __slots__ = ("start", "size", "perm", "name", "data")

    def __init__(self, start: int, size: int, perm: Perm, name: str):
        self.start = start
        self.size = size
        self.perm = perm
        self.name = name
        self.data = bytearray(size)

    @property
    def end(self) -> int:
        """One past the last valid address of the mapping."""
        return self.start + self.size

    def contains(self, address: int, length: int = 1) -> bool:
        """True when ``[address, address+length)`` lies inside the mapping."""
        return self.start <= address and address + length <= self.end

    def __repr__(self) -> str:
        return (
            f"Mapping({self.name!r}, {self.start:#x}-{self.end:#x}, "
            f"{self.perm!r})"
        )


class AddressSpace:
    """The virtual memory of one simulated process.

    Mappings are non-overlapping and kept sorted by start address.  All
    access methods raise :class:`SegmentationFault` on invalid access; a
    contiguous access must lie entirely within one mapping (crossing into an
    unmapped hole faults, as the MMU would at the page boundary).
    """

    def __init__(self) -> None:
        self._mappings: List[Mapping] = []
        self._starts: List[int] = []

    # ------------------------------------------------------------------
    # mapping management
    # ------------------------------------------------------------------

    def map_region(
        self,
        size: int,
        perm: Perm = Perm.RW,
        name: str = "anon",
        at: Optional[int] = None,
    ) -> Mapping:
        """Create a new mapping of ``size`` bytes (rounded up to pages).

        When ``at`` is None the region is placed after the highest existing
        mapping, separated by one unmapped guard page so that runaway writes
        fault rather than silently spilling into an unrelated region.
        """
        if size <= 0:
            raise ValueError("mapping size must be positive")
        size = page_align(size)
        if at is None:
            if self._mappings:
                at = page_align(self._mappings[-1].end) + PAGE_SIZE
            else:
                at = MIN_ADDRESS
        if at % PAGE_SIZE != 0:
            raise ValueError(f"mapping address {at:#x} is not page aligned")
        if at < MIN_ADDRESS or at + size > MAX_ADDRESS:
            raise ValueError(f"mapping {at:#x}+{size:#x} out of address space")
        mapping = Mapping(at, size, perm, name)
        index = bisect.bisect_left(self._starts, at)
        if index > 0 and self._mappings[index - 1].end > at:
            raise ValueError(f"mapping at {at:#x} overlaps {self._mappings[index - 1]}")
        if index < len(self._mappings) and mapping.end > self._mappings[index].start:
            raise ValueError(f"mapping at {at:#x} overlaps {self._mappings[index]}")
        self._mappings.insert(index, mapping)
        self._starts.insert(index, at)
        return mapping

    def unmap(self, mapping: Mapping) -> None:
        """Remove ``mapping``; subsequent accesses to it fault."""
        index = bisect.bisect_left(self._starts, mapping.start)
        if index >= len(self._mappings) or self._mappings[index] is not mapping:
            raise ValueError(f"{mapping!r} is not mapped")
        del self._mappings[index]
        del self._starts[index]

    def protect(self, mapping: Mapping, perm: Perm) -> None:
        """Change the permissions of an existing mapping (mprotect)."""
        mapping.perm = perm

    def mappings(self) -> Iterator[Mapping]:
        """Iterate over mappings in address order."""
        return iter(self._mappings)

    def find_mapping(self, address: int) -> Optional[Mapping]:
        """Return the mapping containing ``address``, or None."""
        index = bisect.bisect_right(self._starts, address) - 1
        if index < 0:
            return None
        mapping = self._mappings[index]
        return mapping if mapping.contains(address) else None

    # ------------------------------------------------------------------
    # access checks
    # ------------------------------------------------------------------

    def _resolve(self, address: int, length: int, perm: Perm, access: str) -> Mapping:
        if length < 0:
            raise ValueError("negative access length")
        mapping = self.find_mapping(address)
        if mapping is None:
            raise SegmentationFault(address, access, "unmapped address")
        if not mapping.contains(address, length):
            raise SegmentationFault(
                address + (mapping.end - address),
                access,
                f"access runs off the end of {mapping.name}",
            )
        if perm and not (mapping.perm & perm):
            raise SegmentationFault(
                address, access, f"{mapping.name} lacks {perm.name} permission"
            )
        return mapping

    def is_readable(self, address: int, length: int = 1) -> bool:
        """True when ``length`` bytes at ``address`` can be read."""
        try:
            self._resolve(address, length, Perm.READ, "read")
        except SegmentationFault:
            return False
        return True

    def is_writable(self, address: int, length: int = 1) -> bool:
        """True when ``length`` bytes at ``address`` can be written."""
        try:
            self._resolve(address, length, Perm.WRITE, "write")
        except SegmentationFault:
            return False
        return True

    # ------------------------------------------------------------------
    # raw access
    # ------------------------------------------------------------------

    def read(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes; faults on an invalid or unreadable range."""
        if length == 0:
            return b""
        mapping = self._resolve(address, length, Perm.READ, "read")
        offset = address - mapping.start
        return bytes(mapping.data[offset : offset + length])

    def write(self, address: int, data: bytes) -> None:
        """Write ``data``; faults on an invalid or unwritable range."""
        if not data:
            return
        mapping = self._resolve(address, len(data), Perm.WRITE, "write")
        offset = address - mapping.start
        mapping.data[offset : offset + len(data)] = data

    def fill(self, address: int, value: int, length: int) -> None:
        """memset-style fill of ``length`` bytes with ``value``."""
        if length == 0:
            return
        mapping = self._resolve(address, length, Perm.WRITE, "write")
        offset = address - mapping.start
        mapping.data[offset : offset + length] = bytes([value & 0xFF]) * length

    # ------------------------------------------------------------------
    # scalar access (little endian, like x86)
    # ------------------------------------------------------------------

    def read_u8(self, address: int) -> int:
        return self.read(address, 1)[0]

    def write_u8(self, address: int, value: int) -> None:
        self.write(address, bytes([value & 0xFF]))

    def read_u16(self, address: int) -> int:
        return struct.unpack("<H", self.read(address, 2))[0]

    def write_u16(self, address: int, value: int) -> None:
        self.write(address, struct.pack("<H", value & 0xFFFF))

    def read_u32(self, address: int) -> int:
        return struct.unpack("<I", self.read(address, 4))[0]

    def write_u32(self, address: int, value: int) -> None:
        self.write(address, struct.pack("<I", value & 0xFFFFFFFF))

    def read_u64(self, address: int) -> int:
        return struct.unpack("<Q", self.read(address, 8))[0]

    def write_u64(self, address: int, value: int) -> None:
        self.write(address, struct.pack("<Q", value & 0xFFFFFFFFFFFFFFFF))

    def read_i32(self, address: int) -> int:
        return struct.unpack("<i", self.read(address, 4))[0]

    def write_i32(self, address: int, value: int) -> None:
        # C stores truncate: keep the low 32 bits, reinterpret as signed
        value = ((value + (1 << 31)) & 0xFFFFFFFF) - (1 << 31)
        self.write(address, struct.pack("<i", value))

    def read_ptr(self, address: int) -> int:
        """Pointers in the simulated ABI are 8 bytes."""
        return self.read_u64(address)

    def write_ptr(self, address: int, value: int) -> None:
        self.write_u64(address, value)

    def read_aligned_u64(self, address: int) -> int:
        """Read requiring 8-byte alignment (raises BusError otherwise)."""
        if address % 8:
            raise BusError(address, 8)
        return self.read_u64(address)

    # ------------------------------------------------------------------
    # C string helpers
    # ------------------------------------------------------------------

    def read_cstring(self, address: int, limit: Optional[int] = None) -> bytes:
        """Read a NUL-terminated string starting at ``address``.

        Scans byte by byte exactly like a naive C ``strlen``: if the string
        is not terminated before the mapping ends the scan faults at the
        boundary.  ``limit`` bounds the scan length (used by wrappers to
        avoid unbounded scans, not by the fragile libc itself).
        """
        out = bytearray()
        cursor = address
        while True:
            if limit is not None and len(out) >= limit:
                return bytes(out)
            byte = self.read(cursor, 1)[0]
            if byte == 0:
                return bytes(out)
            out.append(byte)
            cursor += 1

    def write_cstring(self, address: int, value: bytes) -> None:
        """Write ``value`` plus a terminating NUL at ``address``."""
        self.write(address, value + b"\x00")

    def cstring_length(self, address: int, limit: Optional[int] = None) -> int:
        """strlen without copying (same fault behaviour as read_cstring)."""
        length = 0
        cursor = address
        while True:
            if limit is not None and length >= limit:
                return length
            if self.read(cursor, 1)[0] == 0:
                return length
            length += 1
            cursor += 1

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def describe(self) -> str:
        """Human-readable map, in the style of /proc/<pid>/maps."""
        lines = []
        for mapping in self._mappings:
            perm = "".join(
                flag if mapping.perm & bit else "-"
                for flag, bit in (("r", Perm.READ), ("w", Perm.WRITE), ("x", Perm.EXEC))
            )
            lines.append(
                f"{mapping.start:08x}-{mapping.end:08x} {perm} {mapping.name}"
            )
        return "\n".join(lines)
