"""Flat paged address space with mapping permissions.

This is the substrate on which the simulated C library operates.  It
reproduces the memory-protection behaviour that makes native C libraries
brittle: dereferencing an unmapped or permission-violating address raises
:class:`~repro.errors.SegmentationFault`, while in-bounds writes past the end
of an *allocation* (but inside the heap mapping) silently corrupt adjacent
data — exactly the behaviour heap-smashing attacks rely on.

Addresses are plain Python integers.  Page zero is never mappable, so any
NULL (or near-NULL) dereference faults, as on a real OS.

Access paths come in two flavours:

* the default *vectorized* backend resolves a mapping once and then works on
  ``Mapping.data`` slices at C speed (``bytes.find``, slice assignment,
  ``struct.Struct.unpack_from``), faulting at the identical address a
  per-byte scan would;
* the *scalar* reference backend (``HEALERS_SCALAR_MEMORY=1`` or
  ``AddressSpace(scalar=True)``) keeps the original one-``read``-per-byte
  loops.  The differential suite drives both and asserts byte- and
  fault-address parity.
"""

from __future__ import annotations

import bisect
import enum
import os
import struct
import sys
from array import array
from typing import Iterator, List, Optional, Tuple

from repro.errors import BusError, SegmentationFault

PAGE_SIZE = 4096
#: Lowest mappable address; the zero page is reserved to catch NULL derefs.
MIN_ADDRESS = PAGE_SIZE
#: 32-bit style address-space ceiling (keeps addresses readable in dumps).
MAX_ADDRESS = 2 ** 32

NULL = 0

# Prepacked converters for the fixed-width accessors: struct.Struct objects
# compile the format string once and expose pack_into/unpack_from, which work
# directly on the mapping's bytearray without an intermediate bytes copy.
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_I32 = struct.Struct("<i")


def _env_scalar() -> bool:
    return os.environ.get("HEALERS_SCALAR_MEMORY", "") not in ("", "0")


class Perm(enum.IntFlag):
    """Access permissions of a mapping (a subset of PROT_READ/WRITE/EXEC)."""

    NONE = 0
    READ = 1
    WRITE = 2
    EXEC = 4
    RW = READ | WRITE
    RX = READ | EXEC


def page_align(value: int) -> int:
    """Round ``value`` up to the next page boundary."""
    return (value + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)


#: int values of the common permissions, for the hot loops
_PERM_READ = int(Perm.READ)
_PERM_WRITE = int(Perm.WRITE)


class Mapping:
    """A contiguous mapped region with uniform permissions."""

    __slots__ = ("start", "size", "perm", "perm_bits", "name", "data")

    def __init__(self, start: int, size: int, perm: Perm, name: str):
        self.start = start
        self.size = size
        self.perm = perm
        #: plain-int shadow of ``perm`` — the hot access loops test
        #: permissions with int ``&`` instead of enum dispatch
        self.perm_bits = int(perm)
        self.name = name
        self.data = bytearray(size)

    @property
    def end(self) -> int:
        """One past the last valid address of the mapping."""
        return self.start + self.size

    def contains(self, address: int, length: int = 1) -> bool:
        """True when ``[address, address+length)`` lies inside the mapping."""
        return self.start <= address and address + length <= self.end

    def __repr__(self) -> str:
        return (
            f"Mapping({self.name!r}, {self.start:#x}-{self.end:#x}, "
            f"{self.perm!r})"
        )


class AddressSpace:
    """The virtual memory of one simulated process.

    Mappings are non-overlapping and kept sorted by start address.  All
    access methods raise :class:`SegmentationFault` on invalid access; a
    contiguous access must lie entirely within one mapping (crossing into an
    unmapped hole faults, as the MMU would at the page boundary).

    ``resolve_count`` counts every access resolution and ``search_count``
    counts the subset that had to bisect the mapping table — the difference
    is the hit rate of the per-permission memoized mapping, which is
    invalidated whenever ``epoch`` bumps (map/unmap/protect).
    """

    def __init__(self, scalar: Optional[bool] = None) -> None:
        self._mappings: List[Mapping] = []
        self._starts: List[int] = []
        #: when True, string scans and bulk primitives use the original
        #: one-byte-at-a-time reference loops (HEALERS_SCALAR_MEMORY=1)
        self.scalar = _env_scalar() if scalar is None else scalar
        #: bumped on any mapping-table or permission change
        self.epoch = 0
        #: bumped on any content write; together with ``epoch`` this lets
        #: callers memoize derived facts (string terminators, extents) and
        #: invalidate them exactly when memory could have changed
        self.mutations = 0
        #: dirty watermark: the address range covered by every content
        #: write since the last consumer reset — whoever observes a
        #: ``mutations`` change reads [dirty_lo, dirty_hi) to learn what
        #: could have changed, then resets the range.  Conservatively
        #: covers the *intended* range of partially faulting writes.
        self.dirty_lo = MAX_ADDRESS
        self.dirty_hi = 0
        # last successfully resolved mapping, keyed by required permission
        self._memo: dict = {}
        #: one-entry translation cache for :meth:`find_mapping`; string
        #: scans and bulk runs hit the same mapping almost every lookup
        self._tlb: Optional[Mapping] = None
        #: total access resolutions performed
        self.resolve_count = 0
        #: resolutions that missed the memo and searched the mapping table
        self.search_count = 0

    # ------------------------------------------------------------------
    # mapping management
    # ------------------------------------------------------------------

    def _bump_epoch(self) -> None:
        self.epoch += 1
        # layout changes also advance the content stamp so a single
        # ``mutations`` compare is a complete staleness test
        self.mutations += 1
        self._memo.clear()
        self._tlb = None

    def map_region(
        self,
        size: int,
        perm: Perm = Perm.RW,
        name: str = "anon",
        at: Optional[int] = None,
    ) -> Mapping:
        """Create a new mapping of ``size`` bytes (rounded up to pages).

        When ``at`` is None the region is placed after the highest existing
        mapping, separated by one unmapped guard page so that runaway writes
        fault rather than silently spilling into an unrelated region.
        """
        if size <= 0:
            raise ValueError("mapping size must be positive")
        size = page_align(size)
        if at is None:
            if self._mappings:
                at = page_align(self._mappings[-1].end) + PAGE_SIZE
            else:
                at = MIN_ADDRESS
        if at % PAGE_SIZE != 0:
            raise ValueError(f"mapping address {at:#x} is not page aligned")
        if at < MIN_ADDRESS or at + size > MAX_ADDRESS:
            raise ValueError(f"mapping {at:#x}+{size:#x} out of address space")
        mapping = Mapping(at, size, perm, name)
        index = bisect.bisect_left(self._starts, at)
        if index > 0 and self._mappings[index - 1].end > at:
            raise ValueError(f"mapping at {at:#x} overlaps {self._mappings[index - 1]}")
        if index < len(self._mappings) and mapping.end > self._mappings[index].start:
            raise ValueError(f"mapping at {at:#x} overlaps {self._mappings[index]}")
        self._mappings.insert(index, mapping)
        self._starts.insert(index, at)
        self._bump_epoch()
        return mapping

    def unmap(self, mapping: Mapping) -> None:
        """Remove ``mapping``; subsequent accesses to it fault."""
        index = bisect.bisect_left(self._starts, mapping.start)
        if index >= len(self._mappings) or self._mappings[index] is not mapping:
            raise ValueError(f"{mapping!r} is not mapped")
        del self._mappings[index]
        del self._starts[index]
        self._bump_epoch()

    def protect(self, mapping: Mapping, perm: Perm) -> None:
        """Change the permissions of an existing mapping (mprotect)."""
        mapping.perm = perm
        mapping.perm_bits = int(perm)
        self._bump_epoch()

    def mappings(self) -> Iterator[Mapping]:
        """Iterate over mappings in address order."""
        return iter(self._mappings)

    def find_mapping(self, address: int) -> Optional[Mapping]:
        """Return the mapping containing ``address``, or None."""
        mapping = self._tlb
        if mapping is not None and 0 <= address - mapping.start < mapping.size:
            return mapping
        index = bisect.bisect_right(self._starts, address) - 1
        if index < 0:
            return None
        mapping = self._mappings[index]
        if 0 <= address - mapping.start < mapping.size:
            self._tlb = mapping
            return mapping
        return None

    # ------------------------------------------------------------------
    # access checks
    # ------------------------------------------------------------------

    def _resolve(self, address: int, length: int, perm: Perm, access: str) -> Mapping:
        if length < 0:
            raise ValueError("negative access length")
        self.resolve_count += 1
        key = int(perm)
        mapping = self._memo.get(key)
        if (
            mapping is not None
            and mapping.start <= address
            and address + length <= mapping.start + mapping.size
        ):
            return mapping
        self.search_count += 1
        mapping = self.find_mapping(address)
        if mapping is None:
            raise SegmentationFault(address, access, "unmapped address")
        if not mapping.contains(address, length):
            raise SegmentationFault(
                address + (mapping.end - address),
                access,
                f"access runs off the end of {mapping.name}",
            )
        if perm and not (mapping.perm_bits & perm):
            raise SegmentationFault(
                address, access, f"{mapping.name} lacks {perm.name} permission"
            )
        self._memo[key] = mapping
        return mapping

    def is_readable(self, address: int, length: int = 1) -> bool:
        """True when ``length`` bytes at ``address`` can be read."""
        try:
            self._resolve(address, length, Perm.READ, "read")
        except SegmentationFault:
            return False
        return True

    def is_writable(self, address: int, length: int = 1) -> bool:
        """True when ``length`` bytes at ``address`` can be written."""
        try:
            self._resolve(address, length, Perm.WRITE, "write")
        except SegmentationFault:
            return False
        return True

    # ------------------------------------------------------------------
    # raw access
    # ------------------------------------------------------------------

    def read(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes; faults on an invalid or unreadable range."""
        if length == 0:
            return b""
        mapping = self._resolve(address, length, Perm.READ, "read")
        offset = address - mapping.start
        return bytes(mapping.data[offset : offset + length])

    def write(self, address: int, data: bytes) -> None:
        """Write ``data``; faults on an invalid or unwritable range."""
        if not data:
            return
        mapping = self._resolve(address, len(data), Perm.WRITE, "write")
        self.mutations += 1
        if address < self.dirty_lo:
            self.dirty_lo = address
        if address + len(data) > self.dirty_hi:
            self.dirty_hi = address + len(data)
        offset = address - mapping.start
        mapping.data[offset : offset + len(data)] = data

    def fill(self, address: int, value: int, length: int) -> None:
        """memset-style fill of ``length`` bytes with ``value``.

        Resolves once and slice-assigns into the mapping; the regression
        suite pins this at exactly one resolution per call.
        """
        if length == 0:
            return
        mapping = self._resolve(address, length, Perm.WRITE, "write")
        self.mutations += 1
        if address < self.dirty_lo:
            self.dirty_lo = address
        if address + length > self.dirty_hi:
            self.dirty_hi = address + length
        offset = address - mapping.start
        mapping.data[offset : offset + length] = bytes([value & 0xFF]) * length

    # ------------------------------------------------------------------
    # accessibility runs (cross adjacent mappings, like per-byte loops do)
    # ------------------------------------------------------------------

    def _run_forward(self, address: int, limit: Optional[int], perm: int) -> int:
        total = 0
        cursor = address
        while limit is None or total < limit:
            mapping = self.find_mapping(cursor)
            if mapping is None or not (mapping.perm_bits & perm):
                break
            total += mapping.end - cursor
            cursor = mapping.end
        if limit is not None and total > limit:
            total = limit
        return total

    def _run_backward(self, end: int, limit: Optional[int], perm: int) -> int:
        total = 0
        cursor = end
        while limit is None or total < limit:
            mapping = self.find_mapping(cursor - 1)
            if mapping is None or not (mapping.perm_bits & perm):
                break
            total += cursor - mapping.start
            cursor = mapping.start
        if limit is not None and total > limit:
            total = limit
        return total

    def readable_run(self, address: int, limit: Optional[int] = None) -> int:
        """Contiguous readable bytes starting at ``address`` (≤ ``limit``).

        Unlike :meth:`read`, the run crosses directly adjacent mappings,
        because a byte-at-a-time loop does too.
        """
        return self._run_forward(address, limit, _PERM_READ)

    def writable_run(self, address: int, limit: Optional[int] = None) -> int:
        """Contiguous writable bytes starting at ``address`` (≤ ``limit``)."""
        return self._run_forward(address, limit, _PERM_WRITE)

    def readable_run_back(self, end: int, limit: Optional[int] = None) -> int:
        """Contiguous readable bytes ending just before ``end`` (≤ ``limit``)."""
        return self._run_backward(end, limit, _PERM_READ)

    def writable_run_back(self, end: int, limit: Optional[int] = None) -> int:
        """Contiguous writable bytes ending just before ``end`` (≤ ``limit``)."""
        return self._run_backward(end, limit, _PERM_WRITE)

    # ------------------------------------------------------------------
    # bulk access (multi-mapping; faults where the per-byte loop would)
    # ------------------------------------------------------------------

    def read_run(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes crossing adjacent mappings.

        Faults at the first inaccessible byte — the address a
        ``read(cursor, 1)`` loop would report.
        """
        if length <= 0:
            return b""
        parts = []
        cursor = address
        remaining = length
        while remaining > 0:
            mapping = self.find_mapping(cursor)
            if mapping is None or not (mapping.perm_bits & _PERM_READ):
                self.read(cursor, 1)  # raises the exact scalar fault
                raise AssertionError("read_run fault replay did not fault")
            offset = cursor - mapping.start
            take = min(remaining, mapping.size - offset)
            parts.append(bytes(mapping.data[offset : offset + take]))
            cursor += take
            remaining -= take
        return b"".join(parts)

    def write_run(self, address: int, data: bytes) -> None:
        """Write ``data`` crossing adjacent mappings (per-byte fault parity)."""
        if data:
            # counted up front: a fault partway still leaves bytes written
            self.mutations += 1
            if address < self.dirty_lo:
                self.dirty_lo = address
            if address + len(data) > self.dirty_hi:
                self.dirty_hi = address + len(data)
        cursor = address
        view = memoryview(data)
        position = 0
        remaining = len(data)
        while remaining > 0:
            mapping = self.find_mapping(cursor)
            if mapping is None or not (mapping.perm_bits & _PERM_WRITE):
                self.write(cursor, b"\x00")  # raises the exact scalar fault
                raise AssertionError("write_run fault replay did not fault")
            offset = cursor - mapping.start
            take = min(remaining, mapping.size - offset)
            mapping.data[offset : offset + take] = view[position : position + take]
            cursor += take
            position += take
            remaining -= take

    def fill_run(self, address: int, value: int, length: int) -> None:
        """Fill ``length`` bytes crossing adjacent mappings."""
        if length > 0:
            self.mutations += 1
            if address < self.dirty_lo:
                self.dirty_lo = address
            if address + length > self.dirty_hi:
                self.dirty_hi = address + length
        cursor = address
        remaining = length
        value &= 0xFF
        while remaining > 0:
            mapping = self.find_mapping(cursor)
            if mapping is None or not (mapping.perm_bits & _PERM_WRITE):
                self.write(cursor, b"\x00")
                raise AssertionError("fill_run fault replay did not fault")
            offset = cursor - mapping.start
            take = min(remaining, mapping.size - offset)
            mapping.data[offset : offset + take] = bytes([value]) * take
            cursor += take
            remaining -= take

    def find_byte(
        self, address: int, value: int, limit: Optional[int] = None
    ) -> Tuple[Optional[int], int]:
        """Scan readable memory from ``address`` for ``value``.

        Returns ``(index, scanned)``: ``index`` is the offset of the first
        occurrence (None when absent within the accessible window) and
        ``scanned`` is how many readable bytes the scan covered — the full
        accessible run capped at ``limit`` when nothing was found.  The scan
        never faults; callers replay ``read(address + scanned, 1)`` when the
        per-byte loop would have faulted there.
        """
        value &= 0xFF
        total = 0
        cursor = address
        while limit is None or total < limit:
            mapping = self.find_mapping(cursor)
            if mapping is None or not (mapping.perm_bits & _PERM_READ):
                break
            start = cursor - mapping.start
            stop = mapping.size
            if limit is not None:
                stop = min(stop, start + (limit - total))
            idx = mapping.data.find(value, start, stop)
            if idx >= 0:
                found = total + (idx - start)
                return found, found + 1
            total += stop - start
            cursor = mapping.start + stop
            if stop < mapping.size:
                break
        if limit is not None and total > limit:
            total = limit
        return None, total

    def find_u32(
        self, address: int, value: int, limit_words: int
    ) -> Tuple[Optional[int], int]:
        """Scan for a 32-bit little-endian word at stride 4 from ``address``.

        Returns ``(index, scanned)`` in *words*.  Only words whose four bytes
        a ``read_u32`` would accept (entirely inside one readable mapping)
        are scanned; the scan stops — without faulting — at the first word
        that would fault.
        """
        value &= 0xFFFFFFFF
        total = 0
        cursor = address
        while total < limit_words:
            mapping = self.find_mapping(cursor)
            if mapping is None or not (mapping.perm_bits & _PERM_READ):
                break
            words_here = min((mapping.end - cursor) // 4, limit_words - total)
            if words_here <= 0:
                break
            offset = cursor - mapping.start
            window = array("I")
            window.frombytes(bytes(mapping.data[offset : offset + words_here * 4]))
            if sys.byteorder == "big":
                window.byteswap()
            try:
                idx = window.index(value)
            except ValueError:
                idx = -1
            if idx >= 0:
                found = total + idx
                return found, found + 1
            total += words_here
            cursor += words_here * 4
            if cursor < mapping.end:
                break
        return None, total

    def copy_within(
        self, dest: int, src: int, length: int, forward: bool = False
    ) -> None:
        """Bulk copy of ``length`` bytes from ``src`` to ``dest``.

        With ``forward=False`` this has memmove semantics (overlap safe in
        either direction, backward loop order when ``dest > src``).  With
        ``forward=True`` it reproduces a naive ascending C copy loop: a
        forward-overlapping copy smears the first ``dest - src`` bytes
        repeatedly, exactly like ``for (i...) d[i] = s[i]``.  Faults land on
        the same byte and access kind the per-byte loop would hit.
        """
        if length <= 0:
            return
        if self.scalar:
            if forward or dest <= src:
                for offset in range(length):
                    self.write(dest + offset, self.read(src + offset, 1))
            else:
                for offset in range(length - 1, -1, -1):
                    self.write(dest + offset, self.read(src + offset, 1))
            return
        if forward or dest <= src:
            readable = self.readable_run(src, length)
            writable = self.writable_run(dest, length)
            count = min(length, readable, writable)
            if count:
                if forward and src < dest < src + count:
                    period = dest - src
                    pattern = self.read_run(src, period)
                    data = (pattern * (count // period + 1))[:count]
                else:
                    data = self.read_run(src, count)
                self.write_run(dest, data)
            if count < length:
                if readable <= writable:
                    self.read(src + count, 1)
                else:
                    self.write(dest + count, b"\x00")
                raise AssertionError("copy_within fault replay did not fault")
        else:
            # descending loop: the first access is at the highest offset, so
            # accessibility is measured from the top end downward
            readable = self.readable_run_back(src + length, length)
            writable = self.writable_run_back(dest + length, length)
            count = min(length, readable, writable)
            if count:
                data = self.read_run(src + length - count, count)
                self.write_run(dest + length - count, data)
            if count < length:
                offset = length - 1 - count
                if readable <= writable:
                    self.read(src + offset, 1)
                else:
                    self.write(dest + offset, b"\x00")
                raise AssertionError("copy_within fault replay did not fault")

    def compare(self, s1: int, s2: int, length: int) -> int:
        """memcmp-style compare of ``length`` bytes (no fuel accounting).

        Returns the difference of the first mismatching byte pair, or 0.
        Faults where an interleaved ``read(s1+i) / read(s2+i)`` loop would.
        """
        if length <= 0:
            return 0
        if self.scalar:
            for offset in range(length):
                a = self.read(s1 + offset, 1)[0]
                b = self.read(s2 + offset, 1)[0]
                if a != b:
                    return a - b
            return 0
        run1 = self.readable_run(s1, length)
        run2 = self.readable_run(s2, length)
        count = min(length, run1, run2)
        a = self.read_run(s1, count)
        b = self.read_run(s2, count)
        if a != b:
            index = first_mismatch(a, b)
            return a[index] - b[index]
        if count == length:
            return 0
        if run1 <= run2:
            self.read(s1 + count, 1)
        else:
            self.read(s2 + count, 1)
        raise AssertionError("compare fault replay did not fault")

    # ------------------------------------------------------------------
    # scalar access (little endian, like x86)
    # ------------------------------------------------------------------

    def read_u8(self, address: int) -> int:
        mapping = self._resolve(address, 1, Perm.READ, "read")
        return mapping.data[address - mapping.start]

    def write_u8(self, address: int, value: int) -> None:
        mapping = self._resolve(address, 1, Perm.WRITE, "write")
        self.mutations += 1
        if address < self.dirty_lo:
            self.dirty_lo = address
        if address + 1 > self.dirty_hi:
            self.dirty_hi = address + 1
        mapping.data[address - mapping.start] = value & 0xFF

    def read_u16(self, address: int) -> int:
        mapping = self._resolve(address, 2, Perm.READ, "read")
        return _U16.unpack_from(mapping.data, address - mapping.start)[0]

    def write_u16(self, address: int, value: int) -> None:
        mapping = self._resolve(address, 2, Perm.WRITE, "write")
        self.mutations += 1
        if address < self.dirty_lo:
            self.dirty_lo = address
        if address + 2 > self.dirty_hi:
            self.dirty_hi = address + 2
        _U16.pack_into(mapping.data, address - mapping.start, value & 0xFFFF)

    def read_u32(self, address: int) -> int:
        mapping = self._resolve(address, 4, Perm.READ, "read")
        return _U32.unpack_from(mapping.data, address - mapping.start)[0]

    def write_u32(self, address: int, value: int) -> None:
        mapping = self._resolve(address, 4, Perm.WRITE, "write")
        self.mutations += 1
        if address < self.dirty_lo:
            self.dirty_lo = address
        if address + 4 > self.dirty_hi:
            self.dirty_hi = address + 4
        _U32.pack_into(mapping.data, address - mapping.start, value & 0xFFFFFFFF)

    def read_u64(self, address: int) -> int:
        mapping = self._resolve(address, 8, Perm.READ, "read")
        return _U64.unpack_from(mapping.data, address - mapping.start)[0]

    def write_u64(self, address: int, value: int) -> None:
        mapping = self._resolve(address, 8, Perm.WRITE, "write")
        self.mutations += 1
        if address < self.dirty_lo:
            self.dirty_lo = address
        if address + 8 > self.dirty_hi:
            self.dirty_hi = address + 8
        _U64.pack_into(
            mapping.data, address - mapping.start, value & 0xFFFFFFFFFFFFFFFF
        )

    def read_i32(self, address: int) -> int:
        mapping = self._resolve(address, 4, Perm.READ, "read")
        return _I32.unpack_from(mapping.data, address - mapping.start)[0]

    def write_i32(self, address: int, value: int) -> None:
        # C stores truncate: keep the low 32 bits, reinterpret as signed
        value = ((value + (1 << 31)) & 0xFFFFFFFF) - (1 << 31)
        mapping = self._resolve(address, 4, Perm.WRITE, "write")
        self.mutations += 1
        if address < self.dirty_lo:
            self.dirty_lo = address
        if address + 4 > self.dirty_hi:
            self.dirty_hi = address + 4
        _I32.pack_into(mapping.data, address - mapping.start, value)

    def read_ptr(self, address: int) -> int:
        """Pointers in the simulated ABI are 8 bytes."""
        return self.read_u64(address)

    def write_ptr(self, address: int, value: int) -> None:
        self.write_u64(address, value)

    def read_aligned_u64(self, address: int) -> int:
        """Read requiring 8-byte alignment (raises BusError otherwise)."""
        if address % 8:
            raise BusError(address, 8)
        return self.read_u64(address)

    # ------------------------------------------------------------------
    # C string helpers
    # ------------------------------------------------------------------

    def read_cstring(self, address: int, limit: Optional[int] = None) -> bytes:
        """Read a NUL-terminated string starting at ``address``.

        Behaves exactly like a naive C ``strlen`` walk: if the string is not
        terminated before readable memory ends the scan faults at the
        boundary.  ``limit`` bounds the scan length (used by wrappers to
        avoid unbounded scans, not by the fragile libc itself); the scan
        stops exactly at ``limit`` and never touches the byte past it.
        """
        if self.scalar:
            return self._scalar_read_cstring(address, limit)
        index, scanned = self.find_byte(address, 0, limit)
        if index is not None:
            return self.read_run(address, index)
        if limit is not None and scanned >= limit:
            return self.read_run(address, limit if limit > 0 else 0)
        self.read(address + scanned, 1)
        raise AssertionError("cstring fault replay did not fault")

    def _scalar_read_cstring(
        self, address: int, limit: Optional[int] = None
    ) -> bytes:
        out = bytearray()
        cursor = address
        while True:
            if limit is not None and len(out) >= limit:
                return bytes(out)
            byte = self.read(cursor, 1)[0]
            if byte == 0:
                return bytes(out)
            out.append(byte)
            cursor += 1

    def write_cstring(self, address: int, value: bytes) -> None:
        """Write ``value`` plus a terminating NUL at ``address``."""
        self.write(address, value + b"\x00")

    def cstring_length(self, address: int, limit: Optional[int] = None) -> int:
        """strlen without copying (same fault behaviour as read_cstring)."""
        if self.scalar:
            return self._scalar_cstring_length(address, limit)
        index, scanned = self.find_byte(address, 0, limit)
        if index is not None:
            return index
        if limit is not None and scanned >= limit:
            return limit if limit > 0 else 0
        self.read(address + scanned, 1)
        raise AssertionError("cstring fault replay did not fault")

    def _scalar_cstring_length(
        self, address: int, limit: Optional[int] = None
    ) -> int:
        length = 0
        cursor = address
        while True:
            if limit is not None and length >= limit:
                return length
            if self.read(cursor, 1)[0] == 0:
                return length
            length += 1
            cursor += 1

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def describe(self) -> str:
        """Human-readable map, in the style of /proc/<pid>/maps."""
        lines = []
        for mapping in self._mappings:
            perm = "".join(
                flag if mapping.perm & bit else "-"
                for flag, bit in (("r", Perm.READ), ("w", Perm.WRITE), ("x", Perm.EXEC))
            )
            lines.append(
                f"{mapping.start:08x}-{mapping.end:08x} {perm} {mapping.name}"
            )
        return "\n".join(lines)


def first_mismatch(a: bytes, b: bytes) -> int:
    """Index of the first differing byte of two equal-length strings.

    Single big-int XOR: the highest set bit of ``a ^ b`` (big-endian) sits
    inside the first mismatching byte.
    """
    x = int.from_bytes(a, "big") ^ int.from_bytes(b, "big")
    return len(a) - ((x.bit_length() + 7) // 8)
