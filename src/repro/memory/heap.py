"""Boundary-tag heap allocator over the simulated address space.

The allocator is deliberately glibc-like in the one respect that matters to
HEALERS: chunk metadata lives *in band*, directly in front of the user data,
so a buffer overflow from one allocation silently corrupts the header of the
next chunk.  ``free()`` and the heap-consistency walk detect such corruption
and abort, mirroring glibc's ``malloc(): corrupted top size`` behaviour —
and an attacker who overwrites a function pointer stored in the adjacent
chunk hijacks control flow before any check runs, which is exactly the heap
smashing attack of Fetzer & Xiao [3] that the HEALERS security wrapper must
stop.

Chunk layout (all fields little endian)::

    +0   u32  magic          ALLOC_MAGIC or FREE_MAGIC
    +4   u32  user_size      bytes requested by the caller
    +8   u32  total_size     header + payload area, 16-byte aligned
    +12  u32  flags          bit 0: canary present
    +16  ...  user data      (user_size bytes)
    [+16+user_size  u64 canary, when enabled]

Canaries are optional because they are a *protection policy* layered on by
the HEALERS security wrapper, not a property of the brittle base libc; see
the ablation benchmark for the two protection variants.
"""

from __future__ import annotations

import struct
from bisect import bisect_right, insort
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import (
    CanaryViolation,
    DoubleFree,
    HeapCorruption,
    InvalidFree,
)
from repro.memory.model import AddressSpace, Mapping, Perm

HEADER_SIZE = 16
CHUNK_ALIGN = 16
MIN_SPLIT = 32

ALLOC_MAGIC = 0xA110CA7E
FREE_MAGIC = 0xF4EEF4EE
CANARY_VALUE = 0xDEADC0DEDEADC0DE
CANARY_SIZE = 8

FLAG_CANARY = 0x1

#: one-shot codecs for the in-band metadata; unpacking a whole header (or
#: canary) straight from the mapping buffer replaces four ``read_u32``
#: round-trips per chunk on the integrity-walk hot path
_HEADER = struct.Struct("<IIII")
_CANARY = struct.Struct("<Q")


def _align(value: int, alignment: int = CHUNK_ALIGN) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


@dataclass
class HeapStats:
    """Running counters maintained by the allocator."""

    malloc_calls: int = 0
    free_calls: int = 0
    realloc_calls: int = 0
    failed_allocations: int = 0
    bytes_in_use: int = 0
    peak_bytes_in_use: int = 0
    live_chunks: int = 0
    repairs: int = 0
    quarantined_chunks: int = 0


@dataclass
class RepairReport:
    """What :meth:`HeapAllocator.repair` did to restore consistency."""

    #: human-readable description of each rewrite/quarantine performed
    actions: List[str] = field(default_factory=list)
    #: user addresses taken out of circulation (their data survives, but
    #: the chunk is never handed out again and ``free()`` on it no-ops)
    quarantined: List[int] = field(default_factory=list)
    #: post-repair integrity verdict (False = corruption we could not fix)
    clean: bool = True

    @property
    def repaired(self) -> bool:
        return bool(self.actions)


@dataclass
class ChunkInfo:
    """Decoded view of one chunk header (diagnostics / integrity walk)."""

    header_address: int
    user_address: int
    user_size: int
    total_size: int
    allocated: bool
    has_canary: bool


class HeapAllocator:
    """First-fit free-list allocator with in-band corruptible metadata."""

    #: chaos-engineering hooks, class-level None so the hot path pays one
    #: attribute read; armed per instance by the fault injector
    fault_hook: Optional[Callable[[], bool]] = None
    post_alloc_hook: Optional[Callable[[int, int], None]] = None

    def __init__(
        self,
        space: AddressSpace,
        size: int = 1 << 20,
        canaries: bool = False,
        name: str = "[heap]",
    ):
        self.space = space
        self.mapping: Mapping = space.map_region(size, Perm.RW, name)
        self.canaries = canaries
        self.stats = HeapStats()
        #: bumped whenever the live-allocation set can change (malloc,
        #: free, quarantine); pairs with ``AddressSpace.mutations`` so
        #: extent/terminator memos know when their bounds went stale
        self.mutations = 0
        #: top of the allocated area; everything above is wilderness
        self._brk = self.mapping.start
        #: free chunks by header address -> total size (mirror of in-memory
        #: state, used for first-fit search; the in-memory magic remains the
        #: source of truth for corruption detection)
        self._free: Dict[int, int] = {}
        #: header addresses of free chunks, kept sorted so first-fit walks
        #: ascending addresses without re-sorting per malloc
        self._free_order: List[int] = []
        #: live allocations user_address -> user_size (the allocator's own
        #: view; HEALERS' wrapper keeps an equivalent external size table)
        self._live: Dict[int, int] = {}
        #: user addresses of live allocations, kept sorted; since live
        #: chunks never overlap, a bisect finds the only candidate that
        #: can contain an interior pointer in O(log n)
        self._live_order: List[int] = []
        #: out-of-band shadow of live in-band headers, header address ->
        #: (user_size, total, flags); the in-band copy stays the detection
        #: ground truth, the shadow is the *repair* ground truth
        self._chunks: Dict[int, Tuple[int, int, int]] = {}
        #: chunks removed from circulation after corruption, header ->
        #: shadow header; never reused, never freeable
        self._quarantined: Dict[int, Tuple[int, int, int]] = {}

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the user address or 0 (NULL).

        ``malloc(0)`` returns a unique minimal allocation, as glibc does.
        """
        self.stats.malloc_calls += 1
        self.mutations += 1
        self.space.mutations += 1
        hook = self.fault_hook
        if hook is not None and hook():
            self.stats.failed_allocations += 1
            return 0
        if size < 0:
            self.stats.failed_allocations += 1
            return 0
        payload = size + (CANARY_SIZE if self.canaries else 0)
        total = _align(HEADER_SIZE + max(payload, 1))
        taken = self._take_free_chunk(total)
        if taken is None:
            header = self._extend_brk(total)
            if header is None:
                self.stats.failed_allocations += 1
                return 0
        else:
            header, total = taken
        self._write_header(header, size, total, allocated=True)
        user = header + HEADER_SIZE
        if self.canaries:
            self.space.write_u64(user + size, CANARY_VALUE)
        if user not in self._live:
            insort(self._live_order, user)
        self._live[user] = size
        self._chunks[header] = (
            size, total, FLAG_CANARY if self.canaries else 0
        )
        self.stats.live_chunks += 1
        self.stats.bytes_in_use += size
        self.stats.peak_bytes_in_use = max(
            self.stats.peak_bytes_in_use, self.stats.bytes_in_use
        )
        post = self.post_alloc_hook
        if post is not None:
            post(user, size)
        return user

    def reliable_malloc(self, size: int) -> int:
        """``malloc`` with the injection hooks suspended.

        For harness-level helper allocations (string literals, callback
        scaffolding) that model static program data: they sit below the
        interposition boundary, so no wrapper could ever contain a fault
        injected into them — chaos there would only measure noise.
        """
        hook, post = self.fault_hook, self.post_alloc_hook
        self.fault_hook = None
        self.post_alloc_hook = None
        try:
            return self.malloc(size)
        finally:
            self.fault_hook = hook
            self.post_alloc_hook = post

    def calloc(self, count: int, size: int) -> int:
        """Allocate and zero ``count * size`` bytes (with overflow check)."""
        if count < 0 or size < 0:
            return 0
        total = count * size
        if total > self.mapping.size:
            return 0
        user = self.malloc(total)
        if user:
            self.space.fill(user, 0, total)
        return user

    def realloc(self, address: int, size: int) -> int:
        """Resize an allocation, moving it when necessary."""
        self.stats.realloc_calls += 1
        if address == 0:
            return self.malloc(size)
        if size == 0:
            self.free(address)
            return 0
        old_size = self._validated_user_size(address)
        new = self.malloc(size)
        if new == 0:
            return 0
        data = self.space.read(address, min(old_size, size))
        self.space.write(new, data)
        self.free(address)
        return new

    def free(self, address: int) -> None:
        """Release an allocation; detects double/invalid free and corruption."""
        self.stats.free_calls += 1
        self.mutations += 1
        self.space.mutations += 1
        if address == 0:
            return
        header = address - HEADER_SIZE
        if self._quarantined and header in self._quarantined:
            return  # quarantined chunks are out of circulation for good
        if not self.mapping.contains(header, HEADER_SIZE):
            raise InvalidFree(address)
        if self.space.scalar:
            magic = self.space.read_u32(header)
            user_size = self.space.read_u32(header + 4)
            total = self.space.read_u32(header + 8)
            flags = self.space.read_u32(header + 12)
        else:
            # the containment check above guarantees the whole header is
            # inside the heap mapping, so one read replaces four
            magic, user_size, total, flags = _HEADER.unpack(
                self.space.read(header, HEADER_SIZE)
            )
        if magic == FREE_MAGIC:
            raise DoubleFree(address)
        if magic != ALLOC_MAGIC:
            raise HeapCorruption(address, "chunk header magic clobbered")
        if header + total > self._brk or total < HEADER_SIZE:
            raise HeapCorruption(address, "chunk size field clobbered")
        if flags & FLAG_CANARY:
            if self.space.read_u64(address + user_size) != CANARY_VALUE:
                raise CanaryViolation(address)
        self.space.write_u32(header, FREE_MAGIC)
        self._chunks.pop(header, None)
        self._free_insert(header, total)
        self._coalesce(header)
        actual = self._live.pop(address, None)
        if actual is not None:
            self._live_discard(address)
            self.stats.bytes_in_use -= actual
            self.stats.live_chunks -= 1

    # ------------------------------------------------------------------
    # introspection (used by the HEALERS security wrapper)
    # ------------------------------------------------------------------

    def allocation_size(self, address: int) -> Optional[int]:
        """User size of the allocation starting at ``address``, or None."""
        return self._live.get(address)

    def allocation_containing(self, address: int) -> Optional[Tuple[int, int]]:
        """(user_address, user_size) of the live chunk containing ``address``.

        Returns None when ``address`` does not fall inside any live
        allocation's user area.  This is the query the security wrapper
        uses to bound writes through interior pointers; live chunks never
        overlap, so the bisect predecessor is the only candidate.
        """
        order = self._live_order
        index = bisect_right(order, address) - 1
        if index < 0:
            return None
        user = order[index]
        size = self._live[user]
        if user <= address < user + max(size, 1):
            return (user, size)
        return None

    def writable_bytes_from(self, address: int) -> Optional[int]:
        """Bytes from ``address`` to the end of its live allocation."""
        found = self.allocation_containing(address)
        if found is None:
            return None
        user, size = found
        return user + size - address

    def live_allocations(self) -> Dict[int, int]:
        """Snapshot of user_address -> user_size for live chunks."""
        return dict(self._live)

    def walk(self) -> List[ChunkInfo]:
        """Walk the chunk chain from the heap base using in-band headers.

        Raises :class:`HeapCorruption` when a header is unreadable as a
        chunk, mirroring a failed glibc consistency assertion.
        """
        chunks: List[ChunkInfo] = []
        cursor = self.mapping.start
        base = self.mapping.start
        data = self.mapping.data
        readable = bool(self.mapping.perm & Perm.READ)
        fast = not self.space.scalar
        while cursor < self._brk:
            offset = cursor - base
            if fast and readable and offset + HEADER_SIZE <= self.mapping.size:
                magic, user_size, total, flags = _HEADER.unpack_from(
                    data, offset
                )
                if magic not in (ALLOC_MAGIC, FREE_MAGIC):
                    raise HeapCorruption(cursor, "walk found clobbered magic")
            else:
                # reference loop; also replays the exact fault when a
                # clobbered size pushed the cursor off the readable mapping
                magic = self.space.read_u32(cursor)
                if magic not in (ALLOC_MAGIC, FREE_MAGIC):
                    raise HeapCorruption(cursor, "walk found clobbered magic")
                user_size = self.space.read_u32(cursor + 4)
                total = self.space.read_u32(cursor + 8)
                flags = self.space.read_u32(cursor + 12)
            if total < HEADER_SIZE or cursor + total > self._brk:
                raise HeapCorruption(cursor, "walk found clobbered size")
            chunks.append(
                ChunkInfo(
                    header_address=cursor,
                    user_address=cursor + HEADER_SIZE,
                    user_size=user_size,
                    total_size=total,
                    allocated=magic == ALLOC_MAGIC,
                    has_canary=bool(flags & FLAG_CANARY),
                )
            )
            cursor += total
        return chunks

    def check_integrity(self) -> List[str]:
        """Non-raising integrity check: list of corruption descriptions.

        The default path fuses the header walk and the canary sweep into
        one pass over the mapping buffer with no per-chunk allocations;
        :meth:`_walk_integrity` keeps the original chunk-object walk as
        the scalar reference (and the fallback for odd mappings).
        """
        if self.space.scalar or not (self.mapping.perm & Perm.READ):
            return self._walk_integrity()
        base = self.mapping.start
        data = self.mapping.data
        limit = self.mapping.size
        brk = self._brk
        unpack_header = _HEADER.unpack_from
        canaried: List[Tuple[int, int]] = []
        cursor = base
        while cursor < brk:
            offset = cursor - base
            if offset + HEADER_SIZE > limit:
                return self._walk_integrity()  # replays the faulting read
            magic, user_size, total, flags = unpack_header(data, offset)
            if magic not in (ALLOC_MAGIC, FREE_MAGIC):
                return [str(HeapCorruption(cursor,
                                           "walk found clobbered magic"))]
            if total < HEADER_SIZE or cursor + total > brk:
                return [str(HeapCorruption(cursor,
                                           "walk found clobbered size"))]
            if magic == ALLOC_MAGIC and flags & FLAG_CANARY:
                canaried.append((cursor + HEADER_SIZE, user_size))
            cursor += total
        # canaries are checked only after the whole chain validated, as in
        # the reference path (a later clobbered header wins)
        problems: List[str] = []
        for user, user_size in canaried:
            offset = user + user_size - base
            if 0 <= offset and offset + CANARY_SIZE <= limit:
                canary = _CANARY.unpack_from(data, offset)[0]
            else:
                # a clobbered user_size can point the canary off the
                # mapping; the plain read faults exactly as before
                canary = self.space.read_u64(user + user_size)
            if canary != CANARY_VALUE:
                problems.append(
                    f"canary clobbered for chunk at {user:#x}"
                )
        return problems

    def _walk_integrity(self) -> List[str]:
        """Reference integrity check over :meth:`walk` chunk objects."""
        problems: List[str] = []
        try:
            chunks = self.walk()
        except HeapCorruption as exc:
            return [str(exc)]
        for chunk in chunks:
            if chunk.allocated and chunk.has_canary:
                canary = self.space.read_u64(
                    chunk.user_address + chunk.user_size
                )
                if canary != CANARY_VALUE:
                    problems.append(
                        f"canary clobbered for chunk at {chunk.user_address:#x}"
                    )
        return problems

    # ------------------------------------------------------------------
    # self-healing (the recovery subsystem's repair surface)
    # ------------------------------------------------------------------

    def quarantine(self, address: int) -> bool:
        """Take the live allocation at ``address`` out of circulation.

        The chunk's header and canary are rewritten from the shadow copy
        so the chain walks clean, its user data is left untouched (the
        application may still hold the pointer), but the allocator never
        reuses it: it leaves the live set, ``free()`` on it becomes a
        no-op, and it never re-enters the free list.  This is the repair
        policy's containment unit for a corrupted allocation.
        """
        size = self._live.pop(address, None)
        if size is None:
            return False
        self.mutations += 1
        self.space.mutations += 1
        self._live_discard(address)
        header = address - HEADER_SIZE
        shadow = self._chunks.pop(header, None)
        if shadow is None:  # pragma: no cover - shadow mirrors _live
            payload = size + (CANARY_SIZE if self.canaries else 0)
            shadow = (size, _align(HEADER_SIZE + max(payload, 1)),
                      FLAG_CANARY if self.canaries else 0)
        self._quarantined[header] = shadow
        user_size, total, flags = shadow
        self._write_header(header, user_size, total, allocated=True)
        if flags & FLAG_CANARY:
            self.space.write_u64(address + user_size, CANARY_VALUE)
        self.stats.bytes_in_use -= size
        self.stats.live_chunks -= 1
        self.stats.quarantined_chunks += 1
        return True

    def repair(self, quarantine: bool = True) -> RepairReport:
        """Rewrite corrupted in-band metadata from the shadow copies.

        Every chunk between the heap base and the break is exactly one of
        live (shadowed in ``_chunks``), quarantined, or free (mirrored in
        ``_free``), so the entire chain can be reconstructed without
        trusting a single in-band byte.  Headers that disagree with their
        shadow are rewritten; an allocated chunk whose canary was
        clobbered is quarantined (``quarantine=True``, the recovery
        policy's default — the overflow wrote *into* it, so its tail is
        suspect) or has the canary restored in place.

        Returns a :class:`RepairReport`; ``report.clean`` re-runs
        :meth:`check_integrity` after the rewrites.
        """
        report = RepairReport()
        expected: List[Tuple[int, int, int, int, bool]] = []
        for header, (user_size, total, flags) in self._chunks.items():
            expected.append((header, user_size, total, flags, True))
        for header, (user_size, total, flags) in self._quarantined.items():
            expected.append((header, user_size, total, flags, True))
        for header, total in self._free.items():
            expected.append((header, 0, total, 0, False))
        expected.sort()
        for header, user_size, total, flags, allocated in expected:
            if not self.mapping.contains(header, HEADER_SIZE):
                continue  # pragma: no cover - shadows never leave the map
            magic, in_size, in_total, in_flags = _HEADER.unpack(
                self.space.read(header, HEADER_SIZE)
            )
            if allocated:
                if (magic, in_size, in_total, in_flags) != (
                    ALLOC_MAGIC, user_size, total, flags
                ):
                    self._write_header(header, user_size, total,
                                       allocated=True)
                    report.actions.append(
                        f"rewrote header of chunk at {header:#x}"
                    )
                user = header + HEADER_SIZE
                if flags & FLAG_CANARY and self.mapping.contains(
                    user + user_size, CANARY_SIZE
                ):
                    canary = self.space.read_u64(user + user_size)
                    if canary != CANARY_VALUE:
                        if quarantine and user in self._live:
                            self.quarantine(user)
                            report.quarantined.append(user)
                            report.actions.append(
                                f"quarantined chunk at {user:#x} "
                                f"(canary clobbered)"
                            )
                        else:
                            self.space.write_u64(user + user_size,
                                                 CANARY_VALUE)
                            report.actions.append(
                                f"rewrote canary of chunk at {user:#x}"
                            )
            else:
                # free chunks carry stale user_size/flags by design
                # (``free`` rewrites only the magic), so just magic and
                # the size field participate in integrity
                if magic != FREE_MAGIC or in_total != total:
                    self._write_header(header, 0, total, allocated=False)
                    report.actions.append(
                        f"rewrote free-chunk header at {header:#x}"
                    )
        self.stats.repairs += len(report.actions)
        report.clean = not self.check_integrity()
        return report

    def quarantined_addresses(self) -> List[int]:
        """User addresses currently under quarantine (sorted)."""
        return sorted(header + HEADER_SIZE for header in self._quarantined)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _validated_user_size(self, address: int) -> int:
        header = address - HEADER_SIZE
        if not self.mapping.contains(header, HEADER_SIZE):
            raise InvalidFree(address)
        if self.space.read_u32(header) != ALLOC_MAGIC:
            raise HeapCorruption(address, "realloc of invalid chunk")
        return self.space.read_u32(header + 4)

    def _free_insert(self, header: int, total: int) -> None:
        if header not in self._free:
            insort(self._free_order, header)
        self._free[header] = total

    def _free_discard(self, header: int) -> None:
        del self._free[header]
        index = bisect_right(self._free_order, header) - 1
        del self._free_order[index]

    def _live_discard(self, user: int) -> None:
        index = bisect_right(self._live_order, user) - 1
        del self._live_order[index]

    def _take_free_chunk(self, total: int) -> Optional[Tuple[int, int]]:
        """First-fit search; returns (header, actual_total) or None.

        ``_free_order`` is maintained sorted (insort on free/split), so the
        walk visits ascending header addresses — the same placement order
        the previous per-malloc ``sorted()`` produced — without an O(n log n)
        re-sort on every allocation.

        Oversized free chunks are split when the remainder is big enough to
        hold a future allocation; otherwise the whole chunk is handed out.
        """
        for header in self._free_order:
            available = self._free[header]
            if available >= total:
                self._free_discard(header)
                if available - total >= MIN_SPLIT:
                    remainder = header + total
                    self._write_header(
                        remainder, 0, available - total, allocated=False
                    )
                    self._free_insert(remainder, available - total)
                    return (header, total)
                return (header, available)
        return None

    def _extend_brk(self, total: int) -> Optional[int]:
        if self._brk + total > self.mapping.end:
            return None
        header = self._brk
        self._brk += total
        return header

    def _write_header(
        self, header: int, user_size: int, total: int, allocated: bool
    ) -> None:
        flags = FLAG_CANARY if (allocated and self.canaries) else 0
        magic = ALLOC_MAGIC if allocated else FREE_MAGIC
        if self.space.scalar:
            self.space.write_u32(header, magic)
            self.space.write_u32(header + 4, user_size)
            self.space.write_u32(header + 8, total)
            self.space.write_u32(header + 12, flags)
        else:
            self.space.write(header, _HEADER.pack(magic, user_size, total, flags))

    def _coalesce(self, header: int) -> None:
        """Merge the freed chunk with adjacent free chunks; if the merged
        chunk abuts the wilderness, give it back to the wilderness."""
        total = self._free[header]
        self._free_discard(header)
        # merge backward: only the bisect predecessor can end exactly at
        # this header (free chunks never overlap)
        index = bisect_right(self._free_order, header) - 1
        if index >= 0:
            other = self._free_order[index]
            other_total = self._free[other]
            if other + other_total == header:
                self._free_discard(other)
                header = other
                total += other_total
        # merge forward
        follower = header + total
        while follower in self._free:
            follower_total = self._free[follower]
            self._free_discard(follower)
            total += follower_total
            follower = header + total
        if header + total == self._brk:
            self._brk = header
        else:
            self._free_insert(header, total)
            self._write_header(header, 0, total, allocated=False)
