"""Runtime argument checks synthesised from the robust API.

Each derived robust type names a check template (see
:mod:`repro.ftypes.chains`); this module compiles a function's declaration
entry into an :class:`ArgumentChecker` that the robustness wrapper runs in
its prefix code.  A violation means the call would (per the experiments)
crash, hang or corrupt state, so the wrapper refuses it and reports an
error instead — fault containment.

The capacity checks implement the paper's key example: for ``strcpy`` the
wrapper verifies that ``dest`` points to a writable buffer with enough
space for ``strlen(src)+1`` bytes, using the allocator's size table for
heap pointers (the malloc-interposition trick of [3]) and mapping bounds
otherwise.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.headers.model import Prototype
from repro.memory.model import MAX_ADDRESS, Perm, _PERM_READ, _PERM_WRITE
from repro.robust.introspect import CheckPlan, ParamPlan, as_plan
from repro.runtime.process import SimProcess

#: bound on wrapper-side string scans; a string not terminated within this
#: many bytes is treated as invalid rather than scanned indefinitely
MAX_STRING_SCAN = 1 << 20
WCHAR_SIZE = 4
POINTER_SIZE = 8
FILE_STRUCT_BYTES = 16


@dataclass
class CheckViolation:
    """One failed argument check."""

    function: str
    param: str
    check: str
    detail: str

    def __str__(self) -> str:
        return f"{self.function}({self.param}): {self.check} — {self.detail}"


# ----------------------------------------------------------------------
# extent helpers (the HEALERS size-table queries)
# ----------------------------------------------------------------------

#: entry cap per memo table — insurance against adversarial request
#: streams touching unbounded pointer sets
_MEMO_LIMIT = 1024
#: cap for memoized clean-pass guard verdicts
_VERDICT_LIMIT = 4096
#: misses a validator tolerates before judging its verdict hit rate
_VERDICT_PROBATION = 64
#: candidate verdicts kept per (validator, args) key — one per request
#: shape the hot mix cycles through the same buffer
_VERDICT_SHAPES = 32
#: "nothing dirty" value for AddressSpace.dirty_lo (mirrors its init)
_WATERMARK_EMPTY = MAX_ADDRESS

#: process-wide id source for verdict-memoizable validators
_verdict_ids = itertools.count(1)


class CheckMemo:
    """Pointer-keyed memo for the extent/termination primitives.

    The serving profile is dominated not by wrapper dispatch but by the
    check primitives themselves: one request re-derives the same
    terminator positions and extents dozens of times (every ``strcmp``
    in a key scan re-vets the same request buffer).  A ``CheckMemo``
    installed on ``process.check_memo`` caches those derived facts and
    invalidates them from the space/heap change trackers:

    * ``AddressSpace.epoch`` + ``HeapAllocator.mutations`` — *layout*
      tokens.  Any mapping or live-allocation change clears everything
      (extents and terminators both depend on layout).
    * ``AddressSpace.mutations`` + the ``dirty_lo``/``dirty_hi``
      watermark — the *content* signal.  When bytes were written since
      the last sync, exactly the terminator entries whose scan range
      overlaps the written watermark are evicted (extents are
      content-independent and stay).  The watermark is maintained by
      the write primitives themselves, so eviction is precise no matter
      *which* function wrote — ``gets``, ``sprintf`` ``%n``, or an
      overflow running past its buffer.

    Every invalidating event — content write, mapping change, heap
    malloc/free — also advances ``AddressSpace.mutations``, so memo
    freshness is one integer compare (``memo.stamp == space.mutations``)
    that the primitives inline on their hit path; :meth:`sync` runs only
    when the stamp moved.  A stale entry can therefore never serve a
    stale answer, with no per-function effect annotations anywhere.

    On top of the primitive tables sits a *verdict* memo: a whole guard
    plan whose checks all passed records its clean verdict keyed by
    ``(validator, args, varargs)`` together with the terminator entries
    the run consulted (collected through ``dep_log``).  The verdict is
    replayed only while each of those exact entry objects is still in
    ``term`` — any write that could move a terminator evicts the entry,
    which breaks the identity test and forces a re-run.  Extents are
    layout-pure, so the layout tokens cover them: :meth:`invalidate`
    drops all verdicts.  Violating runs are never memoized (they must
    re-emit their violation every time).
    """

    __slots__ = ("space", "heap", "term", "rext", "wext", "fmt",
                 "verdicts", "dep_log", "dep_broken", "last",
                 "hits", "misses", "stamp", "_epoch", "_heap_mut")

    def __init__(self, proc: SimProcess):
        self.space = proc.space
        self.heap = proc.heap
        #: pointer -> (terminated_length result, scan end address);
        #: narrow strings only — the end bound drives range eviction
        self.term: Dict[int, Tuple[Optional[int], int]] = {}
        #: pointer -> readable_extent result
        self.rext: Dict[int, int] = {}
        #: pointer -> writable_extent result
        self.wext: Dict[int, int] = {}
        #: pointer -> (term entry, format analysis); the entry object is
        #: the validity token — evicting the terminator drops the parse
        self.fmt: Dict[int, tuple] = {}
        #: (validator id, args, varargs) -> list of (ptr, entry, strict)
        #: terminator deps; lists so replays can refresh evicted-but-
        #: equal entries in place
        self.verdicts: Dict[tuple, list] = {}
        #: when a guard run is recording, the term entries it consulted
        self.dep_log: Optional[list] = None
        #: set when the recording run touched state the deps cannot
        #: express (wide strings, %n formats, overflowing tables)
        self.dep_broken = False
        #: the (fuel delta, deps) record the most recent clean guard
        #: pass produced or replayed — the fused trace lane reads it
        #: right after the call to seed its per-step verdict slot
        self.last: Optional[tuple] = None
        self.hits = 0
        self.misses = 0
        #: value of ``space.mutations`` the tables are current for
        self.stamp = self.space.mutations
        self._epoch = self.space.epoch
        self._heap_mut = self.heap.mutations
        # adopt (and consume) whatever the watermark accumulated so far
        self.space.dirty_lo = _WATERMARK_EMPTY
        self.space.dirty_hi = 0

    def sync(self) -> None:
        """Drop whatever the change trackers say could have changed."""
        space = self.space
        if space.mutations == self.stamp:
            return
        if (space.epoch != self._epoch
                or self.heap.mutations != self._heap_mut):
            self.invalidate()
            return
        lo = space.dirty_lo
        hi = space.dirty_hi
        term = self.term
        if term:
            stale = [ptr for ptr, (_, end) in term.items()
                     if ptr < hi and end > lo]
            for ptr in stale:
                del term[ptr]
        space.dirty_lo = _WATERMARK_EMPTY
        space.dirty_hi = 0
        self.stamp = space.mutations

    def invalidate(self) -> None:
        """Full clear + tracker resync (for layout changes)."""
        self.term.clear()
        self.rext.clear()
        self.wext.clear()
        self.fmt.clear()
        self.verdicts.clear()
        self._epoch = self.space.epoch
        self._heap_mut = self.heap.mutations
        self.stamp = self.space.mutations
        self.space.dirty_lo = _WATERMARK_EMPTY
        self.space.dirty_hi = 0


def writable_extent(proc: SimProcess, pointer: int) -> int:
    """Writable bytes available from ``pointer``.

    Heap pointers are bounded by their *allocation* (the size table);
    other pointers by their mapping.  Zero for invalid pointers.
    """
    memo = proc.check_memo
    if memo is not None:
        if memo.stamp != proc.space.mutations:
            memo.sync()
        cached = memo.wext.get(pointer)
        if cached is not None:
            memo.hits += 1
            return cached
    heap_bound = proc.heap.writable_bytes_from(pointer)
    if heap_bound is not None:
        extent = heap_bound
    else:
        mapping = proc.space.find_mapping(pointer)
        if mapping is not None and mapping.perm_bits & _PERM_WRITE:
            if proc.heap.mapping is mapping:
                # inside the heap but not inside any live allocation:
                # treat as invalid rather than granting the rest of the
                # heap region
                extent = 0
            else:
                extent = mapping.end - pointer
        else:
            extent = 0
    if memo is not None:
        memo.misses += 1
        if len(memo.wext) < _MEMO_LIMIT:
            memo.wext[pointer] = extent
    return extent


def readable_extent(proc: SimProcess, pointer: int) -> int:
    """Readable bytes available from ``pointer`` (0 when invalid)."""
    memo = proc.check_memo
    if memo is not None:
        if memo.stamp != proc.space.mutations:
            memo.sync()
        cached = memo.rext.get(pointer)
        if cached is not None:
            memo.hits += 1
            return cached
    mapping = proc.space.find_mapping(pointer)
    if mapping is None or not mapping.perm_bits & _PERM_READ:
        extent = 0
    elif proc.heap.mapping is mapping:
        found = proc.heap.allocation_containing(pointer)
        if found is None:
            extent = 0
        else:
            user, size = found
            extent = user + size - pointer
    else:
        extent = mapping.end - pointer
    if memo is not None:
        memo.misses += 1
        if len(memo.rext) < _MEMO_LIMIT:
            memo.rext[pointer] = extent
    return extent


def terminated_length(proc: SimProcess, pointer: int,
                      wide: bool = False,
                      content: bool = False) -> Optional[int]:
    """Length of the string at ``pointer`` if safely terminated, else None.

    The scan never leaves readable memory and never exceeds
    MAX_STRING_SCAN — the wrapper must not itself crash or hang on the
    argument it is vetting.  The readable extent is established first and
    the terminator search runs as one C-speed scan over the mapping slice
    (:meth:`AddressSpace.find_byte` / :meth:`AddressSpace.find_u32`), with
    no per-byte paging round trips and no chunk copies; results are
    identical to a per-character scan.
    """
    memo = proc.check_memo
    if wide:
        if memo is not None and memo.dep_log is not None:
            # wide scans are not memoized, so a verdict depending on
            # one has no entry to anchor its content dependency
            memo.dep_broken = True
        memo = None
    if memo is not None:
        if memo.stamp != proc.space.mutations:
            memo.sync()
        cached = memo.term.get(pointer)
        if cached is not None:
            memo.hits += 1
            if memo.dep_log is not None:
                memo.dep_log.append((pointer, cached, content))
            return cached[0]
    bound = min(readable_extent(proc, pointer), MAX_STRING_SCAN)
    if wide:
        index, _ = proc.space.find_u32(pointer, 0, bound // WCHAR_SIZE)
    else:
        index, scanned = proc.space.find_byte(pointer, 0, bound)
        if memo is not None:
            memo.misses += 1
            if len(memo.term) < _MEMO_LIMIT:
                # the entry is stale once anything inside the scanned
                # range [pointer, pointer + scanned) is rewritten
                entry = (index, pointer + scanned)
                memo.term[pointer] = entry
                if memo.dep_log is not None:
                    memo.dep_log.append((pointer, entry, content))
            elif memo.dep_log is not None:
                memo.dep_broken = True
    return index


def _deps_intact(proc: SimProcess, memo: "CheckMemo", deps: list) -> bool:
    """Replay a recorded verdict's terminator dependencies.

    Identity match is the fast path.  A non-strict dep (every consumer
    except format analysis uses only the *length* of the scan) also
    survives a rewrite that left the value unchanged: the stale entry is
    re-scanned and accepted if the fresh ``(length, end)`` is equal,
    refreshing the stored dep so the next replay is an identity hit
    again.  Strict deps (format strings — the parse depends on the
    bytes, not the length) accept identity only.
    """
    term = memo.term
    for slot, (ptr, entry, strict) in enumerate(deps):
        cur = term.get(ptr)
        if cur is entry:
            continue
        if strict:
            return False
        if cur is None:
            # evicted by a write: the guard would re-scan anyway, so
            # re-scan here and see whether the value actually moved
            terminated_length(proc, ptr)
            cur = term.get(ptr)
        if cur != entry or cur is None:
            return False
        deps[slot] = (ptr, cur, strict)
    return True


def _analyse_format_full(
    proc: SimProcess, pointer: int,
) -> Optional[Tuple[int, bool, Tuple[Tuple[str, bool], ...]]]:
    """(directive count, uses %n, ((conversion, has 'l' flag), ...)).

    None when the format is not a safely terminated string.  The
    per-directive detail lets capacity checks know which varargs are
    read as strings (``%s``/``%ls``) during expansion.
    """
    length = terminated_length(proc, pointer, content=True)
    if length is None:
        return None
    memo = proc.check_memo
    entry = None
    if memo is not None:
        # terminated_length just synced the memo and (re)established the
        # term entry; its identity vouches for the format's content
        entry = memo.term.get(pointer)
        if entry is not None:
            cached = memo.fmt.get(pointer)
            if cached is not None and cached[0] is entry:
                memo.hits += 1
                return cached[1]
    data = proc.space.read(pointer, length)
    count = 0
    uses_n = False
    convs: List[Tuple[str, bool]] = []
    index = 0
    while index < len(data):
        if data[index : index + 1] != b"%":
            index += 1
            continue
        index += 1
        long_flag = False
        while index < len(data) and chr(data[index]) in "-0+ #.0123456789lhzq":
            if data[index : index + 1] == b"l":
                long_flag = True
            index += 1
        if index >= len(data):
            break
        conv = chr(data[index])
        index += 1
        if conv == "%":
            continue
        if conv == "n":
            uses_n = True
        convs.append((conv, long_flag))
        count += 1
    result = (count, uses_n, tuple(convs))
    if entry is not None and len(memo.fmt) < _MEMO_LIMIT:
        memo.fmt[pointer] = (entry, result)
    return result


def analyse_format(proc: SimProcess, pointer: int) -> Optional[Tuple[int, bool]]:
    """(consuming directive count, uses %n) for a format string.

    None when the format is not a safely terminated string.
    """
    full = _analyse_format_full(proc, pointer)
    if full is None:
        return None
    return (full[0], full[1])


# ----------------------------------------------------------------------
# the checker
# ----------------------------------------------------------------------

#: a compiled per-parameter check: (proc, value, values, varargs) → detail
CheckFn = Callable[[SimProcess, Any, Optional[Dict[str, Any]],
                    Sequence[Any]], Optional[str]]

#: checks whose compiled closures consult the other argument values
_NEEDS_VALUES = frozenset((
    "buffer_capacity", "wbuffer_capacity", "buffer_readable_extent",
    "size_bounded",
))


class ArgumentChecker:
    """Compiled prefix checks for one wrapped function.

    With ``compiled=True`` (the default) each parameter's check template
    is bound once, at construction, into a closure over the parameter's
    metadata — the per-call work is one closure call per check, with no
    string dispatch.  ``compiled=False`` keeps the original interpreted
    ladder (:meth:`_run_check`), preserved as the reference
    implementation for the fast-path differential tests.

    Accepts either IR: an introspection-derived :class:`CheckPlan` or a
    hand-tuned declaration entry (``FunctionDecl``), which is lifted
    into the plan IR first — one code path serves both.
    """

    def __init__(self, decl, prototype: Prototype, compiled: bool = True):
        self.plan: CheckPlan = as_plan(decl)
        self.decl = decl
        self.prototype = prototype
        self.function = self.plan.function
        self.compiled = compiled
        self._index_of: Dict[str, int] = {
            p.name: i for i, p in enumerate(prototype.params)
        }
        #: (param, check id) pairs, relational checks last so that the
        #: strings they measure have already been vetted
        simple: List[ParamPlan] = []
        relational: List[ParamPlan] = []
        for param in self.plan.params:
            if not param.check:
                continue
            if param.check in ("buffer_capacity", "wbuffer_capacity",
                               "size_bounded", "format_safe",
                               "buffer_readable_extent"):
                relational.append(param)
            else:
                simple.append(param)
        self.ordered = simple + relational
        #: argument slots consulted when building the values mapping
        self._slots: List[Tuple[str, int]] = [
            (p.name, self._index_of[p.name])
            for p in self.plan.params if p.name in self._index_of
        ]
        #: the check plan: (param, argument index or None, bound closure)
        self._plan: List[Tuple[ParamPlan, Optional[int], CheckFn]] = []
        self._needs_values = False
        if compiled:
            for param in self.ordered:
                check_fn = self._compile_check(param)
                if check_fn is None:
                    continue  # unknown template: be permissive, never crash
                self._plan.append(
                    (param, self._index_of.get(param.name), check_fn)
                )
                if param.check in _NEEDS_VALUES or (
                    param.nullable and param.check in (
                        "ptr_writable", "buffer_capacity",
                        "wbuffer_capacity", "buffer_readable_extent")
                ):
                    self._needs_values = True

    @property
    def has_checks(self) -> bool:
        """True when at least one check can fire on this function."""
        return bool(self._plan) if self.compiled else bool(self.ordered)

    @property
    def compiled_plan(self) -> Tuple[
        List[Tuple[ParamPlan, Optional[int], CheckFn]],
        List[Tuple[str, int]],
        bool,
    ]:
        """``(plan, slots, needs_values)`` for building fused fast-path
        guards: the bound check closures, the argument slots feeding the
        values mapping, and whether any check consults that mapping."""
        return self._plan, self._slots, self._needs_values

    # ------------------------------------------------------------------

    def validate(self, proc: SimProcess, args: Sequence[Any],
                 varargs: Sequence[Any] = ()) -> Optional[CheckViolation]:
        """Run all checks; the first violation (or None) is returned."""
        violations = self.validate_all(proc, args, varargs, first_only=True)
        return violations[0] if violations else None

    def validate_all(self, proc: SimProcess, args: Sequence[Any],
                     varargs: Sequence[Any] = (),
                     first_only: bool = False) -> List[CheckViolation]:
        """Run checks, collecting every violation (or just the first)."""
        if self.compiled:
            return self._validate_plan(proc, args, varargs, first_only)
        values = {p.name: args[self._index_of[p.name]]
                  for p in self.plan.params if p.name in self._index_of}
        violations: List[CheckViolation] = []
        for param in self.ordered:
            value = values.get(param.name)
            detail = self._run_check(proc, param, value, values, varargs)
            if detail is not None:
                violations.append(
                    CheckViolation(
                        function=self.function,
                        param=param.name,
                        check=param.check,
                        detail=detail,
                    )
                )
                if first_only:
                    break
        return violations

    def _validate_plan(self, proc: SimProcess, args: Sequence[Any],
                       varargs: Sequence[Any],
                       first_only: bool) -> List[CheckViolation]:
        """Run the compiled check plan (no per-call dispatch)."""
        values: Optional[Dict[str, Any]] = None
        if self._needs_values:
            values = {name: args[index] for name, index in self._slots}
        violations: List[CheckViolation] = []
        for param, index, check_fn in self._plan:
            value = args[index] if index is not None else None
            detail = check_fn(proc, value, values, varargs)
            if detail is not None:
                violations.append(
                    CheckViolation(
                        function=self.function,
                        param=param.name,
                        check=param.check,
                        detail=detail,
                    )
                )
                if first_only:
                    break
        return violations

    def bound_validator(
        self,
    ) -> Callable[[SimProcess, Sequence[Any], Sequence[Any]],
                  Optional[CheckViolation]]:
        """One bound ``(proc, args, varargs) -> first violation`` callable.

        The compiled wrappers' hot entry: everything the plan needs is
        captured in the closure, so the happy path costs one values
        mapping at most and no intermediate list or dispatch layer.
        Only meaningful when the checker was built ``compiled=True``.
        """
        plan = self._plan
        slots = self._slots
        needs_values = self._needs_values
        function = self.function
        # every check except file_open is a pure function of memory
        # (tracked by the CheckMemo tokens) and the argument values, so
        # its clean verdict can be replayed; stream-table state is the
        # one dependency the memo cannot see
        memoizable = all(param.check != "file_open"
                         for param, _index, _fn in plan)
        vid = next(_verdict_ids) if memoizable else 0
        # adaptive: a validator whose verdicts keep getting evicted
        # (args or contents change every request) stops paying the
        # recording cost; one whose deps are stable keeps replaying
        tries = 0
        wins = 0
        enabled = memoizable

        def validate_first(proc: SimProcess, args: Sequence[Any],
                           varargs: Sequence[Any]) -> Optional[CheckViolation]:
            nonlocal tries, wins, enabled
            # fuel-budgeted runs never replay: a recorded verdict's fuel
            # credit cannot reproduce a mid-check OutOfFuel exactly
            memo = (proc.check_memo
                    if enabled and proc.fuel is None else None)
            key = None
            fuel_before = 0
            if memo is not None:
                if memo.stamp != memo.space.mutations:
                    memo.sync()
                key = (vid,
                       args if type(args) is tuple else tuple(args),
                       tuple(varargs) if varargs else ())
                bucket = memo.verdicts.get(key)
                if bucket is not None:
                    # polyvariant: a hot mix cycles a few request shapes
                    # through one buffer, so the same key holds one
                    # candidate per shape; move-to-front keeps the
                    # cycling shape's candidate first
                    for slot, (delta, deps) in enumerate(bucket):
                        if _deps_intact(proc, memo, deps):
                            if slot:
                                bucket.insert(0, bucket.pop(slot))
                            # replay the metered work the skipped guard
                            # would have done (format dry runs) so fuel
                            # telemetry stays byte-identical
                            proc._fuel_used += delta
                            memo.hits += 1
                            memo.last = bucket[0]
                            wins += 1
                            return None
                tries += 1
                if tries >= _VERDICT_PROBATION:
                    if wins * 2 < tries:
                        enabled = False
                        memo = None
                        key = None
                    else:
                        tries = 0
                        wins = 0
                if memo is not None:
                    memo.dep_log = []
                    memo.dep_broken = False
                    fuel_before = proc._fuel_used
            values = ({name: args[index] for name, index in slots}
                      if needs_values else None)
            for param, index, check_fn in plan:
                value = args[index] if index is not None else None
                detail = check_fn(proc, value, values, varargs)
                if detail is not None:
                    if memo is not None:
                        memo.dep_log = None
                    return CheckViolation(
                        function=function,
                        param=param.name,
                        check=param.check,
                        detail=detail,
                    )
            if memo is not None:
                log = memo.dep_log
                memo.dep_log = None
                if log is not None and not memo.dep_broken:
                    record = (proc._fuel_used - fuel_before, log)
                    memo.last = record
                    bucket = memo.verdicts.get(key)
                    if bucket is not None:
                        bucket.insert(0, record)
                        if len(bucket) > _VERDICT_SHAPES:
                            bucket.pop()
                    elif len(memo.verdicts) < _VERDICT_LIMIT:
                        memo.verdicts[key] = [record]
            return None

        return validate_first

    # ------------------------------------------------------------------
    # individual checks
    # ------------------------------------------------------------------

    def _run_check(self, proc: SimProcess, param: ParamPlan, value: Any,
                   values: Dict[str, Any],
                   varargs: Sequence[Any]) -> Optional[str]:
        check = param.check
        if check == "ptr_valid_or_null":
            if value != 0 and readable_extent(proc, value) == 0:
                return f"pointer {value:#x} is not mapped"
            return None
        if check == "ptr_readable":
            if readable_extent(proc, value) == 0:
                return f"pointer {value:#x} is not readable"
            return None
        if check == "ptr_writable":
            if value == 0 and param.nullable:
                return self._null_buffer_allowed(param, values)
            if writable_extent(proc, value) == 0:
                return f"pointer {value:#x} is not writable"
            return None
        if check in ("string_terminated", "wstring_terminated"):
            if value == 0 and param.nullable:
                return None
            wide = check == "wstring_terminated"
            if terminated_length(proc, value, wide=wide) is None:
                return f"no terminator within readable memory at {value:#x}"
            return None
        if check in ("buffer_capacity", "wbuffer_capacity"):
            if value == 0 and param.nullable:
                return self._null_buffer_allowed(param, values)
            required = self._required_bytes(proc, param, values, varargs)
            if required is None:
                return "cannot establish required capacity"
            available = writable_extent(proc, value)
            if available < required:
                return (f"buffer at {value:#x} provides {available} bytes, "
                        f"needs {required}")
            return None
        if check == "buffer_readable_extent":
            if value == 0 and param.nullable:
                return self._null_buffer_allowed(param, values)
            extent = self._declared_extent(param, values)
            if readable_extent(proc, value) < extent:
                return (f"buffer at {value:#x} not readable for "
                        f"{extent} bytes")
            return None
        if check == "word_writable_or_null":
            if value == 0:
                return None
            if writable_extent(proc, value) < POINTER_SIZE:
                return f"out-slot {value:#x} not writable"
            return None
        if check == "word_writable":
            if writable_extent(proc, value) < POINTER_SIZE:
                return f"out-slot {value:#x} not writable"
            return None
        if check in ("ptr_in_heap_or_null", "heap_live_or_null"):
            if value == 0:
                return None
            if proc.heap.allocation_size(value) is None:
                return f"{value:#x} is not a live heap allocation"
            return None
        if check == "fn_pointer":
            try:
                proc.resolve_callback(value)
            except Exception:
                return f"{value:#x} is not a function address"
            return None
        if check == "ptr_readable_file":
            if readable_extent(proc, value) < FILE_STRUCT_BYTES:
                return f"{value:#x} is not a readable FILE object"
            return None
        if check == "file_open":
            return self._check_file(proc, value)
        if check == "int_uchar_eof":
            if value == -1 or 0 <= value <= 255:
                return None
            return f"{value} outside unsigned char range and not EOF"
        if check == "int_nonzero":
            return None if value != 0 else "zero divisor"
        if check == "int_base":
            if value == 0 or 2 <= value <= 36:
                return None
            return f"invalid conversion base {value}"
        if check == "size_bounded":
            return self._check_size_bounded(proc, param, value, values)
        if check == "format_safe":
            analysis = analyse_format(proc, value)
            if analysis is None:
                return "format string not safely terminated"
            needed, _ = analysis
            if needed > len(varargs):
                return (f"format consumes {needed} arguments, "
                        f"{len(varargs)} supplied")
            return None
        return None  # unknown template: be permissive, never crash

    # ------------------------------------------------------------------
    # the check plan compiler
    # ------------------------------------------------------------------

    def _compile_check(self, param: ParamPlan) -> Optional[CheckFn]:
        """Bind one parameter's check template into a closure.

        Each closure reproduces the corresponding :meth:`_run_check`
        branch exactly (messages included); parameter metadata such as
        ``nullable`` is resolved here, once, instead of per call.
        None for unknown templates (permissive, like the ladder).
        """
        check = param.check
        nullable = param.nullable

        if check == "ptr_valid_or_null":
            def run(proc, value, values, varargs):
                if value != 0 and readable_extent(proc, value) == 0:
                    return f"pointer {value:#x} is not mapped"
                return None
        elif check == "ptr_readable":
            def run(proc, value, values, varargs):
                if readable_extent(proc, value) == 0:
                    return f"pointer {value:#x} is not readable"
                return None
        elif check == "ptr_writable":
            def run(proc, value, values, varargs):
                if value == 0 and nullable:
                    return self._null_buffer_allowed(param, values)
                if writable_extent(proc, value) == 0:
                    return f"pointer {value:#x} is not writable"
                return None
        elif check in ("string_terminated", "wstring_terminated"):
            wide = check == "wstring_terminated"

            def run(proc, value, values, varargs):
                if value == 0 and nullable:
                    return None
                if terminated_length(proc, value, wide=wide) is None:
                    return (f"no terminator within readable memory "
                            f"at {value:#x}")
                return None
        elif check in ("buffer_capacity", "wbuffer_capacity"):
            def run(proc, value, values, varargs):
                if value == 0 and nullable:
                    return self._null_buffer_allowed(param, values)
                required = self._required_bytes(proc, param, values, varargs)
                if required is None:
                    return "cannot establish required capacity"
                available = writable_extent(proc, value)
                if available < required:
                    return (f"buffer at {value:#x} provides {available} "
                            f"bytes, needs {required}")
                return None
        elif check == "buffer_readable_extent":
            def run(proc, value, values, varargs):
                if value == 0 and nullable:
                    return self._null_buffer_allowed(param, values)
                extent = self._declared_extent(param, values)
                if readable_extent(proc, value) < extent:
                    return (f"buffer at {value:#x} not readable for "
                            f"{extent} bytes")
                return None
        elif check == "word_writable_or_null":
            def run(proc, value, values, varargs):
                if value == 0:
                    return None
                if writable_extent(proc, value) < POINTER_SIZE:
                    return f"out-slot {value:#x} not writable"
                return None
        elif check == "word_writable":
            def run(proc, value, values, varargs):
                if writable_extent(proc, value) < POINTER_SIZE:
                    return f"out-slot {value:#x} not writable"
                return None
        elif check in ("ptr_in_heap_or_null", "heap_live_or_null"):
            def run(proc, value, values, varargs):
                if value == 0:
                    return None
                if proc.heap.allocation_size(value) is None:
                    return f"{value:#x} is not a live heap allocation"
                return None
        elif check == "fn_pointer":
            def run(proc, value, values, varargs):
                try:
                    proc.resolve_callback(value)
                except Exception:
                    return f"{value:#x} is not a function address"
                return None
        elif check == "ptr_readable_file":
            def run(proc, value, values, varargs):
                if readable_extent(proc, value) < FILE_STRUCT_BYTES:
                    return f"{value:#x} is not a readable FILE object"
                return None
        elif check == "file_open":
            def run(proc, value, values, varargs):
                return self._check_file(proc, value)
        elif check == "int_uchar_eof":
            def run(proc, value, values, varargs):
                if value == -1 or 0 <= value <= 255:
                    return None
                return f"{value} outside unsigned char range and not EOF"
        elif check == "int_nonzero":
            def run(proc, value, values, varargs):
                return None if value != 0 else "zero divisor"
        elif check == "int_base":
            def run(proc, value, values, varargs):
                if value == 0 or 2 <= value <= 36:
                    return None
                return f"invalid conversion base {value}"
        elif check == "size_bounded":
            def run(proc, value, values, varargs):
                return self._check_size_bounded(proc, param, value, values)
        elif check == "format_safe":
            def run(proc, value, values, varargs):
                analysis = analyse_format(proc, value)
                if analysis is None:
                    return "format string not safely terminated"
                needed, _ = analysis
                if needed > len(varargs):
                    return (f"format consumes {needed} arguments, "
                            f"{len(varargs)} supplied")
                return None
        else:
            return None
        return run

    # ------------------------------------------------------------------
    # relational helpers
    # ------------------------------------------------------------------

    def _null_buffer_allowed(self, param: ParamPlan,
                             values: Dict[str, Any]) -> Optional[str]:
        """A nullable buffer may be NULL only when its declared extent is
        zero (the C99 snprintf(NULL, 0, …) length-query idiom); a NULL
        destination with a nonzero count is still a fault."""
        extent = self._declared_extent(param, values)
        if extent == 0:
            return None
        return f"NULL with a declared extent of {extent} bytes"

    def _declared_extent(self, param: ParamPlan,
                         values: Dict[str, Any]) -> int:
        extent = max(param.min_size, 0)
        if param.size_param:
            count = int(values.get(param.size_param, 0))
            if param.size_mul:
                count *= int(values.get(param.size_mul, 1))
            if param.role in ("out_wbuffer", "out_wstring"):
                count *= WCHAR_SIZE
            extent = max(extent, count)
        return extent

    def _required_bytes(self, proc: SimProcess, param: ParamPlan,
                        values: Dict[str, Any],
                        varargs: Sequence[Any]) -> Optional[int]:
        wide = param.check == "wbuffer_capacity"
        required = max(param.min_size, 1 if not param.size_param else 0)
        if param.size_from:
            source = values.get(param.size_from)
            if source is None:
                return None
            source_decl = self._param_decl(param.size_from)
            if source_decl is not None and source_decl.role == "format":
                length = self._format_expansion(proc, source, varargs)
            else:
                length = terminated_length(proc, source, wide=wide)
            if length is None:
                return None
            stride = WCHAR_SIZE if wide else 1
            required = max(required, (length + 1) * stride)
            if param.role == "inout_string":
                own = terminated_length(proc, values.get(param.name, 0),
                                        wide=wide)
                if own is None:
                    return None
                required += own * stride
        extent = self._declared_extent(param, values)
        required = max(required, extent)
        return required

    def _format_expansion(self, proc: SimProcess, format_ptr: int,
                          varargs: Sequence[Any]) -> Optional[int]:
        """Dry-run the format engine to learn the exact expansion length."""
        from repro.libc.stdio_ import format_into

        analysis = _analyse_format_full(proc, format_ptr)
        if analysis is None or analysis[0] > len(varargs):
            return None
        try:
            produced = format_into(proc, format_ptr, list(varargs),
                                   writer=lambda chunk: None)
        except Exception:
            return None
        memo = proc.check_memo
        if memo is not None and memo.dep_log is not None:
            _count, uses_n, convs = analysis
            if uses_n:
                # the dry run itself wrote through %n — re-run always
                memo.dep_broken = True
            else:
                # the expansion length depends on the content of every
                # %s argument: anchor each one as a terminator dep
                for position, (conv, long_flag) in enumerate(convs):
                    if conv != "s":
                        continue
                    if long_flag:
                        memo.dep_broken = True
                        break
                    terminated_length(proc, varargs[position])
        return produced

    def _check_size_bounded(self, proc: SimProcess, param: ParamPlan,
                            value: Any,
                            values: Dict[str, Any]) -> Optional[str]:
        """A size argument must fit every buffer it governs."""
        count = int(value)
        if count < 0:
            return f"negative count {count}"
        for other in self.plan.params:
            if other.size_param != param.name and other.size_mul != param.name:
                continue
            buffer_ptr = values.get(other.name)
            if buffer_ptr in (None, 0):
                continue  # the buffer's own check reports NULL problems
            # the buffer's extent is size_param × size_mul: this param is
            # one factor, the governing partner (when declared) the other
            multiplier = 1
            if other.size_param == param.name:
                if other.size_mul:
                    multiplier = int(values.get(other.size_mul, 1))
            elif other.size_mul == param.name:
                multiplier = int(values.get(other.size_param, 1))
            if other.role in ("out_wbuffer", "out_wstring"):
                multiplier *= WCHAR_SIZE
            needed = count * max(multiplier, 1)
            writes = other.role in ("out_buffer", "out_wbuffer",
                                    "out_string", "inout_string",
                                    "out_wstring")
            if writes:
                available = writable_extent(proc, buffer_ptr)
            else:
                available = readable_extent(proc, buffer_ptr)
            if needed > available:
                access = "write" if writes else "read"
                return (f"count {count} needs {needed} bytes of "
                        f"{other.name} ({access}), only {available} "
                        f"available")
        return None

    def _check_file(self, proc: SimProcess, value: Any) -> Optional[str]:
        from repro.runtime.filesystem import FILE_MAGIC

        if readable_extent(proc, value) < FILE_STRUCT_BYTES:
            return f"{value:#x} is not a readable FILE object"
        if proc.space.read_u32(value) != FILE_MAGIC:
            return "FILE magic mismatch (closed or corrupt stream)"
        index = proc.space.read_u32(value + 4)
        if proc.fs.stream(index) is None:
            return f"stream {index} is not open"
        return None

    def _param_decl(self, name: str) -> Optional[ParamPlan]:
        for param in self.plan.params:
            if param.name == name:
                return param
        return None
