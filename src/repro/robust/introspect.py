"""Introspection-derived check plans: full-coverage robust API.

The hand-tuned path needs a fault-injection campaign before a function
gets argument checks — without derivations the declaration document
carries roles only and the robustness wrapper protects nothing.  This
module closes the gap the way "Introspection for C and its Applications
to Library Robustness" suggests: *derive* every function's check plan
from what the toolkit already knows statically —

* the declared ctypes (:mod:`repro.headers`),
* the manual-page role metadata (:mod:`repro.manpages`),
* the robust-type chains and their check templates
  (:mod:`repro.ftypes.chains`),

and, when a campaign has run, the per-parameter
:class:`~repro.robust.derivation.FunctionDerivation` verdicts.  The
result is a :class:`CheckPlan` per registry function — the IR both the
interpreted and the compiled fast-path checkers consume — so the
robustness preset covers all 123 functions instead of the curated
subset.

Static derivation picks the *strictest effective* rung of a parameter's
chain: the strongest check the available metadata can actually enforce
(a ``buffer_readable_extent`` with no size relation is vacuous and
degrades to ``ptr_readable``; a nullable out-slot must not be forced
through the NULL-rejecting ``word_writable``).  Campaign verdicts, when
present, override the static choice with the experimentally derived
weakest robust type — exactly what the hand-tuned documents record, so
derived plans are differentially identical to them on probed functions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.ftypes.chains import CHAINS, ROLE_CHAINS, RobustType, chain_for_ctype
from repro.headers.model import Prototype
from repro.libc.registry import LibcRegistry
from repro.manpages.model import ManPage

#: plan provenance markers
SOURCES = ("role", "ctype", "campaign", "unsatisfied", "unprobed", "declared")

#: check templates that reject NULL unconditionally (no nullable branch
#: in the checker); a nullable parameter must not be bound to these
_NULL_INTOLERANT = frozenset((
    "ptr_readable", "word_writable", "ptr_readable_file", "file_open",
    "fn_pointer",
))


@dataclass(frozen=True)
class ParamPlan:
    """One parameter's derived check, plus its provenance.

    Field names deliberately mirror :class:`repro.robust.api.ParamDecl`
    — the checker reads ``check``/``nullable``/``size_from``/… off either
    shape, so a plan slots into every existing check path unchanged.
    """

    name: str
    ctype: str
    role: str = ""
    chain: str = ""
    robust_type: str = ""
    #: rank of the chosen rung within its chain (-1: no rung chosen)
    rank: int = -1
    check: str = ""
    #: where the choice came from: "role"/"ctype" (static), "campaign"
    #: (derived verdict), "unsatisfied", "unprobed", or "declared"
    #: (lifted from a hand-tuned ParamDecl table)
    source: str = "role"
    nullable: bool = False
    size_from: str = ""
    size_param: str = ""
    size_mul: str = ""
    min_size: int = 0


@dataclass(frozen=True)
class CheckPlan:
    """The derived check plan of one function — the checker's IR."""

    function: str
    returns: str = ""
    error_return: str = ""
    variadic: bool = False
    #: errno values the manual page documents for failed calls
    errnos: Tuple[str, ...] = ()
    params: Tuple[ParamPlan, ...] = ()
    probes: int = 0
    failures: int = 0

    @property
    def name(self) -> str:
        """Alias so a plan reads like a declaration entry."""
        return self.function

    def param(self, name: str) -> Optional[ParamPlan]:
        for plan in self.params:
            if plan.name == name:
                return plan
        return None

    @property
    def has_checks(self) -> bool:
        return any(p.check for p in self.params)

    @property
    def checked_params(self) -> List[ParamPlan]:
        return [p for p in self.params if p.check]


# ----------------------------------------------------------------------
# static derivation
# ----------------------------------------------------------------------

def _chain_for(ctype, role_name: str) -> List[RobustType]:
    if role_name and role_name in ROLE_CHAINS:
        return CHAINS[ROLE_CHAINS[role_name]]
    return chain_for_ctype(ctype)


def _static_rung(chain: List[RobustType], nullable: bool,
                 has_extent: bool) -> RobustType:
    """The strictest rung whose check the metadata can enforce."""
    for rung in reversed(chain):
        if not rung.check:
            continue
        if rung.check == "buffer_readable_extent" and not has_extent:
            # no size relation to measure against: the check is vacuous,
            # degrade to plain readability
            continue
        if nullable and rung.check in _NULL_INTOLERANT:
            continue
        return rung
    return chain[0]


def derive_param_plan(param, manpage: Optional[ManPage],
                      derivation=None) -> ParamPlan:
    """Derive one parameter's plan (static, campaign-overridden)."""
    role = manpage.role_of(param.name) if manpage else None
    chain = _chain_for(param.ctype, role.role if role else "")
    base = ParamPlan(
        name=param.name,
        ctype=param.ctype.spelling,
        role=role.role if role else "",
        chain=chain[0].chain,
        source="role" if role else "ctype",
        nullable=role.nullable if role else False,
        size_from=(role.size_from or "") if role else "",
        size_param=(role.size_param or "") if role else "",
        size_mul=(role.size_mul or "") if role else "",
        min_size=role.min_size if role else 0,
    )
    if derivation is not None:
        # campaign verdicts are authoritative for probed parameters and
        # reproduce the hand-tuned documents byte-for-byte: the weakest
        # robust rung, "unsatisfied" (check withheld) when even the
        # strictest rung failed, and no check for unprobed parameters
        pd = derivation.param(param.name)
        if pd is None:
            return replace(base, source="unprobed")
        if pd.robust_type is None:
            return replace(base, chain=pd.chain, robust_type="unsatisfied",
                           source="unsatisfied")
        return replace(
            base,
            chain=pd.chain,
            robust_type=pd.robust_type.name,
            rank=pd.robust_type.rank,
            check=pd.robust_type.check,
            source="campaign",
        )
    has_extent = bool(base.size_param or base.size_from or base.min_size)
    rung = _static_rung(chain, base.nullable, has_extent)
    return replace(base, robust_type=rung.name, rank=rung.rank,
                   check=rung.check)


def derive_check_plan(prototype: Prototype,
                      manpage: Optional[ManPage] = None,
                      derivation=None) -> CheckPlan:
    """Derive the full check plan of one function."""
    return CheckPlan(
        function=prototype.name,
        returns=prototype.return_type.spelling,
        error_return=manpage.error_return if manpage else "",
        variadic=prototype.variadic,
        errnos=tuple(manpage.errnos) if manpage else (),
        params=tuple(
            derive_param_plan(param, manpage, derivation)
            for param in prototype.params
        ),
        probes=derivation.total_probes if derivation else 0,
        failures=derivation.total_failures if derivation else 0,
    )


def derive_check_plans(
    registry: LibcRegistry,
    manpages: Mapping[str, ManPage],
    derivations: Optional[Mapping[str, object]] = None,
) -> Dict[str, CheckPlan]:
    """Plans for every function a registry defines (full coverage)."""
    plans: Dict[str, CheckPlan] = {}
    for function in registry:
        plans[function.name] = derive_check_plan(
            function.prototype,
            manpages.get(function.name),
            (derivations or {}).get(function.name),
        )
    return plans


# ----------------------------------------------------------------------
# lifting hand-tuned declaration entries
# ----------------------------------------------------------------------

def plan_from_decl(decl) -> CheckPlan:
    """Lift a hand-tuned declaration entry into the plan IR.

    Duck-typed over :class:`repro.robust.api.FunctionDecl` (no import —
    the api module imports *this* one) so every legacy consumer of
    ``ParamDecl`` tables funnels through one checker code path.
    """
    return CheckPlan(
        function=decl.name,
        returns=getattr(decl, "returns", ""),
        error_return=getattr(decl, "error_return", ""),
        variadic=getattr(decl, "variadic", False),
        params=tuple(
            ParamPlan(
                name=p.name,
                ctype=p.ctype,
                role=p.role,
                chain=p.chain,
                robust_type=p.robust_type,
                check=p.check,
                source="declared",
                nullable=p.nullable,
                size_from=p.size_from,
                size_param=p.size_param,
                size_mul=p.size_mul,
                min_size=p.min_size,
            )
            for p in decl.params
        ),
        probes=getattr(decl, "probes", 0),
        failures=getattr(decl, "failures", 0),
    )


def as_plan(decl_or_plan) -> CheckPlan:
    """Normalise either IR to a :class:`CheckPlan`."""
    if isinstance(decl_or_plan, CheckPlan):
        return decl_or_plan
    return plan_from_decl(decl_or_plan)


# ----------------------------------------------------------------------
# coverage accounting (CLI + benchmark reporting)
# ----------------------------------------------------------------------

def coverage_report(plans: Mapping[str, CheckPlan]) -> Dict[str, object]:
    """Summary counters for a plan set (the 123/123 headline)."""
    params = [p for plan in plans.values() for p in plan.params]
    by_source: Dict[str, int] = {}
    for param in params:
        by_source[param.source] = by_source.get(param.source, 0) + 1
    return {
        "functions": len(plans),
        "functions_with_checks": sum(
            1 for plan in plans.values() if plan.has_checks
        ),
        "params": len(params),
        "params_with_plans": sum(1 for p in params if p.check),
        "params_by_source": dict(sorted(by_source.items())),
        "relational_params": sum(
            1 for p in params
            if p.check in ("buffer_capacity", "wbuffer_capacity",
                           "buffer_readable_extent", "size_bounded",
                           "format_safe")
        ),
    }


def uncovered(plans: Mapping[str, CheckPlan]) -> List[str]:
    """Functions whose plan carries no runnable check at all.

    Zero-parameter functions and pure-scalar signatures (``int_any`` /
    ``float_any`` chains) legitimately have nothing to check; they still
    count as *covered* — the plan exists and proves there is nothing to
    enforce — but callers auditing coverage may want the list.
    """
    return sorted(
        name for name, plan in plans.items()
        if plan.params and not plan.has_checks
    )
