"""Robust-API documents: the XML declaration files of demo 3.1.

"Our system will create a XML-style declaration file that describes the
prototype of each function in the library."  The document records, per
function, the declared prototype, the per-parameter role metadata mined
from manual pages, and — when a fault-injection campaign has run — the
derived weakest robust argument types.  Round-trips through
``xml.etree`` so downstream tools (wrapper generators on another host,
the collection server) can consume it.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.libc.registry import LibcRegistry
from repro.manpages.model import ManPage
from repro.robust.derivation import FunctionDerivation
from repro.robust.introspect import CheckPlan, ParamPlan, derive_check_plans


@dataclass
class ParamDecl:
    """One parameter's declaration entry."""

    name: str
    ctype: str
    role: str = ""
    robust_type: str = ""
    chain: str = ""
    check: str = ""
    size_from: str = ""
    size_param: str = ""
    size_mul: str = ""
    min_size: int = 0
    nullable: bool = False


@dataclass
class FunctionDecl:
    """One function's declaration entry."""

    name: str
    returns: str
    header: str = ""
    variadic: bool = False
    brief: str = ""
    error_return: str = ""
    params: List[ParamDecl] = field(default_factory=list)
    probes: int = 0
    failures: int = 0

    @property
    def strengthened_params(self) -> List[ParamDecl]:
        return [p for p in self.params if p.robust_type and p.chain]


@dataclass
class RobustAPIDocument:
    """The whole library's declaration document."""

    library: str
    functions: Dict[str, FunctionDecl] = field(default_factory=dict)
    #: introspection-derived check plans, keyed by function — populated
    #: by :meth:`build_introspected` (or parsed back from ``<checks>``
    #: nodes); empty for the legacy derivation-only documents
    plans: Dict[str, CheckPlan] = field(default_factory=dict)

    def plan_for(self, name: str) -> Optional[CheckPlan]:
        """The derived check plan of one function, if this document
        carries plans at all (legacy documents return None)."""
        return self.plans.get(name)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        registry: LibcRegistry,
        manpages: Dict[str, ManPage],
        derivations: Optional[Dict[str, FunctionDerivation]] = None,
    ) -> "RobustAPIDocument":
        """Assemble the document from prototypes, roles and derivations."""
        document = cls(library=registry.library_name)
        for function in registry:
            proto = function.prototype
            manpage = manpages.get(function.name)
            derivation = (derivations or {}).get(function.name)
            decl = FunctionDecl(
                name=function.name,
                returns=proto.return_type.spelling,
                header=proto.header,
                variadic=proto.variadic,
                brief=manpage.brief if manpage else function.summary,
                error_return=manpage.error_return if manpage else "",
                probes=derivation.total_probes if derivation else 0,
                failures=derivation.total_failures if derivation else 0,
            )
            for param in proto.params:
                entry = ParamDecl(name=param.name,
                                  ctype=param.ctype.spelling)
                role = manpage.role_of(param.name) if manpage else None
                if role is not None:
                    entry.role = role.role
                    entry.size_from = role.size_from or ""
                    entry.size_param = role.size_param or ""
                    entry.size_mul = role.size_mul or ""
                    entry.min_size = role.min_size
                    entry.nullable = role.nullable
                if derivation is not None:
                    pd = derivation.param(param.name)
                    if pd is not None:
                        entry.chain = pd.chain
                        if pd.robust_type is not None:
                            entry.robust_type = pd.robust_type.name
                            entry.check = pd.robust_type.check
                        else:
                            entry.robust_type = "unsatisfied"
                decl.params.append(entry)
            document.functions[function.name] = decl
        return document

    @classmethod
    def build_introspected(
        cls,
        registry: LibcRegistry,
        manpages: Dict[str, ManPage],
        derivations: Optional[Dict[str, FunctionDerivation]] = None,
    ) -> "RobustAPIDocument":
        """Assemble the *full-coverage* document.

        Same inputs as :meth:`build`, but every function additionally
        receives an introspection-derived :class:`CheckPlan` — campaign
        verdicts where available, static role/ctype derivation otherwise
        — so wrappers built from this document check all functions, not
        just the probed subset.  Parameters the campaign never reached
        have their declaration entries back-filled from the static plan
        (the ``<param>`` view stays consistent with the ``<checks>``
        view); campaign-derived and unsatisfied entries are untouched.
        """
        document = cls.build(registry, manpages, derivations)
        document.plans = derive_check_plans(registry, manpages, derivations)
        for name, decl in document.functions.items():
            plan = document.plans.get(name)
            if plan is None:
                continue
            for entry in decl.params:
                derived = plan.param(entry.name)
                if derived is None or not derived.check or entry.check:
                    continue
                if entry.robust_type == "unsatisfied":
                    continue
                entry.chain = entry.chain or derived.chain
                entry.robust_type = derived.robust_type
                entry.check = derived.check
        return document

    # ------------------------------------------------------------------
    # XML round trip
    # ------------------------------------------------------------------

    def to_xml(self) -> str:
        """Serialise to the declaration-file XML format."""
        root = ET.Element("library", name=self.library,
                          generator="healers-repro")
        for name in sorted(self.functions):
            decl = self.functions[name]
            fn = ET.SubElement(root, "function", name=decl.name,
                               returns=decl.returns)
            if decl.header:
                fn.set("header", decl.header)
            if decl.variadic:
                fn.set("variadic", "true")
            if decl.brief:
                fn.set("brief", decl.brief)
            if decl.error_return:
                fn.set("error-return", decl.error_return)
            if decl.probes:
                ET.SubElement(fn, "experiments", probes=str(decl.probes),
                              failures=str(decl.failures))
            for param in decl.params:
                node = ET.SubElement(fn, "param", name=param.name,
                                     ctype=param.ctype)
                for attr, key in (
                    (param.role, "role"),
                    (param.robust_type, "robust-type"),
                    (param.chain, "chain"),
                    (param.check, "check"),
                    (param.size_from, "size-from"),
                    (param.size_param, "size-param"),
                    (param.size_mul, "size-mul"),
                ):
                    if attr:
                        node.set(key, attr)
                if param.min_size:
                    node.set("min-size", str(param.min_size))
                if param.nullable:
                    node.set("nullable", "true")
            plan = self.plans.get(name)
            if plan is not None:
                checks = ET.SubElement(fn, "checks")
                if plan.error_return:
                    checks.set("error-return", plan.error_return)
                if plan.errnos:
                    checks.set("errnos", ",".join(plan.errnos))
                if plan.probes:
                    checks.set("probes", str(plan.probes))
                if plan.failures:
                    checks.set("failures", str(plan.failures))
                for entry in plan.params:
                    node = ET.SubElement(checks, "check", param=entry.name,
                                         ctype=entry.ctype,
                                         source=entry.source)
                    for attr, key in (
                        (entry.role, "role"),
                        (entry.chain, "chain"),
                        (entry.robust_type, "robust-type"),
                        (entry.check, "check"),
                        (entry.size_from, "size-from"),
                        (entry.size_param, "size-param"),
                        (entry.size_mul, "size-mul"),
                    ):
                        if attr:
                            node.set(key, attr)
                    if entry.rank >= 0:
                        node.set("rank", str(entry.rank))
                    if entry.min_size:
                        node.set("min-size", str(entry.min_size))
                    if entry.nullable:
                        node.set("nullable", "true")
        ET.indent(root)
        return ET.tostring(root, encoding="unicode", xml_declaration=True)

    @classmethod
    def from_xml(cls, text: str) -> "RobustAPIDocument":
        """Parse a declaration file back into a document."""
        root = ET.fromstring(text)
        if root.tag != "library":
            raise ValueError(f"not a declaration file (root {root.tag!r})")
        document = cls(library=root.get("name", ""))
        for fn in root.findall("function"):
            decl = FunctionDecl(
                name=fn.get("name", ""),
                returns=fn.get("returns", ""),
                header=fn.get("header", ""),
                variadic=fn.get("variadic") == "true",
                brief=fn.get("brief", ""),
                error_return=fn.get("error-return", ""),
            )
            experiments = fn.find("experiments")
            if experiments is not None:
                decl.probes = int(experiments.get("probes", "0"))
                decl.failures = int(experiments.get("failures", "0"))
            for node in fn.findall("param"):
                decl.params.append(
                    ParamDecl(
                        name=node.get("name", ""),
                        ctype=node.get("ctype", ""),
                        role=node.get("role", ""),
                        robust_type=node.get("robust-type", ""),
                        chain=node.get("chain", ""),
                        check=node.get("check", ""),
                        size_from=node.get("size-from", ""),
                        size_param=node.get("size-param", ""),
                        size_mul=node.get("size-mul", ""),
                        min_size=int(node.get("min-size", "0")),
                        nullable=node.get("nullable") == "true",
                    )
                )
            document.functions[decl.name] = decl
            checks = fn.find("checks")
            if checks is not None:
                errnos = checks.get("errnos", "")
                document.plans[decl.name] = CheckPlan(
                    function=decl.name,
                    returns=decl.returns,
                    error_return=checks.get("error-return", ""),
                    variadic=decl.variadic,
                    errnos=tuple(errnos.split(",")) if errnos else (),
                    probes=int(checks.get("probes", "0")),
                    failures=int(checks.get("failures", "0")),
                    params=tuple(
                        ParamPlan(
                            name=node.get("param", ""),
                            ctype=node.get("ctype", ""),
                            role=node.get("role", ""),
                            chain=node.get("chain", ""),
                            robust_type=node.get("robust-type", ""),
                            rank=int(node.get("rank", "-1")),
                            check=node.get("check", ""),
                            source=node.get("source", "declared"),
                            nullable=node.get("nullable") == "true",
                            size_from=node.get("size-from", ""),
                            size_param=node.get("size-param", ""),
                            size_mul=node.get("size-mul", ""),
                            min_size=int(node.get("min-size", "0")),
                        )
                        for node in checks.findall("check")
                    ),
                )
        return document
