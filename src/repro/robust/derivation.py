"""Weakest-robust-type derivation from fault-injection verdicts.

Given a function's probe records, each parameter's robust type is the
lowest rung T of its chain such that *every* test value satisfying T
(``max_rank >= T.rank``) completed without a robustness failure.  Because
satisfaction is upward closed this is exactly the paper's search:
"repeatedly probing the function with a hierarchy of function types until
it finds one that does not result in robustness failures".

A parameter for which even the strictest rung has failures is flagged
``unsatisfied`` — the generated wrapper must block the argument class
outright (or the function needs manual attention, the paper's "some
manual editing may be needed").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ftypes.chains import CHAINS, RobustType
from repro.injection.campaign import CampaignResult, FunctionReport, ProbeRecord
from repro.libc.registry import LibcRegistry
from repro.manpages.model import ManPage


@dataclass
class RankVerdict:
    """Probe statistics for one rung of one parameter's chain."""

    rank: int
    type_name: str
    satisfying_probes: int
    failures: int

    @property
    def robust(self) -> bool:
        return self.failures == 0 and self.satisfying_probes > 0


@dataclass
class ParamDerivation:
    """The derived robust type of one parameter."""

    param: str
    chain: str
    declared: str
    robust_type: Optional[RobustType]
    verdicts: List[RankVerdict] = field(default_factory=list)

    @property
    def unsatisfied(self) -> bool:
        """True when even the strictest type had failures."""
        return self.robust_type is None

    @property
    def strengthened(self) -> bool:
        """True when fault injection strengthened the declared type."""
        return self.robust_type is not None and self.robust_type.rank > 0

    def describe(self) -> str:
        if self.robust_type is None:
            return f"{self.param}: UNSATISFIED (all {self.chain} types fail)"
        return (
            f"{self.param}: {self.robust_type.name} "
            f"(rank {self.robust_type.rank} of {self.chain})"
        )


@dataclass
class FunctionDerivation:
    """Derived robust API of one function."""

    function: str
    params: List[ParamDerivation] = field(default_factory=list)
    total_probes: int = 0
    total_failures: int = 0

    def param(self, name: str) -> Optional[ParamDerivation]:
        for derivation in self.params:
            if derivation.param == name:
                return derivation
        return None

    @property
    def any_strengthened(self) -> bool:
        return any(p.strengthened for p in self.params)


def derive_parameter(records: List[ProbeRecord], param: str,
                     chain_id: str, declared: str) -> ParamDerivation:
    """Run the weakest-robust-type search for one parameter."""
    chain = CHAINS[chain_id]
    verdicts: List[RankVerdict] = []
    robust: Optional[RobustType] = None
    for rung in chain:
        satisfying = [r for r in records if r.probe.max_rank >= rung.rank]
        failures = sum(1 for r in satisfying if r.failed)
        verdicts.append(
            RankVerdict(
                rank=rung.rank,
                type_name=rung.name,
                satisfying_probes=len(satisfying),
                failures=failures,
            )
        )
        if robust is None and satisfying and failures == 0:
            robust = rung
    return ParamDerivation(
        param=param,
        chain=chain_id,
        declared=declared,
        robust_type=robust,
        verdicts=verdicts,
    )


def derive_function(report: FunctionReport, registry: LibcRegistry,
                    manpage: Optional[ManPage]) -> FunctionDerivation:
    """Derive the robust API of one probed function.

    Raises :class:`KeyError` when the registry does not define the
    function; :func:`derive_api` skips such reports instead (see below).
    """
    function = registry[report.function]
    derivation = FunctionDerivation(
        function=report.function,
        total_probes=report.total_probes,
        total_failures=len(report.failures),
    )
    for param in function.prototype.params:
        records = report.records_for_param(param.name)
        if not records:
            continue
        chain_id = records[0].probe.chain
        derivation.params.append(
            derive_parameter(records, param.name, chain_id,
                             param.ctype.spelling)
        )
    return derivation


def derive_api(result: CampaignResult, registry: LibcRegistry,
               manpages: Dict[str, ManPage]) -> Dict[str, FunctionDerivation]:
    """Derive robust APIs for every probed function in a campaign.

    Campaign results may be *merged* from cached and fresh verdicts, or
    loaded from a store written against an earlier library release; a
    report for a function the current registry no longer defines cannot
    be derived (no prototype to strengthen) and is skipped rather than
    aborting the whole derivation.  Verdict provenance is irrelevant:
    cached and freshly-executed records carry the same fields and are
    treated identically.
    """
    derived: Dict[str, FunctionDerivation] = {}
    for name, report in sorted(result.reports.items()):
        if name not in registry:
            continue
        derived[name] = derive_function(report, registry, manpages.get(name))
    return derived


def derive_plans(result: CampaignResult, registry: LibcRegistry,
                 manpages: Dict[str, ManPage]):
    """Campaign verdicts → full-coverage check plans, in one step.

    Every registry function gets a plan: campaign-derived weakest robust
    types where the result has verdicts, static role/ctype introspection
    everywhere else.  This is how campaign results *strengthen* the
    derived plans — a probed function's plan carries experimentally
    confirmed types (and ``unsatisfied`` markers) instead of the static
    strictest-effective guess.
    """
    from repro.robust.introspect import derive_check_plans

    return derive_check_plans(registry, manpages,
                              derive_api(result, registry, manpages))
