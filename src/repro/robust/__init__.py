"""Robust-API derivation, declaration documents and check synthesis."""

from repro.robust.api import FunctionDecl, ParamDecl, RobustAPIDocument
from repro.robust.checks import (
    ArgumentChecker,
    CheckViolation,
    analyse_format,
    readable_extent,
    terminated_length,
    writable_extent,
)
from repro.robust.derivation import (
    FunctionDerivation,
    ParamDerivation,
    RankVerdict,
    derive_api,
    derive_function,
    derive_parameter,
)

__all__ = [
    "ArgumentChecker",
    "CheckViolation",
    "FunctionDecl",
    "FunctionDerivation",
    "ParamDecl",
    "ParamDerivation",
    "RankVerdict",
    "RobustAPIDocument",
    "analyse_format",
    "derive_api",
    "derive_function",
    "derive_parameter",
    "readable_extent",
    "terminated_length",
    "writable_extent",
]
