"""Robust-API derivation, declaration documents and check synthesis."""

from repro.robust.api import FunctionDecl, ParamDecl, RobustAPIDocument
from repro.robust.checks import (
    ArgumentChecker,
    CheckViolation,
    analyse_format,
    readable_extent,
    terminated_length,
    writable_extent,
)
from repro.robust.derivation import (
    FunctionDerivation,
    ParamDerivation,
    RankVerdict,
    derive_api,
    derive_function,
    derive_parameter,
    derive_plans,
)
from repro.robust.introspect import (
    CheckPlan,
    ParamPlan,
    as_plan,
    coverage_report,
    derive_check_plan,
    derive_check_plans,
    plan_from_decl,
    uncovered,
)

__all__ = [
    "ArgumentChecker",
    "CheckPlan",
    "CheckViolation",
    "FunctionDecl",
    "FunctionDerivation",
    "ParamDecl",
    "ParamDerivation",
    "ParamPlan",
    "RankVerdict",
    "RobustAPIDocument",
    "analyse_format",
    "as_plan",
    "coverage_report",
    "derive_api",
    "derive_check_plan",
    "derive_check_plans",
    "derive_function",
    "derive_parameter",
    "derive_plans",
    "plan_from_decl",
    "readable_extent",
    "terminated_length",
    "uncovered",
    "writable_extent",
]
