"""Profiling wrapper output: XML documents and Fig. 5-style reports."""

from repro.profiling.report import (
    render_call_frequency,
    render_containment,
    render_errno_distribution,
    render_full_report,
    render_time_shares,
)
from repro.profiling.xmllog import FunctionProfile, ProfileDocument

__all__ = [
    "FunctionProfile",
    "ProfileDocument",
    "render_call_frequency",
    "render_containment",
    "render_errno_distribution",
    "render_full_report",
    "render_time_shares",
]
