"""Self-describing XML profile documents.

"Just before the application terminates, the collection code is called to
send the gathered information to a central server.  Since different types
of wrappers can be used in a distributed environment, the gathered
information sent to the server is in form of a self-describing XML
document.  The server can extract from the document which functions were
wrapped and what kind of information was collected."

A :class:`ProfileDocument` renders a wrapper library's
:class:`~repro.wrappers.WrapperState` and round-trips through XML, so
the collection server can reconstruct every counter without knowing in
advance which wrapper type produced it.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.runtime.process import Errno
from repro.wrappers.state import SecurityEvent, ViolationRecord, WrapperState


@dataclass
class FunctionProfile:
    """Collected data for one wrapped function."""

    name: str
    calls: int = 0
    exectime_ns: int = 0
    errnos: Counter = field(default_factory=Counter)


@dataclass
class ProfileDocument:
    """One application run's collected wrapper data."""

    application: str
    wrapper_type: str
    library: str = "libc.so.6"
    functions: Dict[str, FunctionProfile] = field(default_factory=dict)
    global_errnos: Counter = field(default_factory=Counter)
    violations: List[ViolationRecord] = field(default_factory=list)
    security_events: List[SecurityEvent] = field(default_factory=list)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_state(cls, state: WrapperState, application: str,
                   wrapper_type: str,
                   library: str = "libc.so.6") -> "ProfileDocument":
        """Snapshot a wrapper library's counters at process termination."""
        document = cls(application=application, wrapper_type=wrapper_type,
                       library=library)
        names = (set(state.calls) | set(state.exectime_ns)
                 | set(state.func_errnos))
        for name in sorted(names):
            document.functions[name] = FunctionProfile(
                name=name,
                calls=state.calls.get(name, 0),
                exectime_ns=state.exectime_ns.get(name, 0),
                errnos=Counter(state.errnos_for(name)),
            )
        document.global_errnos = Counter(state.global_errnos)
        document.violations = list(state.violations)
        document.security_events = list(state.security_events)
        return document

    @classmethod
    def from_events(cls, events, application: str, wrapper_type: str,
                    library: str = "libc.so.6") -> "ProfileDocument":
        """Build a document straight from a telemetry event stream.

        Replays the events through a
        :class:`~repro.telemetry.StateSink`, so the rendered XML is
        identical to a live wrapper run emitting the same events.
        """
        from repro.telemetry import StateSink

        sink = StateSink()
        sink.handle_batch(list(events))
        return cls.from_state(sink.state, application=application,
                              wrapper_type=wrapper_type, library=library)

    # ------------------------------------------------------------------
    # derived views (what the Fig. 5 report shows)
    # ------------------------------------------------------------------

    @property
    def total_calls(self) -> int:
        return sum(f.calls for f in self.functions.values())

    @property
    def total_exectime_ns(self) -> int:
        return sum(f.exectime_ns for f in self.functions.values())

    def call_frequencies(self) -> List[tuple]:
        """(function, calls, share) sorted by descending call count."""
        total = self.total_calls or 1
        rows = [
            (f.name, f.calls, f.calls / total)
            for f in self.functions.values() if f.calls
        ]
        return sorted(rows, key=lambda row: (-row[1], row[0]))

    def time_shares(self) -> List[tuple]:
        """(function, exectime_ns, share) sorted by descending time."""
        total = self.total_exectime_ns or 1
        rows = [
            (f.name, f.exectime_ns, f.exectime_ns / total)
            for f in self.functions.values() if f.exectime_ns
        ]
        return sorted(rows, key=lambda row: (-row[1], row[0]))

    def errno_distribution(self) -> List[tuple]:
        """(errno value, symbolic name, count) sorted by count."""
        return sorted(
            ((value, Errno.name(value), count)
             for value, count in self.global_errnos.items()),
            key=lambda row: (-row[2], row[0]),
        )

    def collected_kinds(self) -> List[str]:
        """What kinds of information this document carries."""
        kinds = []
        if any(f.calls for f in self.functions.values()):
            kinds.append("call-counts")
        if any(f.exectime_ns for f in self.functions.values()):
            kinds.append("execution-time")
        if self.global_errnos or any(
            f.errnos for f in self.functions.values()
        ):
            kinds.append("errno-distribution")
        if self.violations:
            kinds.append("robustness-violations")
        if self.security_events:
            kinds.append("security-events")
        return kinds

    # ------------------------------------------------------------------
    # XML round trip
    # ------------------------------------------------------------------

    def to_xml(self) -> str:
        root = ET.Element(
            "healers-profile",
            application=self.application,
            wrapper=self.wrapper_type,
            library=self.library,
        )
        ET.SubElement(
            root, "summary",
            {"total-calls": str(self.total_calls),
             "total-exectime-ns": str(self.total_exectime_ns),
             "collected": " ".join(self.collected_kinds())},
        )
        for name in sorted(self.functions):
            profile = self.functions[name]
            fn = ET.SubElement(
                root, "function",
                {"name": name,
                 "calls": str(profile.calls),
                 "exectime-ns": str(profile.exectime_ns)},
            )
            for value, count in sorted(profile.errnos.items()):
                ET.SubElement(
                    fn, "errno",
                    {"value": str(value), "name": Errno.name(value),
                     "count": str(count)},
                )
        if self.global_errnos:
            dist = ET.SubElement(root, "errno-distribution")
            for value, count in sorted(self.global_errnos.items()):
                ET.SubElement(
                    dist, "errno",
                    {"value": str(value), "name": Errno.name(value),
                     "count": str(count)},
                )
        if self.violations:
            block = ET.SubElement(root, "violations")
            for violation in self.violations:
                ET.SubElement(
                    block, "violation",
                    {"function": violation.function,
                     "param": violation.param,
                     "check": violation.check,
                     "detail": violation.detail},
                )
        if self.security_events:
            block = ET.SubElement(root, "security-events")
            for event in self.security_events:
                ET.SubElement(
                    block, "event",
                    {"function": event.function,
                     "reason": event.reason,
                     "terminated": "true" if event.terminated else "false"},
                )
        ET.indent(root)
        return ET.tostring(root, encoding="unicode",
                           xml_declaration=True)

    @classmethod
    def from_xml(cls, text: str) -> "ProfileDocument":
        root = ET.fromstring(text)
        if root.tag != "healers-profile":
            raise ValueError(f"not a profile document (root {root.tag!r})")
        document = cls(
            application=root.get("application", ""),
            wrapper_type=root.get("wrapper", ""),
            library=root.get("library", ""),
        )
        for fn in root.findall("function"):
            profile = FunctionProfile(
                name=fn.get("name", ""),
                calls=int(fn.get("calls", "0")),
                exectime_ns=int(fn.get("exectime-ns", "0")),
            )
            for node in fn.findall("errno"):
                profile.errnos[int(node.get("value", "0"))] = int(
                    node.get("count", "0")
                )
            document.functions[profile.name] = profile
        dist = root.find("errno-distribution")
        if dist is not None:
            for node in dist.findall("errno"):
                document.global_errnos[int(node.get("value", "0"))] = int(
                    node.get("count", "0")
                )
        block = root.find("violations")
        if block is not None:
            for node in block.findall("violation"):
                document.violations.append(
                    ViolationRecord(
                        function=node.get("function", ""),
                        param=node.get("param", ""),
                        check=node.get("check", ""),
                        detail=node.get("detail", ""),
                    )
                )
        block = root.find("security-events")
        if block is not None:
            for node in block.findall("event"):
                document.security_events.append(
                    SecurityEvent(
                        function=node.get("function", ""),
                        reason=node.get("reason", ""),
                        terminated=node.get("terminated") == "true",
                    )
                )
        return document
