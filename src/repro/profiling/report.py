"""Text rendering of profile documents (the Fig. 5 graphics, in ASCII).

The demo shows "the frequency of function calls in this program, the
percentage of execution time in each function, the distribution of
function errors, the causes of such errors (classified by errnos)".
These renderers produce the same four views as aligned tables with bar
charts, suitable for terminals and for the EXPERIMENTS.md record.
"""

from __future__ import annotations

from typing import List

from repro.profiling.xmllog import ProfileDocument

BAR_WIDTH = 32


def _bar(share: float, width: int = BAR_WIDTH) -> str:
    filled = round(share * width)
    return "#" * filled + "." * (width - filled)


def render_call_frequency(document: ProfileDocument,
                          limit: int = 20) -> str:
    """Call-count table with share bars."""
    lines = [f"Call frequency — {document.application} "
             f"({document.total_calls} calls total)"]
    for name, calls, share in document.call_frequencies()[:limit]:
        lines.append(
            f"  {name:<16} {calls:>8}  {share:>6.1%}  {_bar(share)}"
        )
    if not document.call_frequencies():
        lines.append("  (no calls recorded)")
    return "\n".join(lines)


def render_time_shares(document: ProfileDocument, limit: int = 20) -> str:
    """Execution-time table with share bars."""
    total_ms = document.total_exectime_ns / 1e6
    lines = [f"Execution time — {document.application} "
             f"({total_ms:.3f} ms in wrapped functions)"]
    for name, nanos, share in document.time_shares()[:limit]:
        lines.append(
            f"  {name:<16} {nanos / 1e6:>9.3f}ms {share:>6.1%}  {_bar(share)}"
        )
    if not document.time_shares():
        lines.append("  (no execution time recorded)")
    return "\n".join(lines)


def render_errno_distribution(document: ProfileDocument) -> str:
    """Errno distribution (the causes of function errors)."""
    rows = document.errno_distribution()
    total = sum(count for _, _, count in rows) or 1
    lines = ["Error causes (by errno)"]
    for value, name, count in rows:
        share = count / total
        lines.append(
            f"  {name:<16} ({value:>3}) {count:>6}  {_bar(share)}"
        )
    if not rows:
        lines.append("  (no errors recorded)")
    return "\n".join(lines)


def render_containment(document: ProfileDocument, limit: int = 10) -> str:
    """Robustness violations and security events, if any were contained.

    Violations are summarised per (function, check) with counts — the
    same grouping the robust-API derivation works from — then the first
    ``limit`` individual records follow with their triggered check, and
    truncation is always explicit.
    """
    lines: List[str] = []
    if document.violations:
        lines.append(f"Contained robustness violations "
                     f"({len(document.violations)})")
        grouped: dict = {}
        for violation in document.violations:
            key = (violation.function, violation.check)
            grouped[key] = grouped.get(key, 0) + 1
        for (function, check), count in sorted(
            grouped.items(), key=lambda item: (-item[1], item[0])
        ):
            lines.append(f"  {count:>4}x {function} [{check}]")
        for violation in document.violations[:limit]:
            lines.append(
                f"  {violation.function}({violation.param}) "
                f"[{violation.check}]: {violation.detail}"
            )
        remaining = len(document.violations) - limit
        if remaining > 0:
            lines.append(f"  … and {remaining} more violations")
    if document.security_events:
        terminated = sum(1 for e in document.security_events
                         if e.terminated)
        lines.append(f"Security events ({len(document.security_events)}, "
                     f"{terminated} terminated the program)")
        for event in document.security_events[:limit]:
            action = "terminated" if event.terminated else "blocked"
            lines.append(f"  {event.function}: {event.reason} [{action}]")
        remaining = len(document.security_events) - limit
        if remaining > 0:
            lines.append(f"  … and {remaining} more security events")
    if not lines:
        lines.append("No violations or security events.")
    return "\n".join(lines)


def render_full_report(document: ProfileDocument) -> str:
    """The complete Fig. 5-style report."""
    sections = [
        f"HEALERS profile report — application {document.application!r}, "
        f"wrapper {document.wrapper_type!r}",
        f"collected: {', '.join(document.collected_kinds()) or 'nothing'}",
        "",
        render_call_frequency(document),
        "",
        render_time_shares(document),
        "",
        render_errno_distribution(document),
        "",
        render_containment(document),
    ]
    return "\n".join(sections)
