"""The retry micro-generator: bounded re-execution of transient failures.

A call that failed with a *transient* errno (ENOMEM under allocation
pressure, EINTR) is re-executed up to ``max_retries`` times, consuming a
linearly growing slice of simulated fuel between attempts — the
deterministic stand-in for wall-clock backoff, so a retried run's fuel
accounting (and hence its HANG classification boundary) is reproducible.

The generator is inert unless a :class:`~repro.recovery.RecoveryPolicy`
maps ``transient_errno`` to ``retry`` for the function, so presets that
include it pay nothing when recovery is not configured.

Backend split (mirroring the other hot-path generators):

* compiled — contributes a :attr:`~repro.wrappers.microgen.RuntimeHooks.
  wrap_call` transformer; the fast path wraps the one-shot-resolved
  target itself, so the direct-tail-call and frame-free guard forms
  survive and the retry loop lives *inside* the intercepted call;
* interpreted — a postfix hook re-invoking the call through its own
  one-shot resolver, behaviourally identical (reference path for the
  backend differentials).
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.telemetry import RecoveryEvent
from repro.wrappers.generators import error_return_value
from repro.wrappers.microgen import (
    CallFrame,
    MicroGenerator,
    RuntimeHooks,
    WrapperUnit,
)


class RetryGen(MicroGenerator):
    """Recovery feature: bounded retry with deterministic fuel backoff."""

    name = "retry"

    def __init__(self, policy=None):
        #: a SecurityPolicy carrying ``.recovery``, or a RecoveryPolicy
        #: itself; read at hook-build time so deployment files installed
        #: after registry construction still take effect
        self.policy = policy

    def _recovery(self):
        policy = self.policy
        if policy is None:
            return None
        if hasattr(policy, "action_for"):
            return policy
        return getattr(policy, "recovery", None)

    def runtime_hooks(self, unit: WrapperUnit) -> RuntimeHooks:
        recovery = self._recovery()
        if recovery is None or recovery.retries_for(unit.name) == 0:
            return RuntimeHooks(generator=self.name)
        name = unit.name
        emit = unit.bus.emit
        max_retries = recovery.max_retries
        backoff = recovery.retry_backoff_fuel
        transient = frozenset(recovery.transient_errnos)
        error_value = error_return_value(
            unit.prototype, unit.decl.error_return if unit.decl else ""
        )

        if unit.fastpath:
            def wrap_call(target: Callable) -> Callable:
                def retrying(process, *args):
                    # errno is sticky in C: a stale ENOMEM must not make
                    # a *successful* zero return look like a failure.
                    # Clear it for the call, restore it if untouched.
                    saved = process.errno
                    process.errno = 0
                    ret = target(process, *args)
                    if ret == error_value and process.errno in transient:
                        attempts = 0
                        while attempts < max_retries:
                            attempts += 1
                            process.consume(backoff * attempts)
                            process.errno = 0
                            ret = target(process, *args)
                            if (ret != error_value
                                    or process.errno not in transient):
                                break
                        emit(RecoveryEvent(
                            function=name, violation="transient_errno",
                            action="retry", attempts=attempts,
                            recovered=ret != error_value,
                        ))
                    if process.errno == 0:
                        process.errno = saved
                    return ret
                return retrying

            return RuntimeHooks(generator=self.name, wrap_call=wrap_call)

        # interpreted reference path: a prefix saves-and-clears errno, a
        # postfix re-invokes the call through an own one-shot resolver
        # (postfixes run innermost-first, so it sees the ret the caller
        # generator just produced) — behaviourally identical to the
        # fast path's wrap_call form
        resolve_next = unit.resolve_next
        lock = threading.Lock()
        cache: list = [None]

        def acquire() -> Callable:
            target = cache[0]
            if target is None:
                with lock:
                    target = cache[0]
                    if target is None:
                        target = resolve_next()
                        target = getattr(target, "impl", target)
                        cache[0] = target
            return target

        def retry_pre(frame: CallFrame) -> None:
            if frame.skip_call:
                return
            proc = frame.process
            frame.scratch["retry_errno"] = proc.errno
            proc.errno = 0

        def retry_post(frame: CallFrame) -> None:
            saved = frame.scratch.pop("retry_errno", None)
            if saved is None:
                return  # the call was contained before our prefix ran
            proc = frame.process
            if frame.ret == error_value and proc.errno in transient:
                attempts = 0
                target = acquire()
                while attempts < max_retries:
                    attempts += 1
                    proc.consume(backoff * attempts)
                    proc.errno = 0
                    frame.ret = target(proc, *frame.all_args)
                    if (frame.ret != error_value
                            or proc.errno not in transient):
                        break
                emit(RecoveryEvent(
                    function=name, violation="transient_errno",
                    action="retry", attempts=attempts,
                    recovered=frame.ret != error_value,
                ))
            if proc.errno == 0:
                proc.errno = saved

        return RuntimeHooks(generator=self.name, prefix=retry_pre,
                            postfix=retry_post, uses_scratch=True)
