"""The graceful-degradation ladder's circuit breaker.

One :class:`CircuitBreaker` guards one (app, preset) serving pair.  It
watches per-request outcomes through a sliding window and moves the
service along a ladder of *rungs*, least to most degraded::

    fused -> table -> interpreted -> shed

Stepping **down** trades throughput for checking: the fused lanes
memoize verdicts and batch fuel, which is exactly the state you stop
trusting while faults are landing — ``table`` disables trace replay,
``interpreted`` bypasses the fused image entirely (per-call dynamic
dispatch through the wrapped PLT), and ``shed`` stops admitting
requests except for periodic probes.  Stepping **up** requires a clean
streak, so a service never flaps out of shed on a single lucky probe.

Everything is request-count driven — no wall clock — so a breaker
trace is byte-reproducible from the storm seed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

#: the ladder, least to most degraded
RUNGS = ("fused", "table", "interpreted", "shed")

#: rung -> FusedImage deopt level (shed probes run fully deoptimized)
DEOPT_LEVELS = {"fused": 0, "table": 1, "interpreted": 2, "shed": 2}


@dataclass(frozen=True)
class BreakerConfig:
    """Knobs for one breaker; all counts are requests, not seconds."""

    #: sliding window of recent admitted requests
    window: int = 16
    #: bad outcomes inside the window that trip one rung down
    trip_threshold: int = 4
    #: consecutive good outcomes that earn one rung back up
    recovery_streak: int = 8
    #: on the shed rung, admit one probe request per this many arrivals
    probe_interval: int = 4

    def __post_init__(self) -> None:
        if self.window < 1 or self.trip_threshold < 1:
            raise ValueError("window and trip_threshold must be >= 1")
        if self.trip_threshold > self.window:
            raise ValueError("trip_threshold cannot exceed the window")
        if self.recovery_streak < 1 or self.probe_interval < 1:
            raise ValueError(
                "recovery_streak and probe_interval must be >= 1")


@dataclass(frozen=True)
class RungTransition:
    """One recorded ladder move, with the request that caused it."""

    request_index: int
    rung_from: str
    rung_to: str
    reason: str


class CircuitBreaker:
    """Sliding-window ladder state for one (app, preset) pair."""

    def __init__(self, app: str, preset: str,
                 config: Optional[BreakerConfig] = None):
        self.app = app
        self.preset = preset
        self.config = config or BreakerConfig()
        self._rung = 0
        self._window: Deque[bool] = deque(maxlen=self.config.window)
        self._streak = 0
        self._arrivals_while_shed = 0
        #: every ladder move, in order
        self.transitions: List[RungTransition] = []

    # ------------------------------------------------------------------

    @property
    def rung(self) -> str:
        return RUNGS[self._rung]

    @property
    def deopt_level(self) -> int:
        return DEOPT_LEVELS[self.rung]

    @property
    def shedding(self) -> bool:
        return self._rung == len(RUNGS) - 1

    def admit(self) -> bool:
        """Admission decision for one arriving request.

        Below the shed rung everything is admitted.  On the shed rung,
        one probe per :attr:`BreakerConfig.probe_interval` arrivals is
        let through so the breaker can observe whether the storm has
        passed; everything else is rejected before any wrapped call
        runs.
        """
        if not self.shedding:
            return True
        count = self._arrivals_while_shed
        self._arrivals_while_shed += 1
        return count % self.config.probe_interval == 0

    def observe(self, request_index: int, bad: bool,
                reason: str = "") -> Optional[RungTransition]:
        """Feed one *admitted* request's outcome; returns any move made."""
        self._window.append(bad)
        if bad:
            self._streak = 0
            if sum(self._window) >= self.config.trip_threshold:
                if not self.shedding:
                    return self._step(request_index, +1,
                                      reason or "window tripped")
                self._window.clear()
            if self.shedding:
                # a bad probe keeps the service shedding; restart the
                # probe cadence so the next probe is a full interval out
                self._arrivals_while_shed = 1
            return None
        self._streak += 1
        if self._streak >= self.config.recovery_streak and self._rung > 0:
            return self._step(request_index, -1, reason or "clean streak")
        return None

    def _step(self, request_index: int, direction: int,
              reason: str) -> RungTransition:
        old = self.rung
        self._rung = min(max(self._rung + direction, 0), len(RUNGS) - 1)
        self._window.clear()
        self._streak = 0
        if self.shedding:
            self._arrivals_while_shed = 0
        transition = RungTransition(
            request_index=request_index, rung_from=old,
            rung_to=self.rung, reason=reason,
        )
        self.transitions.append(transition)
        return transition

    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "app": self.app,
            "preset": self.preset,
            "rung": self.rung,
            "transitions": [
                {"request_index": t.request_index, "from": t.rung_from,
                 "to": t.rung_to, "reason": t.reason}
                for t in self.transitions
            ],
        }
