"""Self-healing recovery policies for detected violations.

Where the wrappers historically had one response per detector (contain
or abort), this package makes the response a per-function,
per-violation-kind *policy*: contain, repair (heap self-healing via
quarantine + shadow-header rewrite), retry (bounded re-execution of
transient failures), or escalate (abort).  Selected through
:class:`~repro.security.policy.SecurityPolicy` or the ``<recovery>``
deployment-file element; every decision emits a
:class:`~repro.telemetry.RecoveryEvent`.
"""

from repro.recovery.breaker import (
    DEOPT_LEVELS,
    RUNGS,
    BreakerConfig,
    CircuitBreaker,
    RungTransition,
)
from repro.recovery.policy import (
    ACTIONS,
    DEFAULT_TRANSIENT_ERRNOS,
    KINDS,
    REPAIRABLE_KINDS,
    RETRYABLE_KINDS,
    RecoveryPolicy,
    degrading_policy,
    escalating_policy,
    self_healing_policy,
)
from repro.recovery.retry import RetryGen

__all__ = [
    "ACTIONS",
    "BreakerConfig",
    "CircuitBreaker",
    "DEFAULT_TRANSIENT_ERRNOS",
    "DEOPT_LEVELS",
    "KINDS",
    "REPAIRABLE_KINDS",
    "RETRYABLE_KINDS",
    "RUNGS",
    "RecoveryPolicy",
    "RetryGen",
    "RungTransition",
    "degrading_policy",
    "escalating_policy",
    "self_healing_policy",
]
