"""Per-function, per-violation-kind recovery policies.

HEALERS' premise is that a wrapped application should *survive* faults —
"return an error code instead of crashing" — yet detection alone leaves
one terminal choice: abort.  A :class:`RecoveryPolicy` makes the response
a policy decision, selectable per violation kind and overridable per
function:

* ``contain``  — suppress the call, report the documented error return
  with errno set (the wrappers' historical behaviour);
* ``repair``   — heap self-healing: quarantine the corrupted allocation
  and rewrite headers/canaries from the allocator's shadow metadata
  (:meth:`~repro.memory.heap.HeapAllocator.repair`), then let the call
  proceed against the healed heap;
* ``retry``    — re-execute the intercepted call with bounded attempts
  and deterministic fuel backoff when it failed with a transient errno
  (ENOMEM, EINTR);
* ``degrade``  — contain the call *and* signal the serving layer's
  graceful-degradation ladder (:class:`~repro.recovery.breaker
  .CircuitBreaker`) through the process's ``degrade_hook``, so repeated
  violations step the service onto a more conservative rung instead of
  either crashing or silently absorbing an active attack;
* ``escalate`` — terminate the protected program (the security wrapper's
  paper behaviour, :class:`~repro.errors.SecurityViolation`).

Not every action is meaningful for every violation kind: ``repair`` only
makes sense where there is a heap to heal, ``retry`` only for transient
errnos.  Nonsensical selections are *normalised to contain* rather than
rejected, so a single coarse policy ("repair everything you can") stays
expressible.

The module stays import-light (dataclasses + ElementTree only) because
:mod:`repro.core.config` embeds the policy in deployment files.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, Tuple

#: the recovery actions, least to most drastic (degrade contains the
#: call like contain, then signals the serving ladder)
ACTIONS = ("contain", "repair", "retry", "degrade", "escalate")

#: the violation taxonomy the wrappers report
KINDS = (
    "heap_corruption",   # clobbered chunk header found by verification
    "canary",            # clobbered heap canary
    "bounds",            # write past the destination's recorded capacity
    "format",            # %n (or unreadable) format string
    "unsafe_gets",       # gets() with an unbounded destination
    "invalid_free",      # free of a pointer that is not a live allocation
    "argcheck",          # robust-API argument check refusal
    "transient_errno",   # call failed with a transient errno
)

#: kinds a ``repair`` action can actually heal (there is heap metadata
#: to rewrite); elsewhere repair normalises to contain
REPAIRABLE_KINDS = frozenset({"heap_corruption", "canary"})

#: the only kind a ``retry`` action applies to; elsewhere it normalises
#: to contain (re-executing a call the checker just refused would refuse
#: again deterministically)
RETRYABLE_KINDS = frozenset({"transient_errno"})

#: errnos worth retrying: ENOMEM (12) — allocation pressure may clear —
#: and EINTR (4) — the canonical "try again" errno
DEFAULT_TRANSIENT_ERRNOS: Tuple[int, ...] = (12, 4)


@dataclass
class RecoveryPolicy:
    """Violation kind → action mapping with per-function overrides."""

    #: kind -> action for every function without an override
    actions: Dict[str, str] = field(default_factory=dict)
    #: function name -> (kind -> action); wins over :attr:`actions`
    function_actions: Dict[str, Dict[str, str]] = field(
        default_factory=dict
    )
    #: action for kinds absent from both maps
    default_action: str = "contain"
    #: bounded re-execution attempts for the retry action
    max_retries: int = 3
    #: simulated-fuel units consumed before attempt *n* (times n), the
    #: deterministic stand-in for wall-clock backoff
    retry_backoff_fuel: int = 16
    #: errnos the retry action treats as transient
    transient_errnos: Tuple[int, ...] = DEFAULT_TRANSIENT_ERRNOS

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        for kind, action in self.actions.items():
            _check_pair(kind, action, "policy")
        for function, overrides in self.function_actions.items():
            for kind, action in overrides.items():
                _check_pair(kind, action, f"function {function!r}")
        if self.default_action not in ACTIONS:
            raise ValueError(
                f"unknown recovery action {self.default_action!r}; "
                f"known: {', '.join(ACTIONS)}"
            )
        if self.max_retries < 1:
            raise ValueError(
                f"max_retries must be >= 1, got {self.max_retries}"
            )
        if self.retry_backoff_fuel < 0:
            raise ValueError(
                f"retry_backoff_fuel must be >= 0, "
                f"got {self.retry_backoff_fuel}"
            )

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------

    def action_for(self, function: str, kind: str) -> str:
        """The *normalised* action for one (function, violation) pair.

        Selection order: per-function override, then the kind map, then
        :attr:`default_action`.  Actions that cannot apply to the kind
        (repair without heap metadata, retry of a deterministic refusal)
        degrade to ``contain``.
        """
        overrides = self.function_actions.get(function)
        action = None
        if overrides is not None:
            action = overrides.get(kind)
        if action is None:
            action = self.actions.get(kind, self.default_action)
        if action == "repair" and kind not in REPAIRABLE_KINDS:
            return "contain"
        if action == "retry" and kind not in RETRYABLE_KINDS:
            return "contain"
        return action

    def retries_for(self, function: str) -> int:
        """Retry budget when the retry action applies to ``function``."""
        if self.action_for(function, "transient_errno") != "retry":
            return 0
        return self.max_retries

    # ------------------------------------------------------------------
    # XML round trip (a <recovery> element of the deployment file)
    # ------------------------------------------------------------------

    @classmethod
    def from_node(cls, node: ET.Element) -> "RecoveryPolicy":
        """Parse::

            <recovery default="contain" max-retries="3" backoff-fuel="16"
                      transient-errnos="12,4">
              <on kind="heap_corruption" action="repair"/>
              <function name="malloc">
                <on kind="transient_errno" action="retry"/>
              </function>
            </recovery>
        """
        actions = {
            on.get("kind", ""): on.get("action", "")
            for on in node.findall("on")
        }
        function_actions: Dict[str, Dict[str, str]] = {}
        for fnode in node.findall("function"):
            name = fnode.get("name", "")
            if not name:
                raise ValueError("<function> requires a name attribute")
            function_actions[name] = {
                on.get("kind", ""): on.get("action", "")
                for on in fnode.findall("on")
            }
        errnos = tuple(
            int(text) for text in
            node.get("transient-errnos", "").split(",") if text.strip()
        ) or DEFAULT_TRANSIENT_ERRNOS
        return cls(
            actions=actions,
            function_actions=function_actions,
            default_action=node.get("default", "contain"),
            max_retries=int(node.get("max-retries", "3")),
            retry_backoff_fuel=int(node.get("backoff-fuel", "16")),
            transient_errnos=errnos,
        )

    def to_node(self, parent: ET.Element) -> ET.Element:
        node = ET.SubElement(parent, "recovery",
                             default=self.default_action)
        if self.max_retries != 3:
            node.set("max-retries", str(self.max_retries))
        if self.retry_backoff_fuel != 16:
            node.set("backoff-fuel", str(self.retry_backoff_fuel))
        if self.transient_errnos != DEFAULT_TRANSIENT_ERRNOS:
            node.set("transient-errnos",
                     ",".join(str(e) for e in self.transient_errnos))
        for kind in sorted(self.actions):
            ET.SubElement(node, "on", kind=kind,
                          action=self.actions[kind])
        for name in sorted(self.function_actions):
            fnode = ET.SubElement(node, "function", name=name)
            overrides = self.function_actions[name]
            for kind in sorted(overrides):
                ET.SubElement(fnode, "on", kind=kind,
                              action=overrides[kind])
        return node


def _check_pair(kind: str, action: str, where: str) -> None:
    if kind not in KINDS:
        raise ValueError(
            f"unknown violation kind {kind!r} in {where}; "
            f"known: {', '.join(KINDS)}"
        )
    if action not in ACTIONS:
        raise ValueError(
            f"unknown recovery action {action!r} in {where}; "
            f"known: {', '.join(ACTIONS)}"
        )


def self_healing_policy() -> RecoveryPolicy:
    """The canonical keep-alive policy: repair the heap, retry transient
    failures, contain everything else."""
    return RecoveryPolicy(actions={
        "heap_corruption": "repair",
        "canary": "repair",
        "transient_errno": "retry",
    })


def degrading_policy() -> RecoveryPolicy:
    """The serving ladder's storm policy: repair what has heap metadata,
    retry transient failures, and *degrade* (contain + signal the
    circuit breaker) every other violation, so a service under active
    attack answers with error returns while stepping down the ladder."""
    return RecoveryPolicy(default_action="degrade", actions={
        "heap_corruption": "repair",
        "canary": "repair",
        "transient_errno": "retry",
    })


def escalating_policy() -> RecoveryPolicy:
    """The paper's abort-on-violation baseline, as an explicit policy."""
    return RecoveryPolicy(default_action="escalate", actions={
        "transient_errno": "contain",
    })
