"""Live campaign progress: an observer for the injection engine.

The executor notifies observers from the parent as work units complete
(cached verdicts included), so a single observer instance sees the whole
campaign regardless of worker count.  :class:`CampaignProgress` turns
that stream into periodic one-line updates — the headless equivalent of
the Web interface's progress bar during the Fig. 2 sweep.
"""

from __future__ import annotations

import sys
import threading
from typing import Optional, TextIO

from repro.injection.campaign import Probe
from repro.runtime import ProbeResult


class CampaignProgress:
    """A :data:`~repro.injection.campaign.ProbeObserver` printing progress.

    Counter updates are lock-protected so the observer also works when a
    caller fires it from multiple threads (the stock executor notifies
    from one thread).

    It is also a telemetry sink: subscribed to an
    :class:`~repro.telemetry.EventBus`, :meth:`handle_batch` consumes
    the executor's ``ProbeEvent`` stream — progress display is just one
    more consumer of the unified pipeline.
    """

    def __init__(self, total: int = 0, every: int = 100,
                 stream: Optional[TextIO] = None):
        #: expected probe count (0 = unknown; lines omit percentages)
        self.total = total
        self.every = max(1, every)
        self.stream = stream if stream is not None else sys.stderr
        self.count = 0
        self.failures = 0
        #: executor incidents (worker deaths, watchdog kills), in order
        self.incidents: list = []
        self._last_function = ""
        self._lock = threading.Lock()

    def __call__(self, probe: Probe, result: ProbeResult) -> None:
        self._advance(probe.function, result.outcome.is_robustness_failure)

    def handle_batch(self, events) -> None:
        """Telemetry-sink side: consume ``ProbeEvent`` batches."""
        for event in events:
            if event.kind == "probe":
                self._advance(event.function, event.failed)

    def incident(self, message: str) -> None:
        """Executor-incident side: surface worker deaths / watchdog kills.

        The executor duck-types on this method, so any observer that
        wants the incident stream just grows one.
        """
        with self._lock:
            self.incidents.append(message)
        print(f"[campaign] incident: {message}", file=self.stream,
              flush=True)

    def close(self) -> None:
        """Sink protocol: nothing buffered here."""

    def _advance(self, function: str, failed: bool) -> None:
        with self._lock:
            self.count += 1
            if failed:
                self.failures += 1
            self._last_function = function
            due = self.count % self.every == 0 or self.count == self.total
            line = self._line() if due else None
        if line is not None:
            print(line, file=self.stream, flush=True)

    def _line(self) -> str:
        position = (f"{self.count}/{self.total} "
                    f"({self.count / self.total:.0%})"
                    if self.total else str(self.count))
        return (f"[campaign] {position} probes, "
                f"{self.failures} failures, at {self._last_function}")

    def summary(self) -> str:
        """Final one-liner for after the run."""
        with self._lock:
            line = (f"[campaign] done: {self.count} probes, "
                    f"{self.failures} robustness failures")
            if self.incidents:
                line += f", {len(self.incidents)} incidents"
            return line
