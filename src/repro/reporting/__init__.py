"""HTML report rendering (the paper's Web interface, headless)."""

from repro.reporting.html import (
    render_application_scan_html,
    render_library_list_html,
    render_profile_html,
    render_robust_api_html,
)
from repro.reporting.progress import CampaignProgress

__all__ = [
    "CampaignProgress",
    "render_application_scan_html",
    "render_library_list_html",
    "render_profile_html",
    "render_robust_api_html",
]
