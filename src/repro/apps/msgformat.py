"""msgformat: a small request/response service with classic C bugs.

Stands in for the "certain network services" the paper preloads wrappers
into: it reads request lines from stdin with ``gets()`` into a fixed
64-byte heap buffer and builds responses with unbounded ``sprintf``.
Well-formed requests work; an over-long request overflows the request
buffer (and a hostile request can carry format directives).  The
robustness and security wrappers must turn those failures into contained
errors — without them the service crashes or corrupts its heap.
"""

from __future__ import annotations

from typing import List

from repro.apps.base import SimApp
from repro.linker import LinkedImage

REQUEST_BUFFER = 64
RESPONSE_BUFFER = 160

IMPORTS = [
    "gets", "sprintf", "puts", "malloc", "free", "strlen", "strcmp",
    "atoi", "strtok",
]


def msgformat_main(image: LinkedImage, argv: List[str]) -> int:
    """Serve requests from stdin until EOF; 'QUIT' stops the service.

    Protocol: ``ECHO <text>``, ``ADD <a> <b>``, ``QUIT``.
    """
    proc = image.process
    request = image.call("malloc", REQUEST_BUFFER)
    response = image.call("malloc", RESPONSE_BUFFER)
    served = 0
    while True:
        if image.call("gets", request) == 0:
            break
        if image.call("strlen", request) == 0:
            continue
        first = proc.read_cstring(request, limit=REQUEST_BUFFER)
        served += 1
        if first.startswith(b"QUIT"):
            break
        if first.startswith(b"ADD "):
            delim = proc.alloc_cstring(b" ")
            image.call("strtok", request, delim)  # skip the verb
            a_tok = image.call("strtok", 0, delim)
            b_tok = image.call("strtok", 0, delim)
            a = image.call("atoi", a_tok) if a_tok else 0
            b = image.call("atoi", b_tok) if b_tok else 0
            fmt = proc.alloc_cstring(b"sum=%d")
            image.call("sprintf", response, fmt, a + b)
        else:
            # ECHO (or unknown): reflect the request into the response —
            # note the unbounded sprintf through a %s of attacker text
            fmt = proc.alloc_cstring(b"reply[%d]: %s")
            image.call("sprintf", response, fmt, served, request)
        image.call("puts", response)
    image.call("free", request)
    image.call("free", response)
    fmt = proc.alloc_cstring(b"served %d requests")
    summary = image.call("malloc", 64)
    image.call("sprintf", summary, fmt, served)
    image.call("puts", summary)
    image.call("free", summary)
    return 0


MSGFORMAT = SimApp(
    name="msgformat",
    path="/sbin/msgformat",
    needed=["libc.so.6"],
    imports=IMPORTS,
    main=msgformat_main,
    description="request/response service with gets()/sprintf bugs",
)
