"""kvd: a fixed-slot key-value store with a stored-overflow bug.

The serving workload's anchor app.  Requests are single lines:

* ``SET <key> <value>`` — store a copy of the value under the key;
* ``GET <key>``         — reply ``VAL <value>`` (or ``MISS``);
* ``DEL <key>``         — drop the key;
* ``QUIT``              — shut down.

Lookups are libc-heavy on purpose (a ``strcmp`` scan over the slot
table, ``strcpy``/``strcat`` response assembly), which makes the GET
path an ideal fusion target.  The classic bug is *second order*: SET
accepts a value of any length (it is heap-copied exactly), but GET
builds its reply by ``strcat``-ing the stored value into a fixed
``RESPONSE_BUFFER``-byte heap buffer — a long stored value overflows
the response buffer only when it is read back.
"""

from __future__ import annotations

from typing import List

from repro.apps.base import ServerApp, serve_forever
from repro.linker import LinkedImage

REQUEST_BUFFER = 256
RESPONSE_BUFFER = 128
MAX_SLOTS = 8

IMPORTS = [
    "gets", "strlen", "strncmp", "strcmp", "strchr", "strcpy", "strcat",
    "sprintf", "memcpy", "malloc", "calloc", "free", "puts",
]


class KvdContext:
    """Long-lived service state: request/response buffers + slot table."""

    __slots__ = ("request", "response", "slots", "verbs", "served")

    def __init__(self) -> None:
        self.request = 0
        self.response = 0
        #: [key_ptr, value_ptr] pairs; key_ptr == 0 marks a free slot
        self.slots: List[List[int]] = []
        self.verbs = {}
        self.served = 0


def kvd_setup(image: LinkedImage, argv: List[str]) -> KvdContext:
    proc = image.process
    ctx = KvdContext()
    ctx.request = image.call("malloc", REQUEST_BUFFER)
    ctx.response = image.call("malloc", RESPONSE_BUFFER)
    ctx.slots = [[0, 0] for _ in range(MAX_SLOTS)]
    ctx.verbs = {
        verb: proc.intern_cstring(literal)
        for verb, literal in (
            ("SET", b"SET "), ("GET", b"GET "), ("DEL", b"DEL "),
            ("QUIT", b"QUIT"),
            ("VAL", b"VAL "), ("OK", b"OK"), ("MISS", b"MISS"),
            ("DEL_OK", b"DELETED"), ("FULL", b"ERR full"),
            ("BAD", b"ERR bad request"),
        )
    }
    return ctx


def _find_slot(image: LinkedImage, ctx: KvdContext, key: int) -> int:
    """Index of the slot whose key matches, or -1 (a strcmp scan)."""
    for index, slot in enumerate(ctx.slots):
        if slot[0] and image.call("strcmp", slot[0], key) == 0:
            return index
    return -1


def kvd_handle(image: LinkedImage, ctx: KvdContext) -> bool:
    """Serve exactly one request line; False shuts the service down."""
    verbs = ctx.verbs
    if image.call("gets", ctx.request) == 0:
        return False
    if image.call("strlen", ctx.request) == 0:
        return True
    ctx.served += 1
    request = ctx.request
    response = ctx.response
    if image.call("strncmp", request, verbs["GET"], 4) == 0:
        key = request + 4
        index = _find_slot(image, ctx, key)
        if index < 0:
            image.call("strcpy", response, verbs["MISS"])
        else:
            # the stored-overflow bug: the value was stored at full
            # length, but the reply buffer is fixed-size
            image.call("strcpy", response, verbs["VAL"])
            image.call("strcat", response, ctx.slots[index][1])
        image.call("puts", response)
        return True
    if image.call("strncmp", request, verbs["SET"], 4) == 0:
        key = request + 4
        space = image.call("strchr", key, ord(" "))
        if space == 0:
            image.call("strcpy", response, verbs["BAD"])
            image.call("puts", response)
            return True
        key_len = space - key
        value = space + 1
        index = _find_slot_for_set(image, ctx, key, key_len)
        if index < 0:
            image.call("strcpy", response, verbs["FULL"])
            image.call("puts", response)
            return True
        slot = ctx.slots[index]
        if slot[0] == 0:
            # calloc zero-fills, so the copied key is NUL-terminated
            key_copy = image.call("calloc", 1, key_len + 1)
            image.call("memcpy", key_copy, key, key_len)
            slot[0] = key_copy
        if slot[1]:
            image.call("free", slot[1])
        value_len = image.call("strlen", value)
        value_copy = image.call("malloc", value_len + 1)
        image.call("strcpy", value_copy, value)
        slot[1] = value_copy
        image.call("strcpy", response, verbs["OK"])
        image.call("puts", response)
        return True
    if image.call("strncmp", request, verbs["DEL"], 4) == 0:
        key = request + 4
        index = _find_slot(image, ctx, key)
        if index < 0:
            image.call("strcpy", response, verbs["MISS"])
        else:
            slot = ctx.slots[index]
            image.call("free", slot[0])
            image.call("free", slot[1])
            slot[0] = 0
            slot[1] = 0
            image.call("strcpy", response, verbs["DEL_OK"])
        image.call("puts", response)
        return True
    if image.call("strncmp", request, verbs["QUIT"], 4) == 0:
        return False
    image.call("strcpy", response, verbs["BAD"])
    image.call("puts", response)
    return True


def _find_slot_for_set(image: LinkedImage, ctx: KvdContext, key: int,
                       key_len: int) -> int:
    """Slot for a SET: the existing key's slot, else the first free one.

    The key in the request buffer still has the value after it, so the
    match must be length-bounded (strncmp + full-length check on the
    stored key).
    """
    free_index = -1
    for index, slot in enumerate(ctx.slots):
        if slot[0] == 0:
            if free_index < 0:
                free_index = index
            continue
        if (image.call("strncmp", slot[0], key, key_len) == 0
                and image.call("strlen", slot[0]) == key_len):
            return index
    return free_index


def kvd_teardown(image: LinkedImage, ctx: KvdContext) -> int:
    proc = image.process
    fmt = proc.alloc_cstring(b"kvd: served %d requests")
    summary = image.call("malloc", 64)
    image.call("sprintf", summary, fmt, ctx.served)
    image.call("puts", summary)
    image.call("free", summary)
    image.call("free", ctx.request)
    image.call("free", ctx.response)
    return 0


KVD = ServerApp(
    name="kvd",
    path="/sbin/kvd",
    needed=["libc.so.6"],
    imports=IMPORTS,
    main=serve_forever(kvd_setup, kvd_handle, kvd_teardown),
    description="fixed-slot key-value store with a stored response overflow",
    setup=kvd_setup,
    handle=kvd_handle,
    teardown=kvd_teardown,
)
