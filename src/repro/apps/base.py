"""Application model for the simulated system.

A :class:`SimApp` bundles an executable's SimELF metadata (what the
scanners read) with its entry point (what actually runs).  Entry points
receive a :class:`~repro.linker.LinkedImage` and call libc exclusively
through ``image.call(...)`` — the dynamic-linking boundary where HEALERS
wrappers interpose — so preloading a wrapper changes an app's behaviour
without touching its code, exactly as with a native binary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ProcessExit, SimulatorError
from repro.linker import DynamicLinker, LinkedImage
from repro.objfile import SimELF, build_executable
from repro.runtime import SimProcess

#: an application entry point: (image, argv) -> exit status
EntryPoint = Callable[[LinkedImage, List[str]], int]


@dataclass
class SimApp:
    """One installable simulated application."""

    name: str
    path: str
    needed: List[str]
    imports: List[str]
    main: EntryPoint
    description: str = ""

    def image(self) -> SimELF:
        """The SimELF container for this application."""
        return build_executable(self.path, needed=self.needed,
                                undefined=self.imports)


#: per-request server hooks: setup(image, argv) -> ctx,
#: handle(image, ctx) -> keep-serving, teardown(image, ctx) -> status
SetupHook = Callable[[LinkedImage, List[str]], object]
HandleHook = Callable[[LinkedImage, object], bool]
TeardownHook = Callable[[LinkedImage, object], int]


@dataclass
class ServerApp(SimApp):
    """A request/response service with an explicit per-request hook.

    ``main`` stays a normal run-to-EOF entry point (so chaos trials and
    attack runs drive a ServerApp exactly like any other app), but the
    serving harness needs request *boundaries*: it feeds one request
    into stdin, calls ``handle`` once, and brackets the call with the
    fused image's ``begin_request``/``end_request``.  ``setup`` builds
    the service's long-lived state (buffers, tables), ``handle`` serves
    exactly one request (False = shut down), ``teardown`` emits the
    shutdown summary and returns the exit status.
    """

    setup: Optional[SetupHook] = None
    handle: Optional[HandleHook] = None
    teardown: Optional[TeardownHook] = None


def serve_forever(setup: SetupHook, handle: HandleHook,
                  teardown: Optional[TeardownHook] = None) -> EntryPoint:
    """Fold per-request server hooks into a run-to-EOF entry point."""

    def main(image: LinkedImage, argv: List[str]) -> int:
        ctx = setup(image, argv)
        while handle(image, ctx):
            pass
        if teardown is not None:
            return teardown(image, ctx)
        return 0

    return main


@dataclass
class AppResult:
    """Outcome of one application run."""

    app: str
    status: Optional[int]
    stdout: str
    process: SimProcess
    exception: Optional[BaseException] = None

    @property
    def crashed(self) -> bool:
        return self.exception is not None

    @property
    def succeeded(self) -> bool:
        return self.status == 0 and not self.crashed


def run_app(
    app: SimApp,
    linker: DynamicLinker,
    argv: Optional[List[str]] = None,
    stdin: bytes = b"",
    files: Optional[Dict[str, bytes]] = None,
    process: Optional[SimProcess] = None,
    **process_kwargs,
) -> AppResult:
    """Load and run an application under the given linker configuration.

    Simulator faults (segfaults, aborts, security terminations) are
    captured into the result rather than propagated, mirroring how a
    shell reports a child's death by signal.
    """
    process = process if process is not None else SimProcess(**process_kwargs)
    if stdin:
        process.fs.feed_stdin(stdin)
    for path, content in (files or {}).items():
        process.fs.add_file(path, content)
    image = linker.load(app.needed, app.imports, process)
    status: Optional[int] = None
    exception: Optional[BaseException] = None
    try:
        status = app.main(image, list(argv or []))
    except ProcessExit as exit_call:
        status = exit_call.status
    except SimulatorError as fault:
        exception = fault
    return AppResult(
        app=app.name,
        status=status,
        stdout=process.fs.stdout_text(),
        process=process,
        exception=exception,
    )
