"""heapd: a heap-management service with the full bug bestiary.

Where authd carries exactly one bug (the demo 3.4 overflow), heapd is
the red-team's playground: a command service whose protocol exposes the
classic heap-lifetime and format-string mistakes in isolation, so each
attack class in the corpus has a dedicated, minimal trigger.

Protocol (one command per stdin line):

* ``ALLOC <n>``        — malloc an ``n``-byte slot (appended to the
  slot table; slot 0 is pre-allocated at startup)
* ``FREE <slot>``      — free the slot's buffer **without clearing the
  table entry** (the dangling-pointer bug)
* ``PUT <slot> <text>``— ``strcpy`` the text into the slot (no length
  check; combined with FREE this is a use-after-free write)
* ``NOTE <fmt>``       — ``sprintf`` the attacker-controlled format
  into the note buffer **with no variadic arguments** (format-string
  overread)
* ``RAW <slot>``       — read the next stdin line straight into the
  slot with ``gets()`` (unbounded; NUL bytes pass through)
* ``RUN``              — dispatch through the handler record's function
  pointer (the hijack target)
* ``QUIT``             — stop

Layout: the handler record is allocated immediately after slot 0, so an
overflow out of slot 0 runs over the allocator metadata (and canary,
when armed) into the function pointer — same shape as authd, but
reachable through ``RAW``'s NUL-transparent read, which is what makes a
forged-canary bypass attempt expressible.
"""

from __future__ import annotations

from typing import List

from repro.apps.base import SimApp
from repro.linker import LinkedImage
from repro.runtime import SimProcess

CMD_BUFFER = 128
NOTE_BUFFER = 96
SLOT_BUFFER = 32
HANDLER_RECORD = 16  # function pointer + flags word

IMPORTS = ["malloc", "free", "strcpy", "strlen", "sprintf", "puts", "gets"]


def _log_handler(proc: SimProcess, *args) -> int:
    """The legitimate dispatch target: record that service ran."""
    proc.heapd_outcome = "logged"
    return 0


def _shell_gadget(proc: SimProcess, *args) -> int:
    """Attacker-desired code (see authd)."""
    proc.root_shell = True
    proc.heapd_outcome = "root shell"
    return 0


def gadget_addresses(proc: SimProcess) -> dict:
    """Code addresses of this binary (read by the attack corpus)."""
    if not hasattr(proc, "_heapd_gadgets"):
        proc._heapd_gadgets = {
            "log": proc.register_callback(_log_handler),
            "shell": proc.register_callback(_shell_gadget),
        }
    return proc._heapd_gadgets


def _slot_index(argument: bytes) -> int:
    try:
        return int(argument)
    except ValueError:
        return -1


def heapd_main(image: LinkedImage, argv: List[str]) -> int:
    """Serve slot-management commands from stdin until EOF/QUIT."""
    proc = image.process
    proc.root_shell = False
    proc.heapd_outcome = "none"
    gadgets = gadget_addresses(proc)

    # fixed allocation order — the corpus' scout replays it exactly
    cmd = image.call("malloc", CMD_BUFFER)
    note = image.call("malloc", NOTE_BUFFER)
    slots = [image.call("malloc", SLOT_BUFFER)]  # slot 0: the victim
    record = image.call("malloc", HANDLER_RECORD)
    proc.space.write_u64(record, gadgets["log"])
    proc.space.write_u64(record + 8, 0)

    handled = 0
    while True:
        if image.call("gets", cmd) == 0:
            break
        line = proc.read_cstring(cmd, limit=CMD_BUFFER)
        if not line:
            continue
        handled += 1
        if line.startswith(b"QUIT"):
            break
        if line.startswith(b"ALLOC "):
            size = _slot_index(line[6:].split()[0]) if line[6:].split() \
                else -1
            slots.append(image.call("malloc", max(size, 1)))
        elif line.startswith(b"FREE "):
            index = _slot_index(line[5:].strip())
            if 0 <= index < len(slots):
                # bug: the table entry is not cleared — it dangles
                image.call("free", slots[index])
        elif line.startswith(b"PUT "):
            space = line.find(b" ", 4)
            index = _slot_index(line[4:space if space > 0 else None])
            if space > 0 and 0 <= index < len(slots):
                # bug: unbounded copy of the command tail into the slot
                image.call("strcpy", slots[index], cmd + space + 1)
        elif line.startswith(b"NOTE "):
            # bug: the attacker's text *is* the format string, and the
            # call supplies no variadic arguments at all
            image.call("sprintf", note, cmd + 5)
        elif line.startswith(b"RAW "):
            index = _slot_index(line[4:].strip())
            if 0 <= index < len(slots):
                # bug: unbounded, NUL-transparent read into the slot
                if image.call("gets", slots[index]) == 0:
                    break
        elif line.startswith(b"RUN"):
            handler_ptr = proc.space.read_u64(record)
            handler = proc.resolve_callback(handler_ptr)
            handler(proc)
        else:
            image.call("puts", proc.alloc_cstring(b"heapd: bad command"))

    summary = image.call("malloc", 64)
    fmt = proc.alloc_cstring(b"heapd: handled %d commands")
    image.call("sprintf", summary, fmt, handled)
    image.call("puts", summary)
    return 0


HEAPD = SimApp(
    name="heapd",
    path="/sbin/heapd",
    needed=["libc.so.6"],
    imports=IMPORTS,
    main=heapd_main,
    description="slot-management service exposing heap-lifetime and "
                "format-string bugs",
)
