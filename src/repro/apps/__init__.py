"""Sample simulated applications and the standard system image."""

from typing import Dict, List, Optional, Tuple

from repro.apps.authd import AUTHD
from repro.apps.base import (
    AppResult,
    EntryPoint,
    ServerApp,
    SimApp,
    run_app,
    serve_forever,
)
from repro.apps.csvstat import CSVSTAT
from repro.apps.heapd import HEAPD
from repro.apps.httpd import HTTPD
from repro.apps.kvd import KVD
from repro.apps.localed import LOCALED
from repro.apps.msgformat import MSGFORMAT
from repro.apps.stacksmash import STACKD
from repro.apps.statcalc import STATCALC
from repro.apps.tmpld import TMPLD
from repro.apps.wordcount import WORDCOUNT
from repro.libc import LibcRegistry, math_registry, standard_registry
from repro.linker import DynamicLinker, SharedLibrary
from repro.objfile import SimELF, SimSystem, TYPE_EXEC, build_shared_object

ALL_APPS: List[SimApp] = [WORDCOUNT, CSVSTAT, STATCALC, MSGFORMAT, AUTHD,
                          STACKD, HEAPD, LOCALED, KVD, HTTPD, TMPLD]

#: the request/response services the serving harness can drive
SERVER_APPS: List[ServerApp] = [KVD, HTTPD, TMPLD]

#: sample input used by examples/benchmarks for the text workloads
SAMPLE_TEXT = (
    b"the quick brown fox jumps over the lazy dog\n"
    b"pack my box with five dozen liquor jugs\n"
    b"how vexingly quick daft zebras jump\n"
    b"the five boxing wizards jump quickly\n"
) * 4

SAMPLE_CSV = b"\n".join(
    b",".join(str((i * 37 + j * 11) % 201 - 100).encode() for j in range(8))
    for i in range(24)
) + b"\n"


def app_by_name(name: str) -> SimApp:
    """Look up a bundled application by name."""
    for app in ALL_APPS:
        if app.name == name:
            return app
    raise KeyError(f"unknown application {name!r}")


def standard_system(
    registry: Optional[LibcRegistry] = None,
) -> Tuple[SimSystem, DynamicLinker]:
    """Build the standard system image: libc + all bundled applications.

    Returns the browsable :class:`SimSystem` (what the scanners read) and
    a :class:`DynamicLinker` with libc installed (what programs run on).
    """
    registry = registry or standard_registry()
    libc = SharedLibrary.from_registry(registry)
    linker = DynamicLinker()
    linker.add_library(libc)

    system = SimSystem()
    system.install_library(
        build_shared_object(
            path="/lib/libc.so.6",
            soname=registry.library_name,
            defined=registry.names(),
        ),
        library=libc,
    )
    # the math library: a second fully wrappable shared object
    libm_registry = math_registry()
    libm = SharedLibrary.from_registry(libm_registry)
    linker.add_library(libm)
    system.install_library(
        build_shared_object(path="/lib/libm.so.6", soname="libm.so.6",
                            defined=libm_registry.names()),
        library=libm,
    )
    for app in ALL_APPS:
        system.install_executable(app.image(), entry=app.main)
    # a static binary and a data file exercise the scanner's edge cases
    system.install_executable(
        SimELF(path="/bin/staticd", type=TYPE_EXEC, interp="", needed=[],
               undefined=[])
    )
    system.install_plain_file("/etc/motd", b"welcome to the HEALERS system\n")
    return system, linker


def standard_files() -> Dict[str, bytes]:
    """Input files the sample apps expect."""
    return {
        "/data/sample.txt": SAMPLE_TEXT,
        "/data/values.csv": SAMPLE_CSV,
    }


__all__ = [
    "ALL_APPS",
    "AUTHD",
    "AppResult",
    "CSVSTAT",
    "EntryPoint",
    "HEAPD",
    "HTTPD",
    "KVD",
    "LOCALED",
    "MSGFORMAT",
    "SAMPLE_CSV",
    "SAMPLE_TEXT",
    "SERVER_APPS",
    "STACKD",
    "STATCALC",
    "ServerApp",
    "SimApp",
    "TMPLD",
    "WORDCOUNT",
    "app_by_name",
    "run_app",
    "serve_forever",
    "standard_files",
    "standard_system",
]
