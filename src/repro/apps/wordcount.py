"""wordcount: a well-behaved text-statistics utility.

The "user application that desires high availability" of Fig. 1: it opens
a file, reads it line by line, tokenises words, tracks the longest word
and a small most-frequent table, and prints a report.  It exercises a
broad slice of the wrapped API (stdio, string, stdlib) and is the
standard workload for the profiling demo and the overhead benchmarks.
"""

from __future__ import annotations

from typing import List

from repro.apps.base import SimApp
from repro.linker import LinkedImage

LINE_BUFFER = 256
WORD_BUFFER = 64
TABLE_SLOTS = 16

IMPORTS = [
    "fopen", "fgets", "fclose", "strtok", "strlen", "strcmp", "strcpy",
    "malloc", "free", "sprintf", "puts", "tolower", "isalpha", "strdup",
]


def wordcount_main(image: LinkedImage, argv: List[str]) -> int:
    """Count lines/words/chars of argv[0]; print a frequency table."""
    proc = image.process
    path = argv[0] if argv else "/data/sample.txt"
    path_ptr = proc.alloc_cstring(path.encode())
    mode_ptr = proc.alloc_cstring(b"r")
    stream = image.call("fopen", path_ptr, mode_ptr)
    if stream == 0:
        message = proc.alloc_cstring(f"wordcount: cannot open {path}".encode())
        image.call("puts", message)
        return 1

    line_buf = image.call("malloc", LINE_BUFFER)
    delim = proc.alloc_cstring(b" \t\n")
    # tiny open-addressing table of strdup'ed words + counts
    words: List[int] = [0] * TABLE_SLOTS
    counts: List[int] = [0] * TABLE_SLOTS

    lines = 0
    total_words = 0
    total_chars = 0
    longest = 0
    while image.call("fgets", line_buf, LINE_BUFFER, stream) != 0:
        lines += 1
        total_chars += image.call("strlen", line_buf)
        token = image.call("strtok", line_buf, delim)
        while token != 0:
            total_words += 1
            length = image.call("strlen", token)
            longest = max(longest, length)
            _tally(image, words, counts, token)
            token = image.call("strtok", 0, delim)

    image.call("fclose", stream)
    image.call("free", line_buf)

    report = image.call("malloc", 160)
    fmt = proc.alloc_cstring(
        b"%s: %d lines, %d words, %d chars, longest word %d"
    )
    image.call("sprintf", report, fmt, path_ptr, lines, total_words,
               total_chars, longest)
    image.call("puts", report)
    top_fmt = proc.alloc_cstring(b"top word: %s (%d)")
    best = max(range(TABLE_SLOTS), key=lambda i: counts[i], default=0)
    if counts[best]:
        image.call("sprintf", report, top_fmt, words[best], counts[best])
        image.call("puts", report)
    image.call("free", report)
    for slot in words:
        if slot:
            image.call("free", slot)
    return 0


def _tally(image: LinkedImage, words: List[int], counts: List[int],
           token: int) -> None:
    """Bump the count for token in the fixed-size table (lossy on full)."""
    for index in range(TABLE_SLOTS):
        if words[index] == 0:
            words[index] = image.call("strdup", token)
            counts[index] = 1
            return
        if image.call("strcmp", words[index], token) == 0:
            counts[index] += 1
            return


WORDCOUNT = SimApp(
    name="wordcount",
    path="/bin/wordcount",
    needed=["libc.so.6"],
    imports=IMPORTS,
    main=wordcount_main,
    description="text statistics utility (profiling/overhead workload)",
)
