"""httpd: an HTTP-ish request-line parser and responder.

Each request is one ``GET <path> HTTP/1.0`` line.  The parser carves
the path out of the request with ``strchr``/``strncpy`` into a
fixed-size path buffer (the classic too-long-URL overflow), routes on
it, and assembles the status line with ``sprintf`` — including the
unbounded ``%s`` reflection of ``/echo/...`` paths into a fixed
response buffer.  Protocol:

* ``GET / HTTP/1.0``          — index page;
* ``GET /echo/<text> HTTP/1.0`` — reflects ``<text>`` into the body;
* anything else well-formed   — 404;
* malformed request line      — 400;
* ``QUIT``                    — shut down.
"""

from __future__ import annotations

from typing import List

from repro.apps.base import ServerApp, serve_forever
from repro.linker import LinkedImage

REQUEST_BUFFER = 256
PATH_BUFFER = 64
RESPONSE_BUFFER = 192

IMPORTS = [
    "gets", "strlen", "strncmp", "strcmp", "strchr", "strncpy", "strcpy",
    "memset", "sprintf", "malloc", "free", "puts",
]


class HttpdContext:
    """Long-lived parser state: request/path/response buffers."""

    __slots__ = ("request", "path", "response", "literals", "served")

    def __init__(self) -> None:
        self.request = 0
        self.path = 0
        self.response = 0
        self.literals = {}
        self.served = 0


def httpd_setup(image: LinkedImage, argv: List[str]) -> HttpdContext:
    proc = image.process
    ctx = HttpdContext()
    ctx.request = image.call("malloc", REQUEST_BUFFER)
    ctx.path = image.call("malloc", PATH_BUFFER)
    ctx.response = image.call("malloc", RESPONSE_BUFFER)
    ctx.literals = {
        name: proc.intern_cstring(literal)
        for name, literal in (
            ("GET", b"GET "), ("QUIT", b"QUIT"),
            ("ROOT", b"/"), ("ECHO", b"/echo/"),
            ("OK_FMT", b"HTTP/1.0 200 OK body=index served=%d"),
            ("ECHO_FMT", b"HTTP/1.0 200 OK body=%s"),
            ("NOTFOUND_FMT", b"HTTP/1.0 404 Not Found path=%s"),
            ("BAD", b"HTTP/1.0 400 Bad Request"),
        )
    }
    return ctx


def httpd_handle(image: LinkedImage, ctx: HttpdContext) -> bool:
    """Parse and answer one request line; False shuts the service down."""
    lits = ctx.literals
    if image.call("gets", ctx.request) == 0:
        return False
    if image.call("strlen", ctx.request) == 0:
        return True
    if image.call("strncmp", ctx.request, lits["QUIT"], 4) == 0:
        return False
    ctx.served += 1
    request = ctx.request
    response = ctx.response
    if image.call("strncmp", request, lits["GET"], 4) != 0:
        image.call("strcpy", response, lits["BAD"])
        image.call("puts", response)
        return True
    path = request + 4
    space = image.call("strchr", path, ord(" "))
    if space == 0:
        image.call("strcpy", response, lits["BAD"])
        image.call("puts", response)
        return True
    # the too-long-URL bug: the path is copied at request-derived length
    # into the fixed PATH_BUFFER-byte buffer
    path_len = space - path
    image.call("strncpy", ctx.path, path, path_len)
    image.call("memset", ctx.path + path_len, 0, 1)
    if image.call("strcmp", ctx.path, lits["ROOT"]) == 0:
        image.call("sprintf", response, lits["OK_FMT"], ctx.served)
    elif image.call("strncmp", ctx.path, lits["ECHO"], 6) == 0:
        # unbounded %s reflection of the echo text into the response
        image.call("sprintf", response, lits["ECHO_FMT"], ctx.path + 6)
    else:
        image.call("sprintf", response, lits["NOTFOUND_FMT"], ctx.path)
    image.call("puts", response)
    return True


def httpd_teardown(image: LinkedImage, ctx: HttpdContext) -> int:
    proc = image.process
    fmt = proc.alloc_cstring(b"httpd: served %d requests")
    summary = image.call("malloc", 64)
    image.call("sprintf", summary, fmt, ctx.served)
    image.call("puts", summary)
    image.call("free", summary)
    image.call("free", ctx.request)
    image.call("free", ctx.path)
    image.call("free", ctx.response)
    return 0


HTTPD = ServerApp(
    name="httpd",
    path="/sbin/httpd",
    needed=["libc.so.6"],
    imports=IMPORTS,
    main=serve_forever(httpd_setup, httpd_handle, httpd_teardown),
    description="HTTP-ish request parser with a too-long-URL overflow",
    setup=httpd_setup,
    handle=httpd_handle,
    teardown=httpd_teardown,
)
