"""tmpld: a placeholder-substituting template renderer.

The most call-dense of the server apps: rendering walks the template
with ``strchr`` looking for ``$`` placeholders and assembles the output
from ``memcpy``'d literal segments and ``strcpy``'d argument text — a
fixed per-template call sequence (the fusion sweet spot).  Protocol:

* ``RENDER <id> <text>`` — substitute ``<text>`` for every ``$`` in
  template ``<id>`` and print the result;
* ``QUIT``               — shut down.

The output buffer is a fixed ``OUTPUT_BUFFER`` bytes while arguments
are substituted unbounded, so a long argument (or one hitting the
multi-placeholder template) overflows the render buffer.
"""

from __future__ import annotations

from typing import List

from repro.apps.base import ServerApp, serve_forever
from repro.linker import LinkedImage

REQUEST_BUFFER = 256
OUTPUT_BUFFER = 192

TEMPLATES = (
    b"Hello, $!",
    b"<li>$</li>",
    b"[$] => [$]",
)

IMPORTS = [
    "gets", "strlen", "strncmp", "strchr", "strcpy", "memcpy", "memset",
    "atoi", "sprintf", "malloc", "free", "puts",
]


class TmpldContext:
    """Long-lived renderer state: buffers + interned templates."""

    __slots__ = ("request", "output", "templates", "literals", "served")

    def __init__(self) -> None:
        self.request = 0
        self.output = 0
        self.templates: List[int] = []
        self.literals = {}
        self.served = 0


def tmpld_setup(image: LinkedImage, argv: List[str]) -> TmpldContext:
    proc = image.process
    ctx = TmpldContext()
    ctx.request = image.call("malloc", REQUEST_BUFFER)
    ctx.output = image.call("malloc", OUTPUT_BUFFER)
    ctx.templates = [proc.intern_cstring(t) for t in TEMPLATES]
    ctx.literals = {
        name: proc.intern_cstring(literal)
        for name, literal in (
            ("RENDER", b"RENDER "), ("QUIT", b"QUIT"),
            ("ERR_FMT", b"ERR bad template %d"),
            ("BAD", b"ERR bad request"),
        )
    }
    return ctx


def _render(image: LinkedImage, template: int, arg: int,
            output: int) -> None:
    """Substitute ``arg`` for each ``$``, assembling into ``output``."""
    src = template
    pos = output
    while True:
        dollar = image.call("strchr", src, ord("$"))
        if dollar == 0:
            image.call("strcpy", pos, src)
            return
        segment = dollar - src
        if segment:
            image.call("memcpy", pos, src, segment)
            pos += segment
        # terminate the copied prefix so strcpy appends cleanly
        image.call("memset", pos, 0, 1)
        image.call("strcpy", pos, arg)
        pos += image.call("strlen", arg)
        src = dollar + 1


def tmpld_handle(image: LinkedImage, ctx: TmpldContext) -> bool:
    """Render one request line; False shuts the service down."""
    lits = ctx.literals
    if image.call("gets", ctx.request) == 0:
        return False
    if image.call("strlen", ctx.request) == 0:
        return True
    if image.call("strncmp", ctx.request, lits["QUIT"], 4) == 0:
        return False
    ctx.served += 1
    request = ctx.request
    if image.call("strncmp", request, lits["RENDER"], 7) != 0:
        image.call("strcpy", ctx.output, lits["BAD"])
        image.call("puts", ctx.output)
        return True
    template_id = image.call("atoi", request + 7)
    space = image.call("strchr", request + 7, ord(" "))
    if space == 0 or not 0 <= template_id < len(ctx.templates):
        image.call("sprintf", ctx.output, lits["ERR_FMT"], template_id)
        image.call("puts", ctx.output)
        return True
    _render(image, ctx.templates[template_id], space + 1, ctx.output)
    image.call("puts", ctx.output)
    return True


def tmpld_teardown(image: LinkedImage, ctx: TmpldContext) -> int:
    proc = image.process
    fmt = proc.alloc_cstring(b"tmpld: served %d requests")
    summary = image.call("malloc", 64)
    image.call("sprintf", summary, fmt, ctx.served)
    image.call("puts", summary)
    image.call("free", summary)
    image.call("free", ctx.request)
    image.call("free", ctx.output)
    return 0


TMPLD = ServerApp(
    name="tmpld",
    path="/sbin/tmpld",
    needed=["libc.so.6"],
    imports=IMPORTS,
    main=serve_forever(tmpld_setup, tmpld_handle, tmpld_teardown),
    description="template renderer with an unbounded substitution overflow",
    setup=tmpld_setup,
    handle=tmpld_handle,
    teardown=tmpld_teardown,
)
