"""statcalc: descriptive statistics over a CSV column — links two libraries.

The only bundled application with *two* NEEDED entries (libc.so.6 and
libm.so.6), so the application-scanning demo shows multi-library
resolution and wrapper interposition covers calls into both libraries in
one process.  Computes count / mean / stddev / geometric mean over the
positive values of its input using sqrt/log/exp from libm.
"""

from __future__ import annotations

from typing import List

from repro.apps.base import SimApp
from repro.linker import LinkedImage

LINE_BUFFER = 256

IMPORTS = [
    # libc
    "fopen", "fgets", "fclose", "strtok", "strtod", "malloc", "free",
    "sprintf", "puts",
    # libm
    "sqrt", "log", "exp", "fabs",
]


def statcalc_main(image: LinkedImage, argv: List[str]) -> int:
    """Read doubles from argv[0]; print count/mean/stddev/geomean."""
    proc = image.process
    path = argv[0] if argv else "/data/values.csv"
    stream = image.call("fopen", proc.alloc_cstring(path.encode()),
                        proc.alloc_cstring(b"r"))
    if stream == 0:
        image.call("puts",
                   proc.alloc_cstring(f"statcalc: cannot open {path}".encode()))
        return 1

    line_buf = image.call("malloc", LINE_BUFFER)
    delim = proc.alloc_cstring(b",\n ")
    values: List[float] = []
    while image.call("fgets", line_buf, LINE_BUFFER, stream) != 0:
        token = image.call("strtok", line_buf, delim)
        while token != 0:
            values.append(image.call("strtod", token, 0))
            token = image.call("strtok", 0, delim)
    image.call("fclose", stream)
    image.call("free", line_buf)

    if not values:
        image.call("puts", proc.alloc_cstring(b"statcalc: no values"))
        return 1

    count = len(values)
    mean = sum(values) / count
    variance = sum((v - mean) ** 2 for v in values) / count
    stddev = image.call("sqrt", variance)
    positives = [v for v in values if v > 0]
    if positives:
        log_sum = 0.0
        for value in positives:
            log_sum += image.call("log", value)
        geomean = image.call("exp", log_sum / len(positives))
    else:
        geomean = 0.0
    spread = image.call("fabs", max(values) - min(values))

    report = image.call("malloc", 160)
    fmt = proc.alloc_cstring(
        b"n=%d mean=%.3f stddev=%.3f geomean=%.3f spread=%.1f"
    )
    image.call("sprintf", report, fmt, count, mean, stddev, geomean, spread)
    image.call("puts", report)
    image.call("free", report)
    return 0


STATCALC = SimApp(
    name="statcalc",
    path="/bin/statcalc",
    needed=["libc.so.6", "libm.so.6"],
    imports=IMPORTS,
    main=statcalc_main,
    description="descriptive statistics (links libc and libm)",
)
