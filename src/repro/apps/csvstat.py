"""csvstat: numeric-column statistics over a CSV file.

Exercises the conversion and algorithm families (atoi/strtol, qsort via a
registered comparator, bsearch) on realistic input.  Used by the overhead
benchmarks as a compute-heavier workload than wordcount.
"""

from __future__ import annotations

from typing import List

from repro.apps.base import SimApp
from repro.linker import LinkedImage

LINE_BUFFER = 512
MAX_VALUES = 4096
INT_SIZE = 8  # values stored as i64 words

IMPORTS = [
    "fopen", "fgets", "fclose", "strtok", "atoi", "malloc", "free",
    "qsort", "bsearch", "sprintf", "puts", "memcpy", "strlen",
]


def csvstat_main(image: LinkedImage, argv: List[str]) -> int:
    """Parse integers from argv[0] (CSV), sort, report min/median/max."""
    proc = image.process
    path = argv[0] if argv else "/data/values.csv"
    stream = image.call("fopen", proc.alloc_cstring(path.encode()),
                        proc.alloc_cstring(b"r"))
    if stream == 0:
        image.call("puts",
                   proc.alloc_cstring(f"csvstat: cannot open {path}".encode()))
        return 1

    values = image.call("malloc", MAX_VALUES * INT_SIZE)
    line_buf = image.call("malloc", LINE_BUFFER)
    delim = proc.alloc_cstring(b",\n ")
    count = 0
    while image.call("fgets", line_buf, LINE_BUFFER, stream) != 0:
        token = image.call("strtok", line_buf, delim)
        while token != 0 and count < MAX_VALUES:
            number = image.call("atoi", token)
            proc.space.write_u64(values + count * INT_SIZE,
                                 number & 0xFFFFFFFFFFFFFFFF)
            count += 1
            token = image.call("strtok", 0, delim)
    image.call("fclose", stream)
    image.call("free", line_buf)

    if count == 0:
        image.call("puts", proc.alloc_cstring(b"csvstat: no values"))
        image.call("free", values)
        return 1

    comparator = proc.register_callback(_compare_i64)
    image.call("qsort", values, count, INT_SIZE, comparator)

    def read(index: int) -> int:
        raw = proc.space.read_u64(values + index * INT_SIZE)
        return raw - (1 << 64) if raw >= (1 << 63) else raw

    minimum = read(0)
    maximum = read(count - 1)
    median = read(count // 2)
    # bsearch for the median as a self-check of sortedness
    key = image.call("malloc", INT_SIZE)
    proc.space.write_u64(key, median & 0xFFFFFFFFFFFFFFFF)
    found = image.call("bsearch", key, values, count, INT_SIZE, comparator)
    image.call("free", key)

    report = image.call("malloc", 128)
    fmt = proc.alloc_cstring(
        b"n=%d min=%d median=%d max=%d bsearch=%s"
    )
    image.call("sprintf", report, fmt, count, minimum, median, maximum,
               proc.alloc_cstring(b"ok" if found else b"MISSING"))
    image.call("puts", report)
    image.call("free", report)
    image.call("free", values)
    return 0


def _compare_i64(proc, left: int, right: int) -> int:
    a = proc.space.read_u64(left)
    b = proc.space.read_u64(right)
    a = a - (1 << 64) if a >= (1 << 63) else a
    b = b - (1 << 64) if b >= (1 << 63) else b
    return (a > b) - (a < b)


CSVSTAT = SimApp(
    name="csvstat",
    path="/bin/csvstat",
    needed=["libc.so.6"],
    imports=IMPORTS,
    main=csvstat_main,
    description="CSV numeric statistics (qsort/bsearch workload)",
)
