"""authd: the root-privileged victim of demo 3.4 (heap smashing, [3]).

"It first shows that an attacker can hijack the control flow of a root
privileged program by overflowing a buffer allocated on the heap.  This
results in a root shell for the attacker."

Layout: the daemon mallocs a *username buffer* and then a *handler
record* holding a function pointer; with a boundary-tag allocator the two
are adjacent, so an over-long username ``strcpy``'d into the buffer runs
over the allocator metadata and into the handler's function pointer.
After "authentication" the daemon dispatches through that pointer — a
crafted username redirects the call to the shell gadget, and because the
daemon runs as root the attacker gets a root shell
(``process.root_shell`` in the simulation).

The security wrapper's bounds check refuses the overflowing ``strcpy``
and terminates the program instead (SecurityViolation), which is the
demo's second half.
"""

from __future__ import annotations

from typing import List

from repro.apps.base import SimApp
from repro.linker import LinkedImage
from repro.runtime import SimProcess

NAME_BUFFER = 24
HANDLER_RECORD = 16  # function pointer + flags word

IMPORTS = ["malloc", "free", "strcpy", "strlen", "sprintf", "puts", "gets"]


def _deny_handler(proc: SimProcess, *args) -> int:
    """The legitimate post-auth action: report denial."""
    proc.auth_outcome = "denied"
    return 0


def _shell_gadget(proc: SimProcess, *args) -> int:
    """The dangerous code an attacker wants to reach (execve("/bin/sh")).

    In the simulation "getting a root shell" is recorded as a process
    flag the demo and tests assert on.
    """
    proc.root_shell = True
    proc.auth_outcome = "root shell"
    return 0


def gadget_addresses(proc: SimProcess) -> dict:
    """Register the daemon's code and return its address table.

    A real exploit learns such addresses from the binary; the attack
    corpus reads them from here (white-box attacker).
    """
    if not hasattr(proc, "_authd_gadgets"):
        proc._authd_gadgets = {
            "deny": proc.register_callback(_deny_handler),
            "shell": proc.register_callback(_shell_gadget),
        }
    return proc._authd_gadgets


def authd_main(image: LinkedImage, argv: List[str]) -> int:
    """Process one login attempt: the username arrives on stdin."""
    proc = image.process
    proc.root_shell = False
    proc.auth_outcome = "none"
    gadgets = gadget_addresses(proc)

    # the two adjacent heap objects of the published exploit
    name_buffer = image.call("malloc", NAME_BUFFER)
    handler_record = image.call("malloc", HANDLER_RECORD)
    proc.space.write_u64(handler_record, gadgets["deny"])
    proc.space.write_u64(handler_record + 8, 0)

    # read the username (bounded here — the overflow is the strcpy below)
    staging = image.call("malloc", 512)
    if image.call("gets", staging) == 0:
        image.call("puts", proc.alloc_cstring(b"authd: no input"))
        return 1

    # the bug: username copied with no length check into the 24-byte
    # buffer that sits right below the handler record
    image.call("strcpy", name_buffer, staging)

    image.call("puts", proc.alloc_cstring(b"authd: authenticating"))

    # dispatch through the (possibly clobbered) function pointer
    handler_ptr = proc.space.read_u64(handler_record)
    handler = proc.resolve_callback(handler_ptr)
    handler(proc)

    image.call("free", staging)
    outcome = proc.auth_outcome.encode()
    report = image.call("malloc", 64)
    fmt = proc.alloc_cstring(b"authd: outcome=%s")
    image.call("sprintf", report, fmt, proc.alloc_cstring(outcome))
    image.call("puts", report)
    return 0


AUTHD = SimApp(
    name="authd",
    path="/sbin/authd",
    needed=["libc.so.6"],
    imports=IMPORTS,
    main=authd_main,
    description="root-privileged daemon with the [3] heap-smash bug",
)


def overflow_distance(proc: SimProcess, name_buffer: int,
                      handler_record: int) -> int:
    """Bytes from the name buffer to the handler's function pointer."""
    return handler_record - name_buffer
