"""localed: a locale-record service with wide-string and record-IO bugs.

The existing victims exercise the byte-string attack surface (``gets``,
``strcpy``, ``sprintf``); localed covers the two classes that only a
*full-coverage* robust API can check: wide-character copies and
size×nmemb record reads.  It renders display names through ``wcsncpy``
and caches binary locale records through ``fread`` — both with the
classic length-from-the-wrong-side mistakes:

* ``WIDEN <name>`` — widens the name into a staging buffer, then copies
  it into the fixed 16-wchar display buffer with ``wcsncpy(display,
  staging, n)`` where **n is derived from the source length** (the bug):
  an over-long name overflows the display allocation in 4-byte units.
* ``LOAD <count>`` — ``fread(records, RECORD_SIZE, count, db)`` into an
  in-core cache sized for :data:`MAX_RECORDS` records, with ``count``
  taken straight from the request (the bug): the database file holds
  :data:`SEEDED_RECORDS` records, so a hostile count overflows the cache
  by size×nmemb bytes.
* ``QUIT`` — stop.

The service seeds its own database file at startup (``fopen``/``fwrite``)
so it runs without external fixtures.
"""

from __future__ import annotations

from typing import List

from repro.apps.base import SimApp
from repro.linker import LinkedImage

WCHAR_SIZE = 4
CMD_BUFFER = 128
NAME_WCHARS = 16        # the display buffer: 16 wchar_t = 64 bytes
RECORD_SIZE = 24
MAX_RECORDS = 4         # the in-core cache: 96 bytes
SEEDED_RECORDS = 32     # the database file: 768 bytes
DB_PATH = b"/var/lib/localed.db"

IMPORTS = [
    "malloc", "free", "gets", "puts", "sprintf", "strlen", "atoi",
    "fopen", "fclose", "fread", "fwrite", "wcsncpy", "wcslen",
]


def _seed_database(image: LinkedImage) -> None:
    """Write SEEDED_RECORDS fixed-size records (the startup fixture)."""
    proc = image.process
    handle = image.call("fopen", proc.alloc_cstring(DB_PATH),
                        proc.alloc_cstring(b"w"))
    record = image.call("malloc", RECORD_SIZE)
    for index in range(SEEDED_RECORDS):
        payload = (b"rec%02d" % index).ljust(RECORD_SIZE - 1, b".")
        proc.space.write(record, payload + b"\x00")
        image.call("fwrite", record, RECORD_SIZE, 1, handle)
    image.call("free", record)
    image.call("fclose", handle)


def localed_main(image: LinkedImage, argv: List[str]) -> int:
    """Serve locale requests from stdin until EOF/QUIT."""
    proc = image.process
    _seed_database(image)

    # fixed allocation order — the attack corpus replays it to aim
    cmd = image.call("malloc", CMD_BUFFER)
    display = image.call("malloc", NAME_WCHARS * WCHAR_SIZE)
    records = image.call("malloc", RECORD_SIZE * MAX_RECORDS)
    response = image.call("malloc", 64)
    db = image.call("fopen", proc.alloc_cstring(DB_PATH),
                    proc.alloc_cstring(b"r"))

    served = 0
    while True:
        if image.call("gets", cmd) == 0:
            break
        line = proc.read_cstring(cmd, limit=CMD_BUFFER)
        if not line:
            continue
        served += 1
        if line.startswith(b"QUIT"):
            break
        if line.startswith(b"WIDEN "):
            length = image.call("strlen", cmd + 6)
            staging = image.call("malloc", (length + 1) * WCHAR_SIZE)
            for index in range(length + 1):
                proc.space.write_u32(staging + index * WCHAR_SIZE,
                                     proc.space.read(cmd + 6 + index, 1)[0])
            # bug: n comes from the *source* length, not the display
            # buffer's 16-wchar capacity
            copied = image.call("wcsncpy", display, staging, length + 1)
            width = image.call("wcslen", display) if copied else 0
            image.call("free", staging)
            fmt = proc.alloc_cstring(b"widened %d chars")
            image.call("sprintf", response, fmt, width)
            image.call("puts", response)
        elif line.startswith(b"LOAD "):
            count = image.call("atoi", cmd + 5)
            if count < 1:
                image.call("puts", proc.alloc_cstring(b"localed: bad count"))
                continue
            # bug: count is attacker-controlled; the cache holds
            # MAX_RECORDS records but the file holds SEEDED_RECORDS
            loaded = image.call("fread", records, RECORD_SIZE, count, db)
            fmt = proc.alloc_cstring(b"loaded %d records")
            image.call("sprintf", response, fmt, loaded)
            image.call("puts", response)
        else:
            image.call("puts", proc.alloc_cstring(b"localed: bad command"))

    if db:
        image.call("fclose", db)
    image.call("free", records)
    image.call("free", display)
    image.call("free", cmd)
    fmt = proc.alloc_cstring(b"localed: served %d requests")
    image.call("sprintf", response, fmt, served)
    image.call("puts", response)
    image.call("free", response)
    return 0


LOCALED = SimApp(
    name="localed",
    path="/sbin/localed",
    needed=["libc.so.6"],
    imports=IMPORTS,
    main=localed_main,
    description="locale-record service with wcsncpy and fread "
                "size×nmemb bugs",
)
