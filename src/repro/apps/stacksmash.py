"""stackd: a service with the classic *stack* smashing bug [1].

The request handler reads input with ``gets()`` into a fixed stack
buffer; the saved return address lives a short distance above it, so an
over-long request overwrites it and the function "returns" to an
attacker-chosen address.  This complements the heap attack of demo 3.4:
HEALERS' heap size-table cannot bound a stack destination precisely, so
the effective defence is the stack-protector canary
(``stack_protect=True``), mirroring the division of labour between heap
containment wrappers [3] and libsafe/StackGuard-style protection [1].
"""

from __future__ import annotations

from typing import List

from repro.apps.base import SimApp
from repro.linker import LinkedImage
from repro.runtime import SimProcess

REQUEST_BUFFER = 64

IMPORTS = ["gets", "strlen", "puts", "sprintf", "malloc", "free"]


def _normal_return(proc: SimProcess, *args) -> int:
    """The legitimate continuation after the handler returns."""
    proc.handler_outcome = "returned"
    return 0


def _shell_gadget(proc: SimProcess, *args) -> int:
    """Attacker-desired code (see authd)."""
    proc.root_shell = True
    proc.handler_outcome = "root shell"
    return 0


def gadget_addresses(proc: SimProcess) -> dict:
    """Code addresses of this binary (read by the attack corpus)."""
    if not hasattr(proc, "_stackd_gadgets"):
        proc._stackd_gadgets = {
            "return": proc.register_callback(_normal_return),
            "shell": proc.register_callback(_shell_gadget),
        }
    return proc._stackd_gadgets


def stackd_main(image: LinkedImage, argv: List[str]) -> int:
    """Handle one request with an on-stack buffer and an unbounded read."""
    proc = image.process
    proc.root_shell = False
    proc.handler_outcome = "none"
    gadgets = gadget_addresses(proc)

    frame = proc.stack.push_frame("handle_request",
                                  return_address=gadgets["return"])
    buffer = proc.stack.alloca(REQUEST_BUFFER)
    del frame

    if image.call("gets", buffer) == 0:
        proc.stack.pop_frame()
        image.call("puts", proc.alloc_cstring(b"stackd: no input"))
        return 1
    length = image.call("strlen", buffer)

    # "return": the canary (when enabled) is verified inside pop_frame,
    # then control transfers to whatever the return slot now holds
    return_to = proc.stack.pop_frame()
    proc.resolve_callback(return_to)(proc)

    report = image.call("malloc", 64)
    fmt = proc.alloc_cstring(b"stackd: handled %d bytes, outcome=%s")
    image.call("sprintf", report, fmt, length,
               proc.alloc_cstring(proc.handler_outcome.encode()))
    image.call("puts", report)
    return 0


STACKD = SimApp(
    name="stackd",
    path="/sbin/stackd",
    needed=["libc.so.6"],
    imports=IMPORTS,
    main=stackd_main,
    description="service with a stack-smashing bug (return-address overwrite)",
)
