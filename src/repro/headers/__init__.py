"""C header parsing: prototype extraction for the HEALERS pipeline."""

from repro.headers.model import CType, Parameter, Prototype, pointer_to, scalar, void
from repro.headers.parser import (
    HeaderParser,
    ParseError,
    parse_header,
    parse_prototype,
)

__all__ = [
    "CType",
    "HeaderParser",
    "Parameter",
    "ParseError",
    "Prototype",
    "parse_header",
    "parse_prototype",
    "pointer_to",
    "scalar",
    "void",
]
