"""The simulated /usr/include tree.

Renders the standard headers (string.h, stdlib.h, …) as genuine C header
text — include guards, typedefs, comments, declarations — grouped the way
the real tree groups them.  The toolkit's prototype-extraction step
(Fig. 2's first box) *parses this text* with
:class:`~repro.headers.parser.HeaderParser`; nothing downstream consumes
the renderer's intermediate state, so header parsing is a real stage with
real failure modes, not a fiction.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.headers.model import Prototype
from repro.headers.parser import HeaderParser

_GUARD_NAMES = {
    "string.h": "_STRING_H",
    "strings.h": "_STRINGS_H",
    "stdlib.h": "_STDLIB_H",
    "stdio.h": "_STDIO_H",
    "ctype.h": "_CTYPE_H",
    "wchar.h": "_WCHAR_H",
    "wctype.h": "_WCTYPE_H",
}

_PREAMBLE = {
    "string.h": "typedef unsigned long size_t;\n",
    "stdlib.h": (
        "typedef unsigned long size_t;\n"
        "typedef struct { int quot; int rem; } div_t;\n"
    ),
    "stdio.h": (
        "typedef unsigned long size_t;\n"
        "typedef struct _IO_FILE FILE;\n"
    ),
    "wchar.h": (
        "typedef unsigned long size_t;\n"
        "typedef int wchar_t;\n"
        "typedef unsigned int wint_t;\n"
    ),
    "wctype.h": (
        "typedef unsigned int wint_t;\n"
        "typedef unsigned long wctrans_t;\n"
        "typedef unsigned long wctype_t;\n"
    ),
}


def render_header(name: str, prototypes: Iterable[Prototype]) -> str:
    """One header file's text from its declarations."""
    guard = _GUARD_NAMES.get(name, "_" + name.upper().replace(".", "_"))
    lines: List[str] = [
        f"/* {name} — simulated system header (HEALERS reproduction) */",
        f"#ifndef {guard}",
        f"#define {guard}",
        "",
    ]
    preamble = _PREAMBLE.get(name)
    if preamble:
        lines.append(preamble.rstrip("\n"))
        lines.append("")
    for proto in sorted(prototypes, key=lambda p: p.name):
        lines.append(f"extern {proto.declare()}")
    lines += ["", f"#endif /* {guard} */", ""]
    return "\n".join(lines)


def render_include_tree(prototypes: Iterable[Prototype]) -> Dict[str, str]:
    """header name → header text, grouping declarations by header."""
    grouped: Dict[str, List[Prototype]] = {}
    for proto in prototypes:
        grouped.setdefault(proto.header or "misc.h", []).append(proto)
    return {
        name: render_header(name, protos)
        for name, protos in sorted(grouped.items())
    }


def parse_include_tree(tree: Dict[str, str]) -> List[Prototype]:
    """Parse a rendered tree back to prototypes (one parser, shared
    typedef scope, as a compiler front end would accumulate them)."""
    parser = HeaderParser()
    prototypes: List[Prototype] = []
    for name, text in sorted(tree.items()):
        prototypes.extend(parser.parse(text, header=name))
    return prototypes
