"""Recursive-descent parser for C header declarations.

Produces :class:`~repro.headers.model.Prototype` objects for every global
function declared in a header.  The grammar subset covers what C library
headers actually contain: storage classes, qualified scalar and pointer
types, typedef names, array parameters (decayed to pointers), function
pointer parameters (qsort-style comparators), and varargs.

Unnamed parameters are assigned positional names ``a1``, ``a2``, … — the
same convention visible in the paper's Fig. 3 generated code
(``wctrans_t wctrans(const char* a1)``).
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.headers.lexer import Token, tokenize
from repro.headers.model import CType, Parameter, Prototype

#: typedef names assumed known, as a real parser would learn them from
#: included system headers
DEFAULT_TYPEDEFS = {
    "size_t",
    "ssize_t",
    "wchar_t",
    "wint_t",
    "wctrans_t",
    "wctype_t",
    "FILE",
    "va_list",
    "time_t",
    "clock_t",
    "div_t",
    "ldiv_t",
    "lldiv_t",
    "intptr_t",
    "uintptr_t",
    "ptrdiff_t",
    "off_t",
    "pid_t",
    "mode_t",
    "uid_t",
    "gid_t",
    "sig_atomic_t",
    "jmp_buf",
    "fpos_t",
    "locale_t",
}

_TYPE_KEYWORDS = {
    "void",
    "char",
    "short",
    "int",
    "long",
    "float",
    "double",
    "unsigned",
    "signed",
}

_QUALIFIERS = {"const", "volatile", "restrict"}
_STORAGE = {"extern", "static", "inline"}


class ParseError(ValueError):
    """Raised when a declaration cannot be parsed."""

    def __init__(self, message: str, token: Token):
        self.token = token
        super().__init__(f"line {token.line}: {message} (at {token.text!r})")


class HeaderParser:
    """Parses one header's text into prototypes (and learns typedefs)."""

    def __init__(self, typedefs: Optional[Set[str]] = None):
        self.typedefs: Set[str] = set(DEFAULT_TYPEDEFS)
        if typedefs:
            self.typedefs |= typedefs
        self._tokens: List[Token] = []
        self._pos = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def parse(self, source: str, header: str = "") -> List[Prototype]:
        """Parse ``source`` and return all function prototypes found."""
        self._tokens = tokenize(source)
        self._pos = 0
        prototypes: List[Prototype] = []
        while not self._peek().kind == "eof":
            if self._peek().is_keyword("typedef"):
                self._parse_typedef()
                continue
            proto = self._parse_declaration(header)
            if proto is not None:
                prototypes.append(proto)
        return prototypes

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _expect_punct(self, text: str) -> Token:
        token = self._advance()
        if not token.is_punct(text):
            raise ParseError(f"expected {text!r}", token)
        return token

    def _skip_past(self, text: str) -> None:
        depth = 0
        while True:
            token = self._advance()
            if token.kind == "eof":
                return
            if token.is_punct("(") or token.is_punct("{") or token.is_punct("["):
                depth += 1
            elif token.is_punct(")") or token.is_punct("}") or token.is_punct("]"):
                depth -= 1
            elif token.is_punct(text) and depth <= 0:
                return

    # ------------------------------------------------------------------
    # declarations
    # ------------------------------------------------------------------

    def _parse_typedef(self) -> None:
        """Register the typedef'd name; the aliased type is not tracked."""
        self._advance()  # 'typedef'
        name: Optional[str] = None
        while True:
            token = self._advance()
            if token.kind == "eof" or token.is_punct(";"):
                break
            if token.kind == "ident":
                name = token.text
        if name:
            self.typedefs.add(name)

    def _parse_declaration(self, header: str) -> Optional[Prototype]:
        base, const = self._parse_declspecs()
        if base is None:
            # not a declaration we understand; resynchronise at ';'
            self._skip_past(";")
            return None
        name, ctype, params = self._parse_declarator(base, const, allow_abstract=False)
        if params is None:
            # object declaration (e.g. `extern char **environ;`) — skip
            self._skip_past(";")
            return None
        token = self._advance()
        if token.is_punct("{"):
            # inline definition: skip the body
            depth = 1
            while depth and token.kind != "eof":
                token = self._advance()
                if token.is_punct("{"):
                    depth += 1
                elif token.is_punct("}"):
                    depth -= 1
        elif not token.is_punct(";"):
            raise ParseError("expected ';' after declaration", token)
        param_list, variadic = params
        return Prototype(
            name=name,
            return_type=ctype,
            params=param_list,
            variadic=variadic,
            header=header,
        )

    def _parse_declspecs(self) -> Tuple[Optional[str], bool]:
        """Parse type specifiers; returns (base spelling, const) or (None, _)."""
        const = False
        words: List[str] = []
        while True:
            token = self._peek()
            if token.kind == "keyword":
                if token.text in _STORAGE:
                    self._advance()
                    continue
                if token.text in _QUALIFIERS:
                    const = const or token.text == "const"
                    self._advance()
                    continue
                if token.text in ("struct", "union", "enum"):
                    self._advance()
                    tag = self._advance()
                    if tag.kind != "ident":
                        raise ParseError("expected tag name", tag)
                    words.append(f"{token.text} {tag.text}")
                    continue
                if token.text in _TYPE_KEYWORDS:
                    words.append(token.text)
                    self._advance()
                    continue
                return (None, const)
            if token.kind == "ident" and token.text in self.typedefs and not words:
                words.append(token.text)
                self._advance()
                continue
            break
        if not words:
            return (None, const)
        return (_normalise_base(words), const)

    def _parse_declarator(
        self, base: str, const: bool, allow_abstract: bool
    ) -> Tuple[str, CType, Optional[Tuple[List[Parameter], bool]]]:
        """Parse ``'*'* name suffix*``.

        Returns (name, type, params) where params is None for object
        declarators and (param_list, variadic) for function declarators.
        """
        depth = 0
        while True:
            token = self._peek()
            if token.is_punct("*"):
                depth += 1
                self._advance()
                while self._peek().kind == "keyword" and self._peek().text in _QUALIFIERS:
                    self._advance()
                continue
            break
        # function pointer declarator: ( * name? ) ( params )
        if self._peek().is_punct("(") and self._peek(1).is_punct("*"):
            return self._parse_function_pointer(base, const, depth)
        name = ""
        if self._peek().kind in ("ident", "keyword") and not self._peek().is_punct("("):
            token = self._peek()
            if token.kind == "ident" and token.text not in self.typedefs:
                name = self._advance().text
        params: Optional[Tuple[List[Parameter], bool]] = None
        while True:
            token = self._peek()
            if token.is_punct("(") and params is None:
                self._advance()
                params = self._parse_params()
            elif token.is_punct("["):
                self._advance()
                while not self._peek().is_punct("]"):
                    if self._peek().kind == "eof":
                        raise ParseError("unterminated array suffix", self._peek())
                    self._advance()
                self._expect_punct("]")
                depth += 1  # array parameter decays to pointer
            else:
                break
        if not name and not allow_abstract and params is not None:
            raise ParseError("missing function name", self._peek())
        return (name, CType(base, pointer_depth=depth, const=const), params)

    def _parse_function_pointer(
        self, base: str, const: bool, depth: int
    ) -> Tuple[str, CType, None]:
        self._expect_punct("(")
        self._expect_punct("*")
        name = ""
        if self._peek().kind == "ident":
            name = self._advance().text
        self._expect_punct(")")
        self._expect_punct("(")
        inner_params, variadic = self._parse_params()
        args = ", ".join(p.ctype.spelling for p in inner_params) or "void"
        if variadic:
            args += ", ..."
        ret = CType(base, pointer_depth=depth, const=const)
        spelling = f"{ret.spelling} (*)({args})"
        ctype = CType(base, pointer_depth=depth, const=const,
                      function_pointer=True, inner_spelling=spelling)
        return (name, ctype, None)

    def _parse_params(self) -> Tuple[List[Parameter], bool]:
        """Parse a parenthesised parameter list (the '(' is consumed)."""
        params: List[Parameter] = []
        variadic = False
        if self._peek().is_keyword("void") and self._peek(1).is_punct(")"):
            self._advance()
            self._advance()
            return (params, variadic)
        if self._peek().is_punct(")"):
            self._advance()
            return (params, variadic)
        while True:
            if self._peek().is_punct("..."):
                self._advance()
                variadic = True
            else:
                base, const = self._parse_declspecs()
                if base is None:
                    raise ParseError("expected parameter type", self._peek())
                name, ctype, inner = self._parse_declarator(
                    base, const, allow_abstract=True
                )
                if inner is not None:
                    # a parameter declared with function-declarator syntax
                    # (callback without (*)): treat as function pointer
                    args = ", ".join(p.ctype.spelling for p in inner[0]) or "void"
                    spelling = f"{ctype.spelling} (*)({args})"
                    ctype = CType(
                        ctype.base,
                        ctype.pointer_depth,
                        const=ctype.const,
                        function_pointer=True,
                        inner_spelling=spelling,
                    )
                params.append(Parameter(name=name or f"a{len(params) + 1}", ctype=ctype))
            token = self._advance()
            if token.is_punct(")"):
                break
            if not token.is_punct(","):
                raise ParseError("expected ',' or ')' in parameter list", token)
        named = [
            Parameter(p.name or f"a{i + 1}", p.ctype) for i, p in enumerate(params)
        ]
        return (named, variadic)


def _normalise_base(words: List[str]) -> str:
    """Canonicalise multi-word bases: 'long unsigned' -> 'unsigned long'."""
    if words == ["signed"]:
        return "int"
    if words == ["unsigned"]:
        return "unsigned int"
    if "unsigned" in words and words[0] != "unsigned":
        words = ["unsigned"] + [w for w in words if w != "unsigned"]
    if words and words[0] == "signed" and len(words) > 1 and words[1] != "char":
        words = words[1:]
    return " ".join(words)


def parse_header(source: str, header: str = "") -> List[Prototype]:
    """Parse one header's text (convenience wrapper)."""
    return HeaderParser().parse(source, header)


def parse_prototype(declaration: str) -> Prototype:
    """Parse a single declaration string into a Prototype."""
    text = declaration.strip()
    if not text.endswith(";"):
        text += ";"
    protos = HeaderParser().parse(text)
    if len(protos) != 1:
        raise ValueError(f"expected exactly one declaration in {declaration!r}")
    return protos[0]
