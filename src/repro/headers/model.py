"""C type and prototype model used across the toolkit.

HEALERS "parses the header files and manual pages from C libraries to
generate the prototype information for all global functions" (Section 2.2).
These classes are the output of that parsing step and the input to both the
fault-injection engine (which picks test values by C type) and the wrapper
generators (which need exact spellings to emit the Fig. 3 style C code).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: base types with known integer-ness (used to pick test-value generators)
INTEGER_BASES = {
    "char",
    "signed char",
    "unsigned char",
    "short",
    "unsigned short",
    "int",
    "unsigned int",
    "long",
    "unsigned long",
    "long long",
    "unsigned long long",
    "size_t",
    "ssize_t",
    "wchar_t",
    "wint_t",
    "wctrans_t",
    "wctype_t",
    "time_t",
    "clock_t",
    "intptr_t",
    "uintptr_t",
    "ptrdiff_t",
    "mode_t",
    "off_t",
    "pid_t",
    "uid_t",
    "gid_t",
}

FLOAT_BASES = {"float", "double", "long double"}

UNSIGNED_BASES = {
    "unsigned char",
    "unsigned short",
    "unsigned int",
    "unsigned long",
    "unsigned long long",
    "size_t",
    "wctrans_t",
    "wctype_t",
    "uintptr_t",
    "mode_t",
    "uid_t",
    "gid_t",
}


@dataclass(frozen=True)
class CType:
    """A (simplified) C type: base spelling + pointer depth + qualifiers.

    ``const`` records constness of the *pointee* for pointer types and of
    the value for scalars; deeper qualifier structure (``char * const *``)
    is flattened, which suffices for the C-library API surface.
    ``function_pointer`` marks callback parameters such as ``qsort``'s
    comparator; their inner signature is kept as an opaque spelling.
    """

    base: str
    pointer_depth: int = 0
    const: bool = False
    function_pointer: bool = False
    inner_spelling: str = ""

    @property
    def is_pointer(self) -> bool:
        return self.pointer_depth > 0 or self.function_pointer

    @property
    def is_void(self) -> bool:
        return self.base == "void" and self.pointer_depth == 0

    @property
    def is_void_pointer(self) -> bool:
        return self.base == "void" and self.pointer_depth >= 1

    @property
    def is_char_pointer(self) -> bool:
        return self.base in ("char",) and self.pointer_depth == 1

    @property
    def is_wide_char_pointer(self) -> bool:
        return self.base == "wchar_t" and self.pointer_depth == 1

    @property
    def is_integer(self) -> bool:
        return self.pointer_depth == 0 and self.base in INTEGER_BASES

    @property
    def is_unsigned(self) -> bool:
        return self.pointer_depth == 0 and self.base in UNSIGNED_BASES

    @property
    def is_float(self) -> bool:
        return self.pointer_depth == 0 and self.base in FLOAT_BASES

    def pointee(self) -> "CType":
        """The type pointed to (depth reduced by one)."""
        if self.pointer_depth == 0:
            raise ValueError(f"{self.spelling} is not a pointer")
        return CType(self.base, self.pointer_depth - 1, const=self.const)

    @property
    def spelling(self) -> str:
        """Canonical C spelling, e.g. ``const char *``."""
        if self.function_pointer:
            return self.inner_spelling or "void (*)(void)"
        parts = []
        if self.const:
            parts.append("const")
        parts.append(self.base)
        text = " ".join(parts)
        if self.pointer_depth:
            text += " " + "*" * self.pointer_depth
        return text

    def __str__(self) -> str:
        return self.spelling


@dataclass(frozen=True)
class Parameter:
    """One formal parameter of a prototype."""

    name: str
    ctype: CType

    def declare(self) -> str:
        """C declaration fragment, e.g. ``const char* a1``."""
        if self.ctype.function_pointer:
            spelling = self.ctype.inner_spelling
            if "(*)" in spelling:
                return spelling.replace("(*)", f"(*{self.name})", 1)
            return f"{spelling} {self.name}"
        return f"{self.ctype.spelling} {self.name}"


@dataclass
class Prototype:
    """A global function's declared interface.

    This is the "prototype information" of Fig. 2: the declared API, which
    is generally *weaker* than the robust API the fault-injection
    experiments derive (the paper's strcpy example).
    """

    name: str
    return_type: CType
    params: List[Parameter] = field(default_factory=list)
    variadic: bool = False
    header: str = ""

    @property
    def arity(self) -> int:
        return len(self.params)

    def declare(self) -> str:
        """Full C declaration, e.g. ``char * strcpy(char * dest, const char * src);``."""
        args: List[str] = [p.declare() for p in self.params]
        if self.variadic:
            args.append("...")
        if not args:
            args = ["void"]
        return f"{self.return_type.spelling} {self.name}({', '.join(args)});"

    def signature_key(self) -> Tuple[str, ...]:
        """Hashable shape key (return + param spellings) for grouping."""
        return tuple(
            [self.return_type.spelling] + [p.ctype.spelling for p in self.params]
        )


def void() -> CType:
    """The ``void`` type."""
    return CType("void")


def pointer_to(base: str, const: bool = False, depth: int = 1) -> CType:
    """Convenience constructor for pointer types."""
    return CType(base, pointer_depth=depth, const=const)


def scalar(base: str) -> CType:
    """Convenience constructor for non-pointer types."""
    return CType(base)


def find_parameter(proto: Prototype, name: str) -> Optional[Parameter]:
    """Look up a parameter of ``proto`` by name."""
    for param in proto.params:
        if param.name == name:
            return param
    return None
