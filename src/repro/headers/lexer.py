"""Tokenizer for C header declarations.

Handles the subset of C that appears in library headers: identifiers,
keywords, integer literals, punctuation, comments (both styles), and
preprocessor lines (skipped wholesale — the corpus headers are already
self-contained, so conditional compilation is not evaluated).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

PUNCTUATION = {
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ",",
    ";",
    "*",
    "...",
    "=",
}

#: operator characters that can appear inside skipped inline bodies or
#: constant expressions; lexed as generic 'op' tokens
OPERATOR_CHARS = set("+-/%<>!&|^~?:.")

KEYWORDS = {
    "extern",
    "static",
    "inline",
    "const",
    "volatile",
    "restrict",
    "unsigned",
    "signed",
    "struct",
    "union",
    "enum",
    "void",
    "char",
    "short",
    "int",
    "long",
    "float",
    "double",
    "typedef",
}


class LexError(ValueError):
    """Raised on input the lexer cannot tokenize."""

    def __init__(self, message: str, line: int):
        self.line = line
        super().__init__(f"line {line}: {message}")


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # 'ident', 'keyword', 'number', 'punct', 'eof'
    text: str
    line: int

    def is_punct(self, text: str) -> bool:
        return self.kind == "punct" and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind == "keyword" and self.text == text


def tokenize(source: str) -> List[Token]:
    """Tokenize header source into a token list ending with an EOF token."""
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    index = 0
    line = 1
    length = len(source)
    while index < length:
        char = source[index]
        if char == "\n":
            line += 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            continue
        # preprocessor line: skip to end of line (honouring continuations)
        if char == "#" and _at_line_start(source, index):
            while index < length and source[index] != "\n":
                if source[index] == "\\" and index + 1 < length and source[index + 1] == "\n":
                    index += 2
                    line += 1
                    continue
                index += 1
            continue
        if source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end < 0:
                raise LexError("unterminated block comment", line)
            line += source.count("\n", index, end)
            index = end + 2
            continue
        if source.startswith("...", index):
            yield Token("punct", "...", line)
            index += 3
            continue
        if char in PUNCTUATION:
            yield Token("punct", char, line)
            index += 1
            continue
        if char.isdigit():
            start = index
            while index < length and (source[index].isalnum() or source[index] in "xX"):
                index += 1
            yield Token("number", source[start:index], line)
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            text = source[start:index]
            yield Token("keyword" if text in KEYWORDS else "ident", text, line)
            continue
        if char in "\"'":
            # string/char literal: scan to the matching quote
            quote = char
            index += 1
            while index < length and source[index] != quote:
                if source[index] == "\\":
                    index += 1
                if index < length and source[index] == "\n":
                    line += 1
                index += 1
            if index >= length:
                raise LexError("unterminated literal", line)
            index += 1
            yield Token("literal", quote, line)
            continue
        if char in OPERATOR_CHARS:
            yield Token("op", char, line)
            index += 1
            continue
        raise LexError(f"unexpected character {char!r}", line)
    yield Token("eof", "", line)


def _at_line_start(source: str, index: int) -> bool:
    cursor = index - 1
    while cursor >= 0 and source[cursor] in " \t":
        cursor -= 1
    return cursor < 0 or source[cursor] == "\n"
