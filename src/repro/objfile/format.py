"""SimELF: a minimal dynamic-object container format.

Stands in for ELF in the library/application scanning demos (Section 3.1,
3.2, Fig. 4): the toolkit's scanner reads these containers to extract
 * the libraries an application is linked against (DT_NEEDED),
 * the undefined functions the application imports (the dynsym UND
   entries), and
 * the functions a shared library defines (the dynsym export view).

The format is deliberately binary — length-prefixed sections behind a
magic/version header — so the parsing side is a real parser with real
failure modes, not a pickle.

Layout (little endian)::

    0   4s   magic   b"SELF"
    4   H    version (1)
    6   H    type    (1 = executable, 2 = shared object)
    8   —    five string tables: soname, interp, needed, defined, undefined
             each: u32 count, then per entry u16 length + utf-8 bytes
             (soname and interp are tables of 0 or 1 entries)
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

MAGIC = b"SELF"
VERSION = 1

TYPE_EXEC = 1
TYPE_DYN = 2

_TYPE_NAMES = {TYPE_EXEC: "EXEC (executable)", TYPE_DYN: "DYN (shared object)"}


class ObjFormatError(ValueError):
    """The byte stream is not a valid SimELF container."""


@dataclass
class SimELF:
    """Parsed (or to-be-serialised) dynamic object."""

    path: str
    type: int = TYPE_EXEC
    soname: str = ""
    interp: str = ""
    needed: List[str] = field(default_factory=list)
    defined: List[str] = field(default_factory=list)
    undefined: List[str] = field(default_factory=list)

    @property
    def is_executable(self) -> bool:
        return self.type == TYPE_EXEC

    @property
    def is_shared_object(self) -> bool:
        return self.type == TYPE_DYN

    @property
    def is_dynamically_linked(self) -> bool:
        """Static executables have no interpreter and no NEEDED entries.

        HEALERS "only works for applications that are dynamically linked"
        — the scanner uses this to warn about unprotectable binaries.
        """
        return bool(self.interp) or bool(self.needed)

    def type_name(self) -> str:
        return _TYPE_NAMES.get(self.type, f"unknown ({self.type})")

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------

    def serialize(self) -> bytes:
        """Encode to the SimELF byte format."""
        out = bytearray()
        out += MAGIC
        out += struct.pack("<HH", VERSION, self.type)
        for table in (
            [self.soname] if self.soname else [],
            [self.interp] if self.interp else [],
            self.needed,
            self.defined,
            self.undefined,
        ):
            out += struct.pack("<I", len(table))
            for entry in table:
                data = entry.encode("utf-8")
                if len(data) > 0xFFFF:
                    raise ObjFormatError(f"string too long: {entry[:32]!r}…")
                out += struct.pack("<H", len(data))
                out += data
        return bytes(out)

    @classmethod
    def parse(cls, data: bytes, path: str = "") -> "SimELF":
        """Decode a SimELF container; raises ObjFormatError on bad input."""
        if len(data) < 8:
            raise ObjFormatError("truncated header")
        if data[:4] != MAGIC:
            raise ObjFormatError(f"bad magic {data[:4]!r} (not a SimELF object)")
        version, obj_type = struct.unpack_from("<HH", data, 4)
        if version != VERSION:
            raise ObjFormatError(f"unsupported version {version}")
        if obj_type not in (TYPE_EXEC, TYPE_DYN):
            raise ObjFormatError(f"unknown object type {obj_type}")
        offset = 8
        tables: List[List[str]] = []
        for _ in range(5):
            table, offset = cls._read_table(data, offset)
            tables.append(table)
        soname_tab, interp_tab, needed, defined, undefined = tables
        if len(soname_tab) > 1 or len(interp_tab) > 1:
            raise ObjFormatError("soname/interp tables must have 0 or 1 entries")
        return cls(
            path=path,
            type=obj_type,
            soname=soname_tab[0] if soname_tab else "",
            interp=interp_tab[0] if interp_tab else "",
            needed=needed,
            defined=defined,
            undefined=undefined,
        )

    @staticmethod
    def _read_table(data: bytes, offset: int) -> Tuple[List[str], int]:
        if offset + 4 > len(data):
            raise ObjFormatError("truncated table header")
        (count,) = struct.unpack_from("<I", data, offset)
        offset += 4
        if count > 1_000_000:
            raise ObjFormatError(f"implausible table size {count}")
        entries: List[str] = []
        for _ in range(count):
            if offset + 2 > len(data):
                raise ObjFormatError("truncated string length")
            (length,) = struct.unpack_from("<H", data, offset)
            offset += 2
            if offset + length > len(data):
                raise ObjFormatError("truncated string data")
            try:
                entries.append(data[offset : offset + length].decode("utf-8"))
            except UnicodeDecodeError as exc:
                raise ObjFormatError(f"invalid utf-8 in string table: {exc}") from exc
            offset += length
        return entries, offset


def build_executable(
    path: str,
    needed: List[str],
    undefined: List[str],
    interp: str = "/lib/sim-ld.so.1",
) -> SimELF:
    """Convenience constructor for an application binary."""
    return SimELF(
        path=path,
        type=TYPE_EXEC,
        interp=interp,
        needed=list(needed),
        undefined=sorted(set(undefined)),
    )


def build_shared_object(
    path: str,
    soname: str,
    defined: List[str],
    needed: Optional[List[str]] = None,
) -> SimELF:
    """Convenience constructor for a library binary."""
    return SimELF(
        path=path,
        type=TYPE_DYN,
        soname=soname,
        needed=list(needed or []),
        defined=sorted(set(defined)),
    )
