"""SimELF object format and the simulated system image."""

from repro.objfile.format import (
    MAGIC,
    TYPE_DYN,
    TYPE_EXEC,
    ObjFormatError,
    SimELF,
    build_executable,
    build_shared_object,
)
from repro.objfile.system import InstalledObject, SimSystem

__all__ = [
    "InstalledObject",
    "MAGIC",
    "ObjFormatError",
    "SimELF",
    "SimSystem",
    "TYPE_DYN",
    "TYPE_EXEC",
    "build_executable",
    "build_shared_object",
]
