"""The simulated system image: a file tree of SimELF binaries.

Demo 3.1 lets a user "list all libraries in the system" and demo 3.2 lets
them "browse through the list of files in the current system and select an
application program".  :class:`SimSystem` is that system: a path-indexed
store of serialized SimELF containers, with the runtime artefacts
(:class:`~repro.linker.SharedLibrary` objects for libraries, program
callables for executables) registered alongside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.linker.library import SharedLibrary
from repro.objfile.format import SimELF


@dataclass
class InstalledObject:
    """One binary on the simulated system."""

    path: str
    image: SimELF
    raw: bytes
    #: runtime artefact: the SharedLibrary for DYN objects, or the program
    #: entry callable for EXEC objects (None for opaque/data files)
    runtime: object = None


class SimSystem:
    """Path → binary store with library/application views."""

    def __init__(self) -> None:
        self._objects: Dict[str, InstalledObject] = {}
        self._plain_files: Dict[str, bytes] = {}

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------

    def install_library(self, image: SimELF,
                        library: Optional[SharedLibrary] = None) -> None:
        """Install a shared object (optionally with its runtime symbols)."""
        if not image.is_shared_object:
            raise ValueError(f"{image.path} is not a shared object")
        self._objects[image.path] = InstalledObject(
            path=image.path, image=image, raw=image.serialize(),
            runtime=library,
        )

    def install_executable(self, image: SimELF,
                           entry: Optional[Callable] = None) -> None:
        """Install an application binary (optionally with its entry point)."""
        if not image.is_executable:
            raise ValueError(f"{image.path} is not an executable")
        self._objects[image.path] = InstalledObject(
            path=image.path, image=image, raw=image.serialize(),
            runtime=entry,
        )

    def install_plain_file(self, path: str, content: bytes) -> None:
        """Install a non-SimELF file (scanners must reject these cleanly)."""
        self._plain_files[path] = content

    # ------------------------------------------------------------------
    # browsing (the Fig. 4 web-interface views)
    # ------------------------------------------------------------------

    def list_paths(self) -> List[str]:
        """Every file on the system, like a directory walk."""
        return sorted(list(self._objects) + list(self._plain_files))

    def list_libraries(self) -> List[SimELF]:
        """All shared objects (demo 3.1's library list)."""
        return sorted(
            (o.image for o in self._objects.values() if o.image.is_shared_object),
            key=lambda image: image.path,
        )

    def list_applications(self) -> List[SimELF]:
        """All executables (demo 3.2's application list)."""
        return sorted(
            (o.image for o in self._objects.values() if o.image.is_executable),
            key=lambda image: image.path,
        )

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------

    def read(self, path: str) -> bytes:
        """Raw bytes of any file (object or plain)."""
        if path in self._objects:
            return self._objects[path].raw
        if path in self._plain_files:
            return self._plain_files[path]
        raise FileNotFoundError(path)

    def object_at(self, path: str) -> Optional[InstalledObject]:
        return self._objects.get(path)

    def library_runtime(self, soname: str) -> Optional[SharedLibrary]:
        """Find an installed library's runtime symbols by soname."""
        for installed in self._objects.values():
            if (installed.image.is_shared_object
                    and installed.image.soname == soname
                    and isinstance(installed.runtime, SharedLibrary)):
                return installed.runtime
        return None

    def find_by_soname(self, soname: str) -> Optional[SimELF]:
        for installed in self._objects.values():
            if installed.image.soname == soname:
                return installed.image
        return None
