"""Write-ahead spool: crash-durable storage for acked documents.

The fabric's zero-loss contract is *acked implies stored-or-replayed*:
once a shipper has read ``OK`` for a frame, no crash or restart of the
collection service may lose the documents it carried.  The spool is the
mechanism — every document is appended to an on-disk segment file and
fsynced *before* the ack goes out, and a restarting server replays the
segments back into its store before accepting traffic.

Format (one record, all integers big-endian)::

    +--------+--------+----------------------+
    | length | crc32  | payload (length B)   |
    |  u32   |  u32   |                      |
    +--------+--------+----------------------+

A record is valid only when its full payload is present *and* the CRC
matches.  Replay walks segments in sequence order and stops at the
first short or corrupt record — the *torn tail* a crash mid-write
leaves behind — truncating the segment back to the last valid record
so the file is clean for whoever appends next.  Because acks are sent
only after fsync, a torn record is by construction un-acked: dropping
it loses nothing the fabric promised to keep.

Writes are buffered and group-committed: :meth:`SpoolWriter.append`
stages records in the file's userspace buffer and :meth:`commit`
flushes + fsyncs once for the whole group — the shard workers batch one
fsync per queue drain, not one per document.

Tamper evidence (optional): a writer given a deployment ``key``
HMAC-chains every record.  Each keyed segment opens with a marker
record (payload :data:`_MAGIC`), seeds its chain with
``HMAC(key, segment_basename)``, and stores each document as
``mac || body`` where ``mac = HMAC(key, previous_mac || body)`` — so a
forged body, a record spliced in from elsewhere, a reordering, or a
whole segment renamed into another spool all break the chain and
replay refuses with :class:`SpoolAuthenticationError`.  The CRC layer
underneath is unchanged: a torn tail (short or CRC-bad record) is
still the crash signature and still truncates silently, because a torn
record is by construction un-acked.  Spools written without a key stay
byte-identical to the legacy format and replay exactly as before.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

_RECORD = struct.Struct(">II")  # payload length, crc32

#: default bytes per segment before the writer rotates to a fresh file
SEGMENT_BYTES = 8 * 1024 * 1024

#: first-record payload marking a segment as HMAC-chained
_MAGIC = b"healers-spool-hmac-v1"

#: bytes of HMAC-SHA256 digest prefixed to each keyed record's payload
_MAC_SIZE = 32


class SpoolAuthenticationError(RuntimeError):
    """A spool record failed (or demanded) HMAC verification."""


def _chain_seed(key: bytes, path: str) -> bytes:
    """The segment's chain seed: its basename keyed under ``key``, so a
    segment moved into another spool (or renumbered) cannot verify."""
    return hmac.new(key, os.path.basename(path).encode(),
                    hashlib.sha256).digest()


def _chain_next(key: bytes, previous: bytes, body: bytes) -> bytes:
    return hmac.new(key, previous + body, hashlib.sha256).digest()


def _segment_name(name: str, sequence: int) -> str:
    return f"{name}-{sequence:08d}.wal"


def _segment_sequence(filename: str, name: str) -> Optional[int]:
    prefix, suffix = f"{name}-", ".wal"
    if not (filename.startswith(prefix) and filename.endswith(suffix)):
        return None
    digits = filename[len(prefix):-len(suffix)]
    return int(digits) if digits.isdigit() else None


def list_segments(directory: str, name: str) -> List[str]:
    """Absolute segment paths for one spool, in append order."""
    try:
        entries = os.listdir(directory)
    except FileNotFoundError:
        return []
    numbered = sorted(
        (seq, filename) for filename in entries
        if (seq := _segment_sequence(filename, name)) is not None
    )
    return [os.path.join(directory, filename) for _, filename in numbered]


@dataclass
class ReplayResult:
    """What one spool replay recovered (and what it had to drop)."""

    records: int = 0
    bytes_recovered: int = 0
    segments: int = 0
    #: segments whose tail was torn and truncated back to the last
    #: valid record — (path, valid_offset, original_size)
    truncated: List[Tuple[str, int, int]] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.truncated is None:
            self.truncated = []


class SpoolWriter:
    """Append-only, group-committed segment writer for one spool."""

    def __init__(self, directory: str, name: str = "spool",
                 segment_bytes: int = SEGMENT_BYTES, fsync: bool = True,
                 key: Optional[bytes] = None):
        self.directory = directory
        self.name = name
        self.segment_bytes = segment_bytes
        self.fsync = fsync
        self.key = key
        self._mac = b""
        os.makedirs(directory, exist_ok=True)
        existing = list_segments(directory, name)
        if existing:
            last = os.path.basename(existing[-1])
            next_seq = (_segment_sequence(last, name) or 0) + 1
        else:
            next_seq = 0
        self._sequence = next_seq
        self._handle = None
        self._written = 0
        #: records staged since the last :meth:`commit`
        self.uncommitted = 0
        #: records durably committed over this writer's lifetime
        self.committed = 0
        #: fsync calls issued (the batching evidence)
        self.syncs = 0

    # ------------------------------------------------------------------

    def _open_segment(self):
        path = os.path.join(self.directory,
                            _segment_name(self.name, self._sequence))
        self._sequence += 1
        self._written = 0
        handle = open(path, "ab")
        if self.key is not None:
            # keyed segments open with the marker record and seed the
            # chain from the segment's own name; the marker is not a
            # document, so it never counts toward uncommitted/committed
            self._mac = _chain_seed(self.key, path)
            record = _frame(_MAGIC)
            handle.write(record)
            self._written += len(record)
        return handle

    def append(self, payload: bytes) -> None:
        """Stage one record (durable only after :meth:`commit`)."""
        if self._handle is None or self._written >= self.segment_bytes:
            if self._handle is not None:
                self._commit_handle()
                self._handle.close()
            self._handle = self._open_segment()
        if self.key is not None:
            self._mac = _chain_next(self.key, self._mac, payload)
            payload = self._mac + payload
        record = _frame(payload)
        self._handle.write(record)
        self._written += len(record)
        self.uncommitted += 1

    def commit(self) -> int:
        """Flush + fsync everything staged; returns records made durable."""
        staged = self.uncommitted
        if staged and self._handle is not None:
            self._commit_handle()
        return staged

    def _commit_handle(self) -> None:
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self.syncs += 1
        self.committed += self.uncommitted
        self.uncommitted = 0

    def close(self) -> None:
        if self._handle is not None:
            self.commit()
            self._handle.close()
            self._handle = None


def _frame(payload: bytes) -> bytes:
    return _RECORD.pack(len(payload), zlib.crc32(payload)) + payload


def _replay_segment(path: str, result: ReplayResult, truncate: bool,
                    key: Optional[bytes] = None) -> Iterator[bytes]:
    size = os.path.getsize(path)
    valid_end = 0
    index = 0
    mac = b""
    with open(path, "rb") as handle:
        while True:
            header = handle.read(_RECORD.size)
            if len(header) < _RECORD.size:
                break
            length, crc = _RECORD.unpack(header)
            payload = handle.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                # the torn tail: a crash mid-write, by construction
                # un-acked — CRC handles corruption-by-accident, the
                # MAC layer below handles corruption-by-intent
                break
            valid_end += _RECORD.size + length
            if index == 0:
                if key is None:
                    if payload == _MAGIC:
                        raise SpoolAuthenticationError(
                            f"{path} is HMAC-chained; pass the "
                            f"deployment key to replay it"
                        )
                elif payload != _MAGIC:
                    raise SpoolAuthenticationError(
                        f"{path}: a deployment key was given but the "
                        f"segment carries no authentication marker "
                        f"(legacy CRC-only spool?)"
                    )
                else:
                    mac = _chain_seed(key, path)
                    index += 1
                    continue
            if key is not None:
                if len(payload) < _MAC_SIZE + 1:
                    raise SpoolAuthenticationError(
                        f"{path}: record {index} is too short to carry "
                        f"an authentication tag"
                    )
                body = payload[_MAC_SIZE:]
                mac = _chain_next(key, mac, body)
                if not hmac.compare_digest(payload[:_MAC_SIZE], mac):
                    raise SpoolAuthenticationError(
                        f"{path}: record {index} failed HMAC chain "
                        f"verification (forged, spliced or reordered)"
                    )
                payload = body
            index += 1
            result.records += 1
            result.bytes_recovered += len(payload)
            yield payload
    if valid_end < size:
        result.truncated.append((path, valid_end, size))
        if truncate:
            with open(path, "r+b") as handle:
                handle.truncate(valid_end)


def replay(directory: str, name: str = "spool", truncate: bool = True,
           key: Optional[bytes] = None
           ) -> Tuple[List[bytes], ReplayResult]:
    """Recover every committed payload of one spool, oldest first.

    Torn tails are truncated in place (unless ``truncate=False``), so a
    writer opened afterwards appends to a clean spool.  With ``key``,
    every record must verify against the segment's HMAC chain;
    without, an authenticated spool is refused rather than silently
    replayed unverified.
    """
    result = ReplayResult()
    payloads: List[bytes] = []
    for path in list_segments(directory, name):
        result.segments += 1
        payloads.extend(_replay_segment(path, result, truncate, key))
    return payloads, result
