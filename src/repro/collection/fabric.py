"""Fleet-scale async collection fabric.

The legacy :class:`~repro.collection.server.CollectionServer` spends a
thread and a blocking read loop on every reporter; at fleet scale (every
wrapped process shipping documents, serving apps pushing thousands of
requests/sec) that model runs out of threads long before it runs out of
CPU.  The fabric replaces it with:

* an :class:`IngestServer` — one ``selectors`` event loop multiplexing
  every connection through a per-connection *frame state machine* (no
  blocking ``_read_exactly``), feeding
* *N shard workers* — documents are hashed by application to a shard,
  so each shard's store partition and fleet aggregates have exactly one
  writer and per-app aggregation never contends,
* *credit-based backpressure* — each ack advertises the connection's
  remaining document credit (``OK <n> CREDIT <c>``); a well-behaved
  shipper paces itself, and one that overruns simply stops being read
  (TCP backpressure) instead of being dropped,
* a *write-ahead spool* (:mod:`repro.collection.spool`) — documents are
  fsynced to shard-owned segment files *before* the ack goes out, and a
  restarting server replays the spool, so *acked implies
  stored-or-replayed* holds across crashes.

Wire protocol v2 stays backward compatible: the legacy single
(length-prefixed) and ``HBAT`` batch frames are accepted verbatim, and
v2 acks still start with ``OK`` / ``OK <n>``.  Two frames are new:

* ``HBA2`` — a *sequenced* batch: magic, u16 shipper-id length, the
  shipper id, u64 sequence number, u32 count, then count
  length-prefixed documents.  Sequencing makes retries idempotent: a
  resend of an already-committed frame is acknowledged ``… DUP`` and
  not stored twice, so a shipper may retry through connection resets
  without ever duplicating or losing a document.
* ``HSTA`` — a stats query: the server answers with one
  length-prefixed JSON snapshot of the fleet rollup and its own
  counters.
"""

from __future__ import annotations

import json
import os
import selectors
import socket
import struct
import threading
import time
import zlib
from collections import deque
from queue import Empty, SimpleQueue
from typing import Dict, List, Optional, Tuple

from repro.collection.fleet import FleetAggregator
from repro.collection.server import (
    BATCH_MAGIC,
    MAX_BATCH_DOCUMENTS,
    MAX_DOCUMENT_BYTES,
    CollectionStore,
    StoredDocument,
)
from repro.collection.spool import SpoolWriter, replay as spool_replay

#: v2 sequenced-batch frame magic
FABRIC_MAGIC = b"HBA2"
#: stats-query frame magic
STATS_MAGIC = b"HSTA"
#: documents one connection may have un-acked before reads pause
CREDIT_LIMIT = 64

_U32 = struct.Struct(">I")
_U16 = struct.Struct(">H")
_SEQ = struct.Struct(">QII")  # sequence, doc index, doc count


class CollectionProtocolError(Exception):
    """The server answered a frame with an ``ERR`` line."""


def shard_of(application: str, shards: int) -> int:
    """Stable application→shard routing (crc32, not ``hash()``)."""
    return zlib.crc32(application.encode("utf-8", "replace")) % shards


def _application_hint(payload: bytes) -> str:
    """Cheap extraction of ``application="…"`` for shard routing.

    Full parsing happens on the shard worker; the event loop only needs
    a routing key, and a wrong hint merely routes to a different shard
    (correctness never depends on it).
    """
    head = payload[:256]
    marker = b'application="'
    start = head.find(marker)
    if start < 0:
        return ""
    start += len(marker)
    end = head.find(b'"', start)
    if end < 0:
        return ""
    return head[start:end].decode("utf-8", "replace")


# ----------------------------------------------------------------------
# spool record envelope
# ----------------------------------------------------------------------

def encode_spool_record(shipper: str, seq: int, index: int, count: int,
                        xml: bytes) -> bytes:
    """Envelope one document for the write-ahead spool."""
    shipper_bytes = shipper.encode("utf-8")
    return (_U16.pack(len(shipper_bytes)) + shipper_bytes
            + _SEQ.pack(seq, index, count) + xml)


def decode_spool_record(payload: bytes) -> Tuple[str, int, int, int, bytes]:
    """(shipper, seq, index, count, xml) from one spool payload."""
    (shipper_len,) = _U16.unpack_from(payload, 0)
    offset = _U16.size + shipper_len
    shipper = payload[_U16.size:offset].decode("utf-8")
    seq, index, count = _SEQ.unpack_from(payload, offset)
    return shipper, seq, index, count, payload[offset + _SEQ.size:]


def replay_documents(spool_dir: str, shards: int,
                     key: Optional[bytes] = None):
    """Recover committed documents + dedup state from a spool directory.

    Returns ``(documents, last_seq, result_by_shard)`` where
    ``documents`` is ``[(shipper, seq, xml_bytes), …]`` in recovery
    order and ``last_seq`` maps shipper id → highest fully-committed
    sequence.  A sequenced frame is *fully* committed only when every
    one of its documents is in the spool: a crash between two shard
    fsyncs leaves a partial frame, which was never acked — its records
    are dropped and its sequence forgotten, so the shipper's resend
    stores the whole frame exactly once.

    With ``key`` the spool must verify against its HMAC chain: forged,
    spliced or reordered records raise
    :class:`~repro.collection.spool.SpoolAuthenticationError` instead
    of silently entering the store.
    """
    unsequenced: List[Tuple[str, int, bytes]] = []
    frames: Dict[Tuple[str, int], Dict[int, bytes]] = {}
    counts: Dict[Tuple[str, int], int] = {}
    order: List[Tuple[str, int]] = []
    results = []
    # a previous run may have spooled under a different shard count:
    # recover every shard-* spool present, not just 0..shards-1
    try:
        entries = os.listdir(spool_dir)
    except FileNotFoundError:
        entries = []
    present = {
        int(name.split("-")[1])
        for name in entries
        if name.startswith("shard-") and name.endswith(".wal")
        and name.split("-")[1].isdigit()
    }
    for shard in sorted(present | set(range(shards))):
        payloads, result = spool_replay(spool_dir, name=f"shard-{shard}",
                                        key=key)
        results.append(result)
        for payload in payloads:
            shipper, seq, index, count, xml = decode_spool_record(payload)
            if not shipper and seq == 0:
                unsequenced.append(("", 0, xml))
                continue
            frame_key = (shipper, seq)
            if frame_key not in frames:
                frames[frame_key] = {}
                counts[frame_key] = count
                order.append(frame_key)
            frames[frame_key][index] = xml
    documents = list(unsequenced)
    last_seq: Dict[str, int] = {}
    for frame_key in order:
        shipper, seq = frame_key
        docs = frames[frame_key]
        if len(docs) != counts[frame_key]:
            continue  # partial (never acked) — the shipper will resend
        last_seq[shipper] = max(last_seq.get(shipper, 0), seq)
        for index in sorted(docs):
            documents.append((shipper, seq, docs[index]))
    return documents, last_seq, results


# ----------------------------------------------------------------------
# the per-connection frame state machine
# ----------------------------------------------------------------------

class _Connection:
    """One multiplexed connection: buffers + incremental frame parser."""

    __slots__ = ("sock", "server", "inbuf", "out", "needed", "parser",
                 "inflight", "paused", "closing", "discard", "mid_frame",
                 "alive")

    def __init__(self, sock: socket.socket, server: "IngestServer"):
        self.sock = sock
        self.server = server
        self.inbuf = bytearray()
        self.out = bytearray()
        self.inflight = 0          # un-acked documents on this connection
        self.paused = False        # read interest withdrawn (backpressure)
        self.closing = False
        self.discard = 0           # payload bytes to swallow after an ERR
        self.mid_frame = False
        self.alive = True
        self.parser = self._frames()
        self.needed = self.parser.send(None)

    # -- inbound ---------------------------------------------------

    def feed(self, data: bytes) -> None:
        if self.discard:
            take = min(len(data), self.discard)
            self.discard -= take
            data = data[take:]
            if self.discard or not data:
                return
        self.inbuf += data
        while (self.parser is not None and not self.closing
               and len(self.inbuf) >= self.needed):
            chunk = bytes(self.inbuf[:self.needed])
            del self.inbuf[:self.needed]
            try:
                self.needed = self.parser.send(chunk)
            except StopIteration:
                self.parser = None

    def _take(self, count: int):
        """Parser-side: yield for exactly ``count`` bytes (0 → empty)."""
        if count == 0:
            return b""
        return (yield count)

    def _frames(self):
        server = self.server
        while True:
            self.mid_frame = False
            header = yield 4
            self.mid_frame = True
            if header == STATS_MAGIC:
                server._answer_stats(self)
                continue
            if header == BATCH_MAGIC or header == FABRIC_MAGIC:
                shipper, seq = "", 0
                if header == FABRIC_MAGIC:
                    (shipper_len,) = _U16.unpack((yield 2))
                    raw = yield from self._take(shipper_len)
                    shipper = raw.decode("utf-8", "replace")
                    (seq,) = struct.unpack(">Q", (yield 8))
                (count,) = _U32.unpack((yield 4))
                if count == 0:
                    self._protocol_error(b"ERR empty batch\n",
                                         "empty batch frame rejected")
                    return
                if count > MAX_BATCH_DOCUMENTS:
                    self._protocol_error(
                        b"ERR bad count\n",
                        f"malformed batch count {count} rejected")
                    return
                if count > server.max_batch_documents:
                    self._protocol_error(
                        b"ERR batch too large\n",
                        f"batch of {count} documents rejected")
                    return
                payloads = []
                for _ in range(count):
                    (length,) = _U32.unpack((yield 4))
                    if length > server.max_document_bytes:
                        self._protocol_error(
                            b"ERR too large\n",
                            f"document of {length} bytes rejected",
                            drain=length)
                        return
                    payloads.append((yield from self._take(length)))
                self.mid_frame = False
                server._dispatch_frame(self, payloads, shipper=shipper,
                                       seq=seq, batch=True)
            else:
                (length,) = _U32.unpack(header)
                if length > server.max_document_bytes:
                    self._protocol_error(
                        b"ERR too large\n",
                        f"document of {length} bytes rejected",
                        drain=length)
                    return
                payload = yield from self._take(length)
                self.mid_frame = False
                server._dispatch_frame(self, [payload], shipper="",
                                       seq=0, batch=False)

    def _protocol_error(self, ack: bytes, detail: str,
                        drain: int = 0) -> None:
        """Answer a framing error, swallow the declared payload, close.

        The error line goes out immediately (a waiting client reads it
        at once, exactly like the legacy server); the declared payload
        is then discarded as it streams in, so a client mid-``sendall``
        completes its write instead of seeing an RST.
        """
        self.server.errors.append(detail)
        self.mid_frame = False  # the frame's fate is decided
        self.discard = drain
        self.closing = True
        self.server._send(self, ack)


# ----------------------------------------------------------------------
# in-flight frame bookkeeping (event loop <-> shard workers)
# ----------------------------------------------------------------------

class _Frame:
    """One dispatched ingest frame crossing the shard boundary."""

    __slots__ = ("conn", "count", "shipper", "seq", "batch", "slices",
                 "parsed", "pending", "phase", "error")

    def __init__(self, conn: _Connection, count: int, shipper: str,
                 seq: int, batch: bool):
        self.conn = conn
        self.count = count
        self.shipper = shipper
        self.seq = seq
        self.batch = batch
        #: shard index -> [(doc_index, payload_bytes), …]
        self.slices: Dict[int, List[Tuple[int, bytes]]] = {}
        #: shard index -> parsed StoredDocuments (validate phase output)
        self.parsed: Dict[int, List[StoredDocument]] = {}
        self.pending = 0
        self.phase = "validate"
        self.error: Optional[str] = None


class IngestServer:
    """Non-blocking sharded ingest fabric for profile documents.

    Drop-in for :class:`CollectionServer` (same ``store`` query surface,
    same legacy wire frames) plus sharding, credits, spooling and fleet
    aggregation.  ``shards`` store partitions each get a dedicated
    worker thread; the event loop never parses XML or touches disk.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 shards: int = 4,
                 spool_dir: Optional[str] = None,
                 credit_limit: int = CREDIT_LIMIT,
                 max_document_bytes: int = MAX_DOCUMENT_BYTES,
                 max_batch_documents: int = MAX_BATCH_DOCUMENTS,
                 fsync: bool = True,
                 backlog: int = 512,
                 spool_key: Optional[bytes] = None):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if credit_limit < 1:
            raise ValueError(
                f"credit limit must be >= 1, got {credit_limit}")
        self.shards = shards
        self.spool_dir = spool_dir
        self.credit_limit = credit_limit
        self.max_document_bytes = max_document_bytes
        self.max_batch_documents = max_batch_documents
        self.fsync = fsync
        self.spool_key = spool_key
        self.partitions = [CollectionStore() for _ in range(shards)]
        self.fleets = [FleetAggregator() for _ in range(shards)]
        self.store = ShardedStore(self)
        self.errors: List[str] = []
        self.replayed = 0
        self.duplicates = 0
        self.frames = 0
        self.connections_accepted = 0
        self._last_seq: Dict[str, int] = {}
        self._spools: List[Optional[SpoolWriter]] = [None] * shards
        self._queues: List[SimpleQueue] = [SimpleQueue()
                                           for _ in range(shards)]
        self._completions: deque = deque()
        self._connections: Dict[socket.socket, _Connection] = {}
        self._selector = selectors.DefaultSelector()
        self._waker_r, self._waker_w = socket.socketpair()
        self._waker_r.setblocking(False)
        self._stop = threading.Event()
        self._loop_thread: Optional[threading.Thread] = None
        self._shard_threads: List[threading.Thread] = []
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._socket.bind((host, port))
        self._socket.listen(backlog)
        self._socket.setblocking(False)
        self.address: Tuple[str, int] = self._socket.getsockname()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "IngestServer":
        if self.spool_dir:
            self._replay_spool()
            for shard in range(self.shards):
                self._spools[shard] = SpoolWriter(
                    self.spool_dir, name=f"shard-{shard}",
                    fsync=self.fsync, key=self.spool_key)
        for shard in range(self.shards):
            thread = threading.Thread(
                target=self._shard_loop, args=(shard,),
                name=f"healers-ingest-shard-{shard}", daemon=True)
            thread.start()
            self._shard_threads.append(thread)
        self._selector.register(self._socket, selectors.EVENT_READ,
                                ("accept", None))
        self._selector.register(self._waker_r, selectors.EVENT_READ,
                                ("wake", None))
        self._loop_thread = threading.Thread(
            target=self._loop, name="healers-ingest-loop", daemon=True)
        self._loop_thread.start()
        return self

    def _replay_spool(self) -> None:
        documents, last_seq, _ = replay_documents(self.spool_dir,
                                                  self.shards,
                                                  key=self.spool_key)
        self._last_seq = last_seq
        for _shipper, _seq, xml in documents:
            try:
                stored = CollectionStore._parse(
                    xml.decode("utf-8", "replace"))
            except Exception as exc:  # rotted spool entry: keep serving
                self.errors.append(f"spool replay parse failure: {exc}")
                continue
            shard = shard_of(stored.document.application, self.shards)
            self.partitions[shard].submit_parsed([stored])
            self.fleets[shard].ingest(stored.document)
            self.replayed += 1

    def stop(self) -> None:
        self._stop.set()
        self._wake()
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=10)
        for queue in self._queues:
            queue.put(("stop",))
        for thread in self._shard_threads:
            thread.join(timeout=10)
        for spool in self._spools:
            if spool is not None:
                spool.close()
        for conn in list(self._connections.values()):
            try:
                conn.sock.close()
            except OSError:
                pass
        self._connections.clear()
        try:
            self._selector.close()
        except Exception:
            pass
        self._socket.close()
        self._waker_r.close()
        self._waker_w.close()

    def __enter__(self) -> "IngestServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def stats(self) -> Dict[str, int]:
        return {
            "connections": self.connections_accepted,
            "frames": self.frames,
            "documents": len(self.store),
            "duplicates": self.duplicates,
            "replayed": self.replayed,
            "errors": len(self.errors),
            "shards": self.shards,
        }

    def fleet(self) -> FleetAggregator:
        """The merged fleet rollup across every shard."""
        return FleetAggregator.merged(self.fleets)

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------

    def _wake(self) -> None:
        try:
            self._waker_w.send(b"\x00")
        except OSError:
            pass

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                events = self._selector.select(timeout=0.2)
            except OSError:
                break
            for key, mask in events:
                kind, conn = key.data
                if kind == "accept":
                    self._accept()
                elif kind == "wake":
                    try:
                        while self._waker_r.recv(4096):
                            pass
                    except BlockingIOError:
                        pass
                    self._drain_completions()
                else:
                    if mask & selectors.EVENT_READ:
                        self._readable(conn)
                    if mask & selectors.EVENT_WRITE and conn.alive:
                        self._flush_out(conn)
            # completions may land while the selector sleeps on a
            # timeout; drain opportunistically as well
            if self._completions:
                self._drain_completions()

    def _accept(self) -> None:
        while True:
            try:
                sock, _addr = self._socket.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            conn = _Connection(sock, self)
            self._connections[sock] = conn
            self.connections_accepted += 1
            self._selector.register(sock, selectors.EVENT_READ,
                                    ("conn", conn))

    def _readable(self, conn: _Connection) -> None:
        try:
            data = conn.sock.recv(262144)
        except BlockingIOError:
            return
        except OSError:
            self._close(conn)
            return
        if not data:
            if conn.inbuf or conn.mid_frame:
                self.errors.append("peer closed mid-message")
            self._close(conn)
            return
        try:
            conn.feed(data)
        except Exception as exc:  # a bad client must not kill the loop
            self.errors.append(str(exc))
            self._close(conn)
            return
        self._update_interest(conn)

    def _send(self, conn: _Connection, data: bytes) -> None:
        if not conn.alive:
            return
        conn.out += data
        self._flush_out(conn)

    def _flush_out(self, conn: _Connection) -> None:
        if conn.out:
            try:
                sent = conn.sock.send(bytes(conn.out))
                del conn.out[:sent]
            except BlockingIOError:
                pass
            except OSError:
                self._close(conn)
                return
        if conn.closing and not conn.out and not conn.discard:
            self._close(conn)
            return
        self._update_interest(conn)

    def _update_interest(self, conn: _Connection) -> None:
        if not conn.alive:
            return
        mask = 0
        if not conn.paused or conn.discard or conn.closing:
            mask |= selectors.EVENT_READ
        if conn.out:
            mask |= selectors.EVENT_WRITE
        try:
            self._selector.modify(conn.sock, mask or selectors.EVENT_READ,
                                  ("conn", conn))
        except (KeyError, ValueError, OSError):
            pass

    def _close(self, conn: _Connection) -> None:
        if not conn.alive:
            return
        conn.alive = False
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        self._connections.pop(conn.sock, None)
        try:
            conn.sock.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # frame dispatch (event loop side)
    # ------------------------------------------------------------------

    def _dispatch_frame(self, conn: _Connection, payloads: List[bytes],
                        shipper: str, seq: int, batch: bool) -> None:
        self.frames += 1
        if shipper and seq:
            if seq <= self._last_seq.get(shipper, 0):
                self.duplicates += 1
                credit = max(0, self.credit_limit - conn.inflight)
                self._send(conn, b"OK %d CREDIT %d DUP\n"
                           % (len(payloads), credit))
                return
            self._last_seq[shipper] = seq
        frame = _Frame(conn, len(payloads), shipper, seq, batch)
        for index, payload in enumerate(payloads):
            shard = shard_of(_application_hint(payload), self.shards)
            frame.slices.setdefault(shard, []).append((index, payload))
        conn.inflight += len(payloads)
        if conn.inflight >= self.credit_limit and not conn.paused:
            conn.paused = True
            self._update_interest(conn)
        frame.pending = len(frame.slices)
        if len(frame.slices) == 1:
            # the common case: one shipper, one application, one shard —
            # validate + spool + commit in a single hop
            frame.phase = "commit"
            (shard, slice_docs), = frame.slices.items()
            self._queues[shard].put(("ingest", frame, shard, slice_docs))
        else:
            frame.phase = "validate"
            for shard, slice_docs in frame.slices.items():
                self._queues[shard].put(
                    ("validate", frame, shard, slice_docs))

    def _drain_completions(self) -> None:
        while True:
            try:
                frame, error = self._completions.popleft()
            except IndexError:
                return
            if error and frame.error is None:
                frame.error = error
            frame.pending -= 1
            if frame.pending:
                continue
            if frame.phase == "validate":
                if frame.error:
                    self._finish(frame)
                else:
                    frame.phase = "commit"
                    frame.pending = len(frame.slices)
                    for shard in frame.slices:
                        self._queues[shard].put(("commit", frame, shard))
            else:
                self._finish(frame)

    def _finish(self, frame: _Frame) -> None:
        conn = frame.conn
        if conn.alive:
            conn.inflight = max(0, conn.inflight - frame.count)
            credit = max(0, self.credit_limit - conn.inflight)
            if frame.error:
                self.errors.append(frame.error)
                self._send(conn, b"ERR malformed\n")
            elif frame.batch:
                self._send(conn, b"OK %d CREDIT %d\n"
                           % (frame.count, credit))
            else:
                self._send(conn, b"OK CREDIT %d\n" % credit)
            if conn.paused and conn.inflight < self.credit_limit:
                conn.paused = False
                self._update_interest(conn)

    def _answer_stats(self, conn: _Connection) -> None:
        snapshot = self.fleet().snapshot()
        snapshot["server"] = self.stats()
        snapshot["store_documents"] = len(self.store)
        payload = json.dumps(snapshot, sort_keys=True).encode("utf-8")
        self._send(conn, _U32.pack(len(payload)) + payload)

    # ------------------------------------------------------------------
    # shard workers
    # ------------------------------------------------------------------

    def _shard_loop(self, shard: int) -> None:
        queue = self._queues[shard]
        store = self.partitions[shard]
        fleet = self.fleets[shard]
        while True:
            batch = [queue.get()]
            while True:
                try:
                    batch.append(queue.get_nowait())
                except Empty:
                    break
            #: (frame, parsed_docs or None, error or None) awaiting the
            #: group fsync before their stores + completions happen
            landings: List[Tuple[_Frame, Optional[List[StoredDocument]],
                                 Optional[str]]] = []
            validations: List[Tuple[_Frame, Optional[str]]] = []
            spool = self._spools[shard]
            stop = False
            for message in batch:
                kind = message[0]
                if kind == "stop":
                    stop = True
                    continue
                if kind == "validate":
                    _, frame, _, slice_docs = message
                    error = self._parse_slice(frame, shard, slice_docs)
                    validations.append((frame, error))
                    continue
                if kind == "commit":
                    _, frame, _ = message
                    parsed = frame.parsed.get(shard, [])
                    self._spool_slice(spool, frame, shard)
                    landings.append((frame, parsed, None))
                    continue
                # "ingest": single-shard fast path
                _, frame, _, slice_docs = message
                error = self._parse_slice(frame, shard, slice_docs)
                if error is None:
                    self._spool_slice(spool, frame, shard)
                    landings.append((frame, frame.parsed[shard], None))
                else:
                    landings.append((frame, None, error))
            if spool is not None and landings:
                spool.commit()  # one fsync for the whole drain cycle
            for frame, parsed, error in landings:
                if parsed:
                    store.submit_parsed(parsed)
                    for stored in parsed:
                        fleet.ingest(stored.document)
                self._completions.append((frame, error))
            for frame, error in validations:
                self._completions.append((frame, error))
            if landings or validations:
                self._wake()
            if stop:
                return

    @staticmethod
    def _parse_slice(frame: _Frame, shard: int,
                     slice_docs: List[Tuple[int, bytes]]) -> Optional[str]:
        parsed = []
        for _index, payload in slice_docs:
            try:
                parsed.append(CollectionStore._parse(
                    payload.decode("utf-8")))
            except Exception as exc:
                return f"malformed document: {exc}"
        frame.parsed[shard] = parsed
        return None

    def _spool_slice(self, spool: Optional[SpoolWriter], frame: _Frame,
                     shard: int) -> None:
        if spool is None:
            return
        for index, payload in frame.slices[shard]:
            spool.append(encode_spool_record(
                frame.shipper, frame.seq, index, frame.count, payload))


class ShardedStore:
    """The fabric's store facade: one query surface over N partitions."""

    def __init__(self, server: IngestServer):
        self._server = server

    @property
    def partitions(self) -> List[CollectionStore]:
        return self._server.partitions

    def __len__(self) -> int:
        return sum(len(p) for p in self.partitions)

    @property
    def documents(self) -> List[StoredDocument]:
        merged: List[StoredDocument] = []
        for partition in self.partitions:
            with partition._lock:
                merged.extend(partition.documents)
        return merged

    def applications(self) -> List[str]:
        names = set()
        for partition in self.partitions:
            names.update(partition.applications())
        return sorted(names)

    def by_application(self, application: str) -> List[StoredDocument]:
        shard = shard_of(application, self._server.shards)
        return self.partitions[shard].by_application(application)

    def by_kind(self, kind: str) -> List[StoredDocument]:
        merged: List[StoredDocument] = []
        for partition in self.partitions:
            merged.extend(partition.by_kind(kind))
        return merged

    def aggregate_calls(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for partition in self.partitions:
            for name, calls in partition.aggregate_calls().items():
                totals[name] = totals.get(name, 0) + calls
        return totals


# ----------------------------------------------------------------------
# client side
# ----------------------------------------------------------------------

class FabricClient:
    """Persistent, credit-paced, exactly-once shipper connection.

    Ships sequenced ``HBA2`` frames over one connection, paces itself
    against the server's advertised credit, and retries through
    connection resets by resending un-acked frames — the server's
    sequence dedup makes the retry idempotent, so every shipped document
    lands exactly once however chaotic the network was.

    ``fault_hook`` is the chaos surface: a callable ``site -> bool``
    (see :meth:`repro.chaos.ChaosInjector.arm_fabric`) consulted before
    every send attempt for ``net-reset`` / ``net-slow`` faults.
    """

    _instances = 0

    def __init__(self, address: Tuple[str, int],
                 shipper: Optional[str] = None,
                 timeout: float = 5.0,
                 window: int = CREDIT_LIMIT,
                 retries: int = 16,
                 retry_backoff: float = 0.02,
                 fault_hook=None):
        FabricClient._instances += 1
        self.address = address
        self.shipper = shipper or (
            f"shipper-{os.getpid()}-{FabricClient._instances}")
        self.timeout = timeout
        self.window = max(1, window)
        self.retries = max(1, retries)
        self.retry_backoff = retry_backoff
        self.fault_hook = fault_hook
        self._seq = 0
        self._sock: Optional[socket.socket] = None
        self._rbuf = bytearray()
        #: (seq, frame_bytes, doc_count) awaiting acks, oldest first
        self._unacked: deque = deque()
        self.acked_documents = 0
        self.duplicate_acks = 0
        self.resets = 0
        self.last_credit: Optional[int] = None

    # -- connection management -------------------------------------

    def _ensure_connected(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection(self.address, timeout=self.timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        self._sock = sock
        self._rbuf.clear()
        # a fresh connection re-ships every un-acked frame; the server
        # dedups any that actually committed before the old one died
        for _seq, frame, _count in list(self._unacked):
            sock.sendall(frame)

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
            self._rbuf.clear()

    def _maybe_fault(self) -> None:
        hook = self.fault_hook
        if hook is None:
            return
        if hook("net-reset"):
            self.resets += 1
            self._drop_connection()
            raise ConnectionResetError("chaos: connection reset by peer")
        if hook("net-slow"):
            from repro.chaos.injector import SLOW_PEER_SECONDS
            time.sleep(SLOW_PEER_SECONDS)

    # -- frames ----------------------------------------------------

    def _build_frame(self, seq: int, payloads: List[bytes]) -> bytes:
        shipper_bytes = self.shipper.encode("utf-8")
        frame = bytearray(FABRIC_MAGIC)
        frame += _U16.pack(len(shipper_bytes))
        frame += shipper_bytes
        frame += struct.pack(">Q", seq)
        frame += _U32.pack(len(payloads))
        for payload in payloads:
            frame += _U32.pack(len(payload))
            frame += payload
        return bytes(frame)

    def _inflight_documents(self) -> int:
        return sum(count for _seq, _frame, count in self._unacked)

    def ship(self, documents: List[str], wait: bool = True) -> bool:
        """Ship one sequenced batch; True once acked (or queued un-waited).

        Blocks while the server's advertised credit is exhausted —
        pacing, not dropping, is the client half of backpressure.
        Raises :class:`CollectionProtocolError` on an ``ERR`` ack.
        """
        if not documents:
            return True
        payloads = [text.encode("utf-8") for text in documents]
        self._seq += 1
        seq = self._seq
        frame = self._build_frame(seq, payloads)
        queued = False
        attempts = 0
        while True:
            attempts += 1
            try:
                self._maybe_fault()
                self._ensure_connected()
                if not queued:
                    # credit pacing: drain acks until the new batch fits
                    while (self._unacked and
                           self._inflight_documents() + len(payloads)
                           > self.window):
                        self._read_ack()
                    self._sock.sendall(frame)
                    self._unacked.append((seq, frame, len(payloads)))
                    queued = True
                if wait:
                    while any(entry[0] == seq for entry in self._unacked):
                        self._read_ack()
                return True
            except CollectionProtocolError:
                raise
            except OSError:
                self._drop_connection()
                if attempts >= self.retries:
                    raise
                time.sleep(self.retry_backoff * min(attempts, 8))

    def flush(self) -> None:
        """Block until every shipped frame is acked."""
        attempts = 0
        while self._unacked:
            attempts += 1
            try:
                self._maybe_fault()
                self._ensure_connected()
                self._read_ack()
            except CollectionProtocolError:
                raise
            except OSError:
                self._drop_connection()
                if attempts >= self.retries:
                    raise
                time.sleep(self.retry_backoff * min(attempts, 8))

    def _read_line(self) -> bytes:
        while True:
            newline = self._rbuf.find(b"\n")
            if newline >= 0:
                line = bytes(self._rbuf[:newline])
                del self._rbuf[:newline + 1]
                return line
            data = self._sock.recv(4096)
            if not data:
                raise ConnectionError("server closed mid-ack")
            self._rbuf += data

    def _read_ack(self) -> None:
        line = self._read_line()
        tokens = line.split()
        if not self._unacked:
            raise CollectionProtocolError(f"unexpected ack: {line!r}")
        seq, _frame, count = self._unacked.popleft()
        if tokens and tokens[0] == b"OK":
            if b"CREDIT" in tokens:
                credit_at = tokens.index(b"CREDIT") + 1
                if credit_at < len(tokens):
                    self.last_credit = int(tokens[credit_at])
                    self.window = max(1, self.last_credit + count)
            if tokens[-1] == b"DUP":
                self.duplicate_acks += 1
            self.acked_documents += count
            return
        raise CollectionProtocolError(
            f"frame seq {seq} rejected: {line.decode('utf-8', 'replace')}")

    def close(self) -> None:
        try:
            if self._unacked and self._sock is not None:
                self.flush()
        finally:
            self._drop_connection()


def fetch_fleet_stats(address: Tuple[str, int],
                      timeout: float = 5.0) -> dict:
    """Query a live :class:`IngestServer` for its fleet snapshot."""
    with socket.create_connection(address, timeout=timeout) as sock:
        sock.sendall(STATS_MAGIC)
        header = _read_exactly(sock, 4)
        (length,) = _U32.unpack(header)
        payload = _read_exactly(sock, length)
    return json.loads(payload.decode("utf-8"))


def _read_exactly(sock: socket.socket, count: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < count:
        data = sock.recv(count - len(chunks))
        if not data:
            raise ConnectionError("peer closed mid-message")
        chunks.extend(data)
    return bytes(chunks)
