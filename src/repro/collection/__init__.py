"""Central collection of wrapper-emitted XML documents."""

from repro.collection.server import (
    CollectionServer,
    CollectionStore,
    StoredDocument,
    submit_document,
)

__all__ = [
    "CollectionServer",
    "CollectionStore",
    "StoredDocument",
    "submit_document",
]
