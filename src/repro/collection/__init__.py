"""Central collection of wrapper-emitted XML documents.

Two backends share the wire protocol: the legacy thread-per-connection
:class:`CollectionServer` (kept as the differential reference) and the
non-blocking sharded :class:`IngestServer` fabric with credit-based
backpressure, write-ahead spooling and fleet aggregation.
"""

from repro.collection.fabric import (
    CREDIT_LIMIT,
    FABRIC_MAGIC,
    STATS_MAGIC,
    CollectionProtocolError,
    FabricClient,
    IngestServer,
    ShardedStore,
    fetch_fleet_stats,
    replay_documents,
    shard_of,
)
from repro.collection.fleet import FleetAggregator, FleetCell
from repro.collection.server import (
    BATCH_MAGIC,
    MAX_BATCH_DOCUMENTS,
    MAX_DOCUMENT_BYTES,
    CollectionServer,
    CollectionStore,
    StoredDocument,
    submit_document,
    submit_documents,
)
from repro.collection.spool import (
    ReplayResult,
    SpoolAuthenticationError,
    SpoolWriter,
    replay,
)

__all__ = [
    "BATCH_MAGIC",
    "CREDIT_LIMIT",
    "CollectionProtocolError",
    "CollectionServer",
    "CollectionStore",
    "FABRIC_MAGIC",
    "FabricClient",
    "FleetAggregator",
    "FleetCell",
    "IngestServer",
    "MAX_BATCH_DOCUMENTS",
    "MAX_DOCUMENT_BYTES",
    "ReplayResult",
    "STATS_MAGIC",
    "ShardedStore",
    "SpoolAuthenticationError",
    "SpoolWriter",
    "StoredDocument",
    "fetch_fleet_stats",
    "replay",
    "replay_documents",
    "shard_of",
    "submit_document",
    "submit_documents",
]
