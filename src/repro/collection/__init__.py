"""Central collection of wrapper-emitted XML documents."""

from repro.collection.server import (
    BATCH_MAGIC,
    MAX_BATCH_DOCUMENTS,
    MAX_DOCUMENT_BYTES,
    CollectionServer,
    CollectionStore,
    StoredDocument,
    submit_document,
    submit_documents,
)

__all__ = [
    "BATCH_MAGIC",
    "CollectionServer",
    "CollectionStore",
    "MAX_BATCH_DOCUMENTS",
    "MAX_DOCUMENT_BYTES",
    "StoredDocument",
    "submit_document",
    "submit_documents",
]
