"""Fleet aggregation: rolling per-function statistics across shippers.

The paper's server "stores the gathered information for later
processing"; at fleet scale the processing worth doing continuously is
the rollup — for every ``(library, function, wrapper-preset)`` triple,
how many calls the whole fleet made, what the per-call execution time
looks like (p50/p99, ``MetricsSink``-style reservoir quantiles over
per-document means), and how often robustness violations fire relative
to calls.  Each ingest shard owns one :class:`FleetAggregator` and
updates it lock-free on commit; queries merge the shard aggregators.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.profiling.xmllog import ProfileDocument

#: per-key latency samples kept before the reservoir stops growing
#: (mirrors repro.telemetry.sinks.RESERVOIR_LIMIT)
RESERVOIR_LIMIT = 8192

#: aggregation key: (library, function, wrapper-preset)
FleetKey = Tuple[str, str, str]


def _quantile(samples: List[int], q: float) -> int:
    if not samples:
        return 0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[index]


@dataclass
class FleetCell:
    """The rollup for one (library, function, wrapper-preset) key."""

    calls: int = 0
    exectime_ns: int = 0
    violations: int = 0
    documents: int = 0
    #: per-document mean ns/call samples (reservoir-bounded)
    samples: List[int] = field(default_factory=list)

    def fold(self, calls: int, exectime_ns: int, violations: int,
             reservoir_limit: int = RESERVOIR_LIMIT) -> None:
        self.calls += calls
        self.exectime_ns += exectime_ns
        self.violations += violations
        self.documents += 1
        if calls and len(self.samples) < reservoir_limit:
            self.samples.append(exectime_ns // calls)

    @property
    def violation_rate(self) -> float:
        return self.violations / self.calls if self.calls else 0.0

    def quantiles(self) -> Tuple[int, int]:
        return _quantile(self.samples, 0.50), _quantile(self.samples, 0.99)

    def to_dict(self) -> Dict[str, Any]:
        p50, p99 = self.quantiles()
        return {
            "calls": self.calls,
            "exectime_ns": self.exectime_ns,
            "violations": self.violations,
            "violation_rate": round(self.violation_rate, 6),
            "documents": self.documents,
            "p50_ns_per_call": p50,
            "p99_ns_per_call": p99,
        }


class FleetAggregator:
    """Rolls profile documents up per (library, function, preset).

    A single ingest-shard worker is the only writer of its aggregator,
    so updates never contend; the internal lock exists purely so
    snapshots taken from query threads see consistent cells.
    """

    def __init__(self, reservoir_limit: int = RESERVOIR_LIMIT):
        self.reservoir_limit = reservoir_limit
        self.cells: Dict[FleetKey, FleetCell] = {}
        #: distinct shipper applications seen
        self.applications: set = set()
        self.documents = 0
        self._lock = threading.Lock()

    def ingest(self, document: ProfileDocument) -> None:
        """Fold one shipper document into the rollup."""
        violations_by_function: Dict[str, int] = {}
        for violation in document.violations:
            violations_by_function[violation.function] = (
                violations_by_function.get(violation.function, 0) + 1
            )
        with self._lock:
            self.documents += 1
            self.applications.add(document.application)
            for name, profile in document.functions.items():
                key = (document.library, name, document.wrapper_type)
                cell = self.cells.get(key)
                if cell is None:
                    cell = self.cells[key] = FleetCell()
                cell.fold(profile.calls, profile.exectime_ns,
                          violations_by_function.pop(name, 0),
                          self.reservoir_limit)
            # violations against functions the document never profiled
            # (e.g. a check-only wrapper) still count under their name
            for name, count in violations_by_function.items():
                key = (document.library, name, document.wrapper_type)
                cell = self.cells.get(key)
                if cell is None:
                    cell = self.cells[key] = FleetCell()
                cell.violations += count

    # ------------------------------------------------------------------
    # merging and querying
    # ------------------------------------------------------------------

    def merge(self, other: "FleetAggregator") -> "FleetAggregator":
        """Fold another aggregator (a shard's) into this one."""
        with other._lock:
            other_cells = {key: (cell.calls, cell.exectime_ns,
                                 cell.violations, cell.documents,
                                 list(cell.samples))
                           for key, cell in other.cells.items()}
            other_apps = set(other.applications)
            other_documents = other.documents
        with self._lock:
            self.documents += other_documents
            self.applications |= other_apps
            for key, (calls, ns, violations, documents,
                      samples) in other_cells.items():
                cell = self.cells.get(key)
                if cell is None:
                    cell = self.cells[key] = FleetCell()
                cell.calls += calls
                cell.exectime_ns += ns
                cell.violations += violations
                cell.documents += documents
                room = self.reservoir_limit - len(cell.samples)
                if room > 0:
                    cell.samples.extend(samples[:room])
        return self

    @classmethod
    def merged(cls, aggregators) -> "FleetAggregator":
        total = cls()
        for aggregator in aggregators:
            total.merge(aggregator)
        return total

    def snapshot(self) -> Dict[str, Any]:
        """A plain-data, JSON-serialisable view of the whole rollup."""
        with self._lock:
            rows = {
                "|".join(key): cell.to_dict()
                for key, cell in sorted(self.cells.items())
            }
            return {
                "documents": self.documents,
                "applications": len(self.applications),
                "keys": len(rows),
                "cells": rows,
            }

    def rows(self) -> List[Tuple[FleetKey, FleetCell]]:
        with self._lock:
            return sorted(self.cells.items())

    def describe(self, top: int = 15) -> str:
        """Human-readable fleet table (the ``collect stats`` output)."""
        with self._lock:
            documents, applications = self.documents, len(self.applications)
            busiest = sorted(self.cells.items(),
                             key=lambda item: -item[1].calls)[:top]
        lines = [
            f"[fleet] {documents} documents from {applications} "
            f"application(s), {len(self.cells)} (library, function, "
            f"wrapper) keys"
        ]
        for (library, function, wrapper), cell in busiest:
            p50, p99 = cell.quantiles()
            lines.append(
                f"[fleet]   {library:<12} {function:<16} {wrapper:<12} "
                f"{cell.calls:>8} calls  p50 {p50:>7} ns  p99 {p99:>7} ns"
                f"  viol {cell.violation_rate:.2%}"
            )
        return "\n".join(lines)
