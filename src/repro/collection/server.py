"""Central collection server for wrapper-emitted XML documents.

"Just before the application terminates, the collection code is called to
send the gathered information to a central server. … Such information is
then stored for later processing."

The server speaks a minimal length-prefixed protocol over TCP and files
every document into a :class:`CollectionStore`, extracting — as the
paper describes — which functions were wrapped and what kinds of
information were collected.  Two frame types share the wire:

* **single** — 4-byte big-endian length, then the UTF-8 XML document
  (the original one-document-per-connection form);
* **batch**  — the 4-byte magic ``HBAT``, a 4-byte document count, then
  that many length-prefixed documents.  One connection ships a whole
  fleet's worth of documents; the batch is validated atomically and
  acknowledged with ``OK <count>``.

Oversized or malformed frames are answered with an ``ERR`` protocol
response (after draining the declared payload, so well-behaved clients
read the error instead of a connection reset).  An in-process store is
also usable directly for tests and single-machine runs.
"""

from __future__ import annotations

import socket
import struct
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.profiling.xmllog import ProfileDocument

MAX_DOCUMENT_BYTES = 16 * 1024 * 1024
#: documents one batch frame may carry
MAX_BATCH_DOCUMENTS = 4096
#: the batch-frame magic; as a big-endian length it exceeds any
#: permitted document size, so pre-batch servers reject it cleanly
BATCH_MAGIC = b"HBAT"


@dataclass
class StoredDocument:
    """One received document plus the extracted index entries."""

    raw_xml: str
    document: ProfileDocument
    wrapped_functions: List[str]
    kinds: List[str]


@dataclass
class CollectionStore:
    """Store + incremental index of received profile documents.

    Every index (per-application, per-kind, per-function call totals) is
    maintained on :meth:`submit`, so the query methods are dictionary
    lookups instead of full rescans of the document list — at fleet
    scale the store holds documents from thousands of shippers and the
    aggregation endpoints are hit per ack, not per report.  The rescan
    implementations are kept (``_rescan_*``) as the reference the
    regression tests compare against.
    """

    documents: List[StoredDocument] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    _by_application: Dict[str, List[StoredDocument]] = field(
        default_factory=dict)
    _by_kind: Dict[str, List[StoredDocument]] = field(default_factory=dict)
    _call_totals: Dict[str, int] = field(default_factory=dict)

    def submit(self, xml_text: str) -> StoredDocument:
        """Parse, index and keep one document (raises on malformed XML)."""
        stored = self._parse(xml_text)
        with self._lock:
            self._land(stored)
        return stored

    def submit_many(self, xml_texts: List[str]) -> List[StoredDocument]:
        """Atomically store a batch: all parse first, then all land."""
        parsed = [self._parse(text) for text in xml_texts]
        with self._lock:
            for stored in parsed:
                self._land(stored)
        return parsed

    def submit_parsed(self, parsed: List[StoredDocument]) -> None:
        """Land already-parsed documents (the fabric's shard commit path)."""
        with self._lock:
            for stored in parsed:
                self._land(stored)

    def _land(self, stored: StoredDocument) -> None:
        """Append one parsed document and update every index (locked)."""
        self.documents.append(stored)
        self._by_application.setdefault(
            stored.document.application, []).append(stored)
        for kind in stored.kinds:
            self._by_kind.setdefault(kind, []).append(stored)
        totals = self._call_totals
        for name, profile in stored.document.functions.items():
            totals[name] = totals.get(name, 0) + profile.calls

    @staticmethod
    def _parse(xml_text: str) -> StoredDocument:
        document = ProfileDocument.from_xml(xml_text)
        return StoredDocument(
            raw_xml=xml_text,
            document=document,
            wrapped_functions=sorted(document.functions),
            kinds=document.collected_kinds(),
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self.documents)

    def by_application(self, application: str) -> List[StoredDocument]:
        with self._lock:
            return list(self._by_application.get(application, ()))

    def by_kind(self, kind: str) -> List[StoredDocument]:
        with self._lock:
            return list(self._by_kind.get(kind, ()))

    def applications(self) -> List[str]:
        with self._lock:
            return sorted(self._by_application)

    def aggregate_calls(self) -> Dict[str, int]:
        """Total call counts per function across every stored document."""
        with self._lock:
            return dict(self._call_totals)

    # ------------------------------------------------------------------
    # rescan reference paths (regression oracles for the indexes)
    # ------------------------------------------------------------------

    def _rescan_by_application(self, application: str) -> List[StoredDocument]:
        with self._lock:
            return [
                d for d in self.documents
                if d.document.application == application
            ]

    def _rescan_aggregate_calls(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        with self._lock:
            for stored in self.documents:
                for name, profile in stored.document.functions.items():
                    totals[name] = totals.get(name, 0) + profile.calls
        return totals


class CollectionServer:
    """Threaded TCP acceptor feeding a :class:`CollectionStore`.

    Each accepted connection is served on its own thread, so one slow or
    stalled client (the 5-second read timeout) never blocks the other
    reporters of a fleet; the store itself serialises index updates.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 store: Optional[CollectionStore] = None,
                 backlog: int = 64,
                 max_document_bytes: int = MAX_DOCUMENT_BYTES,
                 max_batch_documents: int = MAX_BATCH_DOCUMENTS):
        self.store = store if store is not None else CollectionStore()
        self.max_document_bytes = max_document_bytes
        self.max_batch_documents = max_batch_documents
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._socket.bind((host, port))
        self._socket.listen(backlog)
        self._socket.settimeout(0.2)
        self.address: Tuple[str, int] = self._socket.getsockname()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._handlers: List[threading.Thread] = []
        self.errors: List[str] = []

    # ------------------------------------------------------------------

    def start(self) -> "CollectionServer":
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
        for handler in self._handlers:
            handler.join(timeout=5)
        self._socket.close()

    def __enter__(self) -> "CollectionServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def _serve(self) -> None:
        while not self._stop.is_set():
            try:
                connection, _ = self._socket.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            handler = threading.Thread(
                target=self._handle_connection, args=(connection,),
                daemon=True,
            )
            self._handlers = [t for t in self._handlers if t.is_alive()]
            self._handlers.append(handler)
            handler.start()

    def _handle_connection(self, connection: socket.socket) -> None:
        try:
            self._handle(connection)
        except Exception as exc:  # a bad client must not kill the server
            self.errors.append(str(exc))
        finally:
            connection.close()

    def _handle(self, connection: socket.socket) -> None:
        connection.settimeout(5)
        header = self._read_exactly(connection, 4)
        if header == BATCH_MAGIC:
            self._handle_batch(connection)
            return
        (length,) = struct.unpack(">I", header)
        if length > self.max_document_bytes:
            self._reject_oversized(connection, length)
        payload = self._read_exactly(connection, length)
        try:
            self.store.submit(payload.decode("utf-8"))
        except Exception as exc:
            connection.sendall(b"ERR malformed\n")
            raise ValueError(f"malformed document: {exc}") from exc
        connection.sendall(b"OK\n")

    def _handle_batch(self, connection: socket.socket) -> None:
        (count,) = struct.unpack(">I", self._read_exactly(connection, 4))
        if count == 0:
            # a zero-count frame is a client bug, not a no-op: answering
            # OK 0 would let a broken batcher believe it shipped
            connection.sendall(b"ERR empty batch\n")
            raise ValueError("empty batch frame rejected")
        if count > MAX_BATCH_DOCUMENTS:
            # beyond the protocol-wide cap no configuration accepts it:
            # the count field itself is malformed (a desynced client)
            connection.sendall(b"ERR bad count\n")
            raise ValueError(f"malformed batch count {count} rejected")
        if count > self.max_batch_documents:
            connection.sendall(b"ERR batch too large\n")
            raise ValueError(f"batch of {count} documents rejected")
        documents: List[str] = []
        for _ in range(count):
            header = self._read_exactly(connection, 4)
            (length,) = struct.unpack(">I", header)
            if length > self.max_document_bytes:
                self._reject_oversized(connection, length)
            payload = self._read_exactly(connection, length)
            documents.append(payload.decode("utf-8"))
        try:
            self.store.submit_many(documents)
        except Exception as exc:
            connection.sendall(b"ERR malformed\n")
            raise ValueError(f"malformed batch: {exc}") from exc
        connection.sendall(b"OK %d\n" % count)

    def _reject_oversized(self, connection: socket.socket,
                          length: int) -> None:
        """Answer an oversized frame with a protocol error, not a reset.

        The error line goes out immediately (a waiting client reads it
        at once); the declared payload is then drained and discarded so
        a client mid-``sendall`` completes its write too — closing with
        unread bytes in the receive buffer would turn into an RST on
        the client side instead of a readable protocol error.
        """
        connection.sendall(b"ERR too large\n")
        self._discard(connection, length)
        raise ValueError(f"document of {length} bytes rejected")

    @staticmethod
    def _discard(connection: socket.socket, count: int) -> None:
        remaining = count
        try:
            while remaining > 0:
                data = connection.recv(min(65536, remaining))
                if not data:
                    return
                remaining -= len(data)
        except OSError:
            return  # slow or vanished sender: reply with what we can

    @staticmethod
    def _read_exactly(connection: socket.socket, count: int) -> bytes:
        chunks = bytearray()
        while len(chunks) < count:
            data = connection.recv(count - len(chunks))
            if not data:
                raise ConnectionError("peer closed mid-message")
            chunks.extend(data)
        return bytes(chunks)


def submit_document(address: Tuple[str, int], xml_text: str,
                    timeout: float = 5.0) -> bool:
    """Client side: send one document; True on server acknowledgement."""
    payload = xml_text.encode("utf-8")
    with socket.create_connection(address, timeout=timeout) as connection:
        connection.sendall(struct.pack(">I", len(payload)))
        connection.sendall(payload)
        reply = connection.recv(16)
    return reply.startswith(b"OK")


def submit_documents(address: Tuple[str, int], xml_texts: List[str],
                     timeout: float = 5.0) -> bool:
    """Client side: ship a whole batch in one ``HBAT`` frame.

    True when the server acknowledged every document in the batch.
    """
    if not xml_texts:
        return True
    frame = bytearray(BATCH_MAGIC)
    frame += struct.pack(">I", len(xml_texts))
    for text in xml_texts:
        payload = text.encode("utf-8")
        frame += struct.pack(">I", len(payload))
        frame += payload
    with socket.create_connection(address, timeout=timeout) as connection:
        connection.sendall(bytes(frame))
        reply = connection.recv(32)
    return reply.startswith(b"OK %d" % len(xml_texts))
