"""Fault taxonomy for the simulated C runtime.

The HEALERS fault-injection engine classifies the behaviour of a library
function under a given argument vector.  The taxonomy follows the CRASH
severity scale used by Ballista (Koopman & DeVale [6]), which is the
methodology HEALERS adopts for its automated robustness experiments:

* ``CRASH``  -- the process took a fatal signal (segmentation fault, bus
  error) and would have been killed by the operating system.
* ``HANG``   -- the call never returned (simulated by exhausting the
  process's instruction fuel).
* ``ABORT``  -- the process terminated itself (``abort()``, heap-consistency
  failure, stack-smashing detection).
* ``ERROR``  -- the function returned an error indication (error return
  value and/or ``errno``); this is *robust* behaviour.
* ``PASS``   -- the function returned normally.

Exceptions raised by the simulator map onto these outcomes; the sandbox in
:mod:`repro.runtime.sandbox` performs the classification.
"""

from __future__ import annotations

import enum


class Outcome(enum.Enum):
    """Classification of one fault-injection probe (CRASH scale)."""

    PASS = "pass"
    ERROR = "error"
    SILENT = "silent"
    ABORT = "abort"
    HANG = "hang"
    CRASH = "crash"

    @property
    def is_robustness_failure(self) -> bool:
        """True for outcomes that count as robustness failures.

        Returning an error code for an invalid argument is the *desired*
        behaviour; crashing, hanging, aborting — or silently corrupting
        state (the Ballista "Silent" class, detected by post-probe heap
        validation) — is a robustness failure.
        """
        return self in (Outcome.CRASH, Outcome.HANG, Outcome.ABORT,
                        Outcome.SILENT)

    @property
    def severity(self) -> int:
        """Rank outcomes from benign (0) to catastrophic (5)."""
        order = {
            Outcome.PASS: 0,
            Outcome.ERROR: 1,
            Outcome.SILENT: 2,
            Outcome.ABORT: 3,
            Outcome.HANG: 4,
            Outcome.CRASH: 5,
        }
        return order[self]


class SimulatorError(Exception):
    """Base class for all faults raised by the simulated runtime."""

    outcome = Outcome.CRASH


class MemoryFault(SimulatorError):
    """Base class for memory-access faults."""


class SegmentationFault(MemoryFault):
    """Access to an unmapped address or one lacking the needed permission.

    Mirrors SIGSEGV delivery in a native process.
    """

    outcome = Outcome.CRASH

    def __init__(self, address: int, access: str = "read", detail: str = ""):
        self.address = address
        self.access = access
        self.detail = detail
        message = f"segmentation fault: {access} at {address:#x}"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)


class BusError(MemoryFault):
    """Misaligned access where alignment is required (SIGBUS)."""

    outcome = Outcome.CRASH

    def __init__(self, address: int, alignment: int):
        self.address = address
        self.alignment = alignment
        super().__init__(
            f"bus error: address {address:#x} not aligned to {alignment}"
        )


class HeapCorruption(SimulatorError):
    """The allocator found inconsistent chunk metadata.

    glibc calls ``abort()`` when it detects heap corruption, so this is an
    ABORT-class fault rather than a crash.
    """

    outcome = Outcome.ABORT

    def __init__(self, address: int, reason: str):
        self.address = address
        self.reason = reason
        super().__init__(f"heap corruption at {address:#x}: {reason}")


class DoubleFree(HeapCorruption):
    """``free()`` called on a chunk that is not currently allocated."""

    def __init__(self, address: int):
        super().__init__(address, "double free or invalid free")


class InvalidFree(HeapCorruption):
    """``free()`` called on a pointer that was never returned by malloc."""

    def __init__(self, address: int):
        super().__init__(address, "invalid pointer passed to free")


class OutOfFuel(SimulatorError):
    """The process exhausted its instruction budget: a simulated hang.

    Native fault-injection harnesses kill a probe after a watchdog timeout
    and classify it as a hang; fuel exhaustion is the deterministic
    equivalent.
    """

    outcome = Outcome.HANG

    def __init__(self, consumed: int):
        self.consumed = consumed
        super().__init__(f"out of fuel after {consumed} simulated steps")


class WatchdogTimeout(SimulatorError):
    """A wall-clock watchdog killed a probe that never returned.

    The native harness's counterpart to :class:`OutOfFuel`: fuel bounds
    *simulated* work deterministically, while the campaign watchdog bounds
    *host* wall time — a worker stuck in the harness itself (not in the
    simulated program) is killed and its probes classified as hangs.
    """

    outcome = Outcome.HANG

    def __init__(self, seconds: float, where: str = "probe"):
        self.seconds = seconds
        self.where = where
        super().__init__(
            f"watchdog killed {where} after {seconds:g}s wall clock"
        )


class Aborted(SimulatorError):
    """The process called ``abort()`` or an assertion failed."""

    outcome = Outcome.ABORT

    def __init__(self, reason: str = "abort() called"):
        self.reason = reason
        super().__init__(reason)


class StackSmashingDetected(Aborted):
    """A stack canary was found clobbered (stack-protector behaviour)."""

    def __init__(self, frame: str = "?"):
        super().__init__(f"stack smashing detected in frame {frame!r}")


class CanaryViolation(Aborted):
    """A heap canary was found clobbered by the security wrapper."""

    def __init__(self, address: int):
        self.address = address
        super().__init__(f"heap canary clobbered for chunk at {address:#x}")


class SecurityViolation(Aborted):
    """The security wrapper blocked an operation (e.g. overflowing write).

    HEALERS' security wrapper terminates the attacked program; termination
    is an ABORT-class event from the process's point of view, but — unlike a
    successful exploit — it is a *contained* failure.
    """

    def __init__(self, function: str, reason: str):
        self.function = function
        self.reason = reason
        super().__init__(f"security wrapper blocked {function}: {reason}")


class ProcessExit(SimulatorError):
    """Control-flow signal used to implement ``exit()`` in simulated apps."""

    outcome = Outcome.PASS

    def __init__(self, status: int = 0):
        self.status = status
        super().__init__(f"process exited with status {status}")


class AllocationFailure(SimulatorError):
    """The simulated heap is exhausted; ``malloc`` reports this by
    returning ``NULL`` instead of raising, so this escapes only on internal
    allocator misuse."""

    outcome = Outcome.ERROR

    def __init__(self, size: int):
        self.size = size
        super().__init__(f"cannot allocate {size} bytes")


def classify_exception(exc: BaseException) -> Outcome:
    """Map an exception raised during a probe onto the CRASH scale.

    Unknown exceptions are conservatively classified as CRASH: in a native
    harness any unexpected signal kills the probe process.
    """
    if isinstance(exc, SimulatorError):
        return exc.outcome
    if isinstance(exc, (RecursionError, ZeroDivisionError, OverflowError)):
        return Outcome.CRASH
    return Outcome.CRASH
