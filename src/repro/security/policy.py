"""Security-wrapper policies.

Demo 3.4 shows the security wrapper preventing a heap buffer overflow
that would otherwise give the attacker a root shell; the mechanism
(from [3], "Detecting heap smashing attacks through fault containment
wrappers") combines:

* an allocation **size table** maintained by intercepting the allocator,
* **bounds enforcement** on the unsafe write functions against that
  table,
* optional **canary verification** (the allocator-level canaries),
* a **format-string policy** rejecting ``%n``, and
* a **safe gets()** substitution that bounds the read to the
  destination's known capacity.

Policies are independent switches so the ablation benchmarks can measure
each layer's contribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.recovery import RecoveryPolicy

#: roles whose argument the callee writes through — the overflow vectors
WRITE_ROLES = frozenset({
    "out_string", "inout_string", "out_buffer", "out_wstring",
    "out_wbuffer",
})

#: checks whose violation means an out-of-bounds *write* would occur
WRITE_CHECKS = frozenset({
    "buffer_capacity", "wbuffer_capacity", "ptr_writable",
})


@dataclass
class SecurityPolicy:
    """Configuration of the security wrapper's features."""

    #: refuse calls whose destination cannot hold the data to be written
    enforce_bounds: bool = True
    #: refuse format strings containing %n (write-anywhere primitive)
    reject_percent_n: bool = True
    #: replace gets() with a read bounded by the destination's capacity
    safe_gets: bool = True
    #: refuse deallocation of a pointer that is not a live allocation
    #: (double free / invalid free — the allocator would abort)
    guard_free: bool = True
    #: refuse format strings consuming more directives than the call
    #: supplied variadic arguments for (format-style overread)
    check_format_args: bool = True
    #: when to walk the heap for corrupted metadata:
    #: "never", "free" (at deallocation sites), or "always" (every call)
    verify_heap: str = "free"
    #: terminate the protected process on a violation (the paper's
    #: behaviour: "detect such buffer overflows and terminate the
    #: attacker's program"); False degrades to an error return
    terminate: bool = True
    #: per-function, per-violation-kind recovery policy; when set it
    #: supersedes :attr:`terminate` — the wrapper asks the policy whether
    #: to contain, repair, retry, or escalate each detected violation
    recovery: Optional[RecoveryPolicy] = None

    def __post_init__(self) -> None:
        if self.verify_heap not in ("never", "free", "always"):
            raise ValueError(
                f"verify_heap must be never/free/always, "
                f"not {self.verify_heap!r}"
            )


#: allocator functions whose results enter the size table
ALLOCATING = {
    "malloc": "size-arg",
    "calloc": "product-args",
    "realloc": "realloc",
    "strdup": "strlen-result",
    "strndup": "strlen-result",
    "fopen": "file-struct",
}

#: deallocation sites (size-table eviction + heap verification points)
DEALLOCATING = frozenset({"free", "fclose"})
