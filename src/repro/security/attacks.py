"""The attack corpus for demo 3.4 and the security table.

Each attack targets one bundled victim application with a crafted stdin
payload and defines what "the exploit succeeded" means (a root shell, a
hijacked return, a crash/corruption DoS).  Payloads are crafted by
*reconnaissance*: the attacker replays the victim's deterministic
allocation/registration sequence in a scratch process to learn buffer
distances and gadget addresses — the moral equivalent of reading them out
of the published binary, as the original exploit against [3]'s example
did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.apps import AUTHD, MSGFORMAT, STACKD, SimApp
from repro.apps.authd import HANDLER_RECORD, NAME_BUFFER
from repro.apps.authd import gadget_addresses as authd_gadgets
from repro.apps.base import AppResult
from repro.apps.stacksmash import REQUEST_BUFFER
from repro.apps.stacksmash import gadget_addresses as stackd_gadgets
from repro.runtime import SimProcess


@dataclass
class Attack:
    """One exploit attempt against a bundled victim."""

    name: str
    app: SimApp
    craft: Callable[[], bytes]
    hijacked: Callable[[AppResult], bool]
    description: str

    def payload(self) -> bytes:
        return self.craft()


def _address_bytes(address: int) -> bytes:
    """Little-endian address with trailing NULs stripped (strcpy-safe).

    Raises if the address has *interior* NUL bytes — a real exploit would
    pick a different gadget; the simulation's layout never produces one,
    and the assertion documents the constraint.
    """
    stripped = address.to_bytes(8, "little").rstrip(b"\x00")
    if b"\x00" in stripped:
        raise ValueError(
            f"gadget address {address:#x} contains interior NUL bytes"
        )
    if b"\n" in stripped:
        raise ValueError(f"gadget address {address:#x} contains newline")
    return stripped


def craft_heap_smash() -> bytes:
    """Recreate authd's heap layout to aim the overflow at the handler.

    The daemon mallocs the 24-byte name buffer and then the handler
    record; with the boundary-tag allocator they are adjacent.  The
    payload fills the distance with non-NUL bytes (clobbering the chunk
    header on the way — nobody checks before the dispatch) and lands the
    shell gadget's address on the function-pointer slot.
    """
    scout = SimProcess()
    gadgets = authd_gadgets(scout)
    name_buffer = scout.heap.malloc(NAME_BUFFER)
    handler_record = scout.heap.malloc(HANDLER_RECORD)
    distance = handler_record - name_buffer
    return b"A" * distance + _address_bytes(gadgets["shell"]) + b"\n"


def craft_stack_smash() -> bytes:
    """Recreate stackd's frame layout to overwrite the return slot."""
    scout = SimProcess()
    gadgets = stackd_gadgets(scout)
    frame = scout.stack.push_frame("handle_request",
                                   return_address=gadgets["return"])
    buffer = scout.stack.alloca(REQUEST_BUFFER)
    distance = frame.return_slot - buffer
    return b"B" * distance + _address_bytes(gadgets["shell"]) + b"\n"


def craft_stack_smash_protected() -> bytes:
    """Stack payload against a *protected* stack (canary slot present).

    The canary shifts the frame layout by one slot; the attacker cannot
    know the canary value, so the payload simply writes through it — the
    protector must catch that.
    """
    scout = SimProcess(stack_protect=True)
    gadgets = stackd_gadgets(scout)
    frame = scout.stack.push_frame("handle_request",
                                   return_address=gadgets["return"])
    buffer = scout.stack.alloca(REQUEST_BUFFER)
    distance = frame.return_slot - buffer
    return b"B" * distance + _address_bytes(gadgets["shell"]) + b"\n"


def craft_gets_flood() -> bytes:
    """Denial-of-service flood: a request far larger than any buffer."""
    return b"ECHO " + b"F" * 600 + b"\nQUIT\n"


def craft_format_probe() -> bytes:
    """Hostile format directives smuggled into the reflected reply.

    msgformat expands the request through ``sprintf``'s ``%s``; the
    response buffer is 160 bytes, so a request that *expands* past it
    (here via padding-width directives after reflection is not possible —
    instead the flood variant is used) is covered by gets_flood.  This
    probe instead overflows the staging buffer just enough to corrupt the
    adjacent response allocation without faulting: a stealthy corruption
    the heap-verification policy must catch.
    """
    return b"ECHO " + b"S" * 80 + b"\nQUIT\n"


def _got_root(result: AppResult) -> bool:
    return bool(getattr(result.process, "root_shell", False))


def _service_disrupted(result: AppResult) -> bool:
    """DoS verdict: the service died or its heap metadata was corrupted."""
    if result.crashed:
        return True
    problems = result.process.heap.check_integrity()
    return bool(problems)


HEAP_SMASH = Attack(
    name="heap-smash",
    app=AUTHD,
    craft=craft_heap_smash,
    hijacked=_got_root,
    description="[3]-style heap overflow redirecting a function pointer "
                "to a shell gadget (demo 3.4's first half)",
)

STACK_SMASH = Attack(
    name="stack-smash",
    app=STACKD,
    craft=craft_stack_smash,
    hijacked=_got_root,
    description="return-address overwrite through an on-stack buffer [1]",
)

GETS_FLOOD = Attack(
    name="gets-flood",
    app=MSGFORMAT,
    craft=craft_gets_flood,
    hijacked=_service_disrupted,
    description="over-long request through gets(): crash/corruption DoS",
)

STEALTH_CORRUPT = Attack(
    name="stealth-corrupt",
    app=MSGFORMAT,
    craft=craft_format_probe,
    hijacked=_service_disrupted,
    description="overflow sized to corrupt heap metadata without faulting",
)

ALL_ATTACKS: List[Attack] = [
    HEAP_SMASH, STACK_SMASH, GETS_FLOOD, STEALTH_CORRUPT,
]

#: benign inputs per victim: the false-positive corpus
BENIGN_INPUTS = {
    "authd": b"alice\n",
    "stackd": b"ping\n",
    "msgformat": b"ECHO hello world\nADD 19 23\nQUIT\n",
}
