"""Compatibility facade over the attack corpus (demo 3.4 legacy names).

The corpus grew into the :mod:`repro.security.corpus` package (eight
scored attack classes with expected-containment oracles); this module
keeps the original four-attack surface stable for existing callers.

One deliberate divergence: the legacy :data:`STACK_SMASH` targets an
*unprotected* stack (demonstrating that the heap size-table cannot stop
a stack overwrite), while the corpus' ``stack-smash`` entry arms the
stack protector — the defence the paper actually prescribes for that
class.
"""

from __future__ import annotations

from repro.apps import STACKD
from repro.security.corpus import (
    BENIGN_INPUTS,
    GETS_FLOOD,
    OVERFLOW_ADJACENT,
    STEALTH_CORRUPT,
    craft_canary_bypass,
    craft_double_free,
    craft_format_overread,
    craft_format_probe,
    craft_gets_flood,
    craft_heap_smash,
    craft_stack_smash,
    craft_stack_smash_protected,
    craft_uaf_write,
)
from repro.security.corpus.model import Attack, _address_bytes, _got_root

HEAP_SMASH = OVERFLOW_ADJACENT

STACK_SMASH = Attack(
    name="stack-smash",
    attack_class="stack-smash",
    app=STACKD,
    craft=craft_stack_smash,
    hijacked=_got_root,
    description="return-address overwrite through an on-stack buffer [1]",
)

ALL_ATTACKS = [HEAP_SMASH, STACK_SMASH, GETS_FLOOD, STEALTH_CORRUPT]

__all__ = [
    "ALL_ATTACKS",
    "Attack",
    "BENIGN_INPUTS",
    "GETS_FLOOD",
    "HEAP_SMASH",
    "STACK_SMASH",
    "STEALTH_CORRUPT",
    "_address_bytes",
    "craft_canary_bypass",
    "craft_double_free",
    "craft_format_overread",
    "craft_format_probe",
    "craft_gets_flood",
    "craft_heap_smash",
    "craft_stack_smash",
    "craft_stack_smash_protected",
    "craft_uaf_write",
]
