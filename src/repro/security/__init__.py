"""Security wrapper: heap-overflow containment policies and attack corpus."""

from repro.security.guard import HeapGuardGen
from repro.security.policy import (
    ALLOCATING,
    DEALLOCATING,
    WRITE_CHECKS,
    WRITE_ROLES,
    SecurityPolicy,
)

__all__ = [
    "ALLOCATING",
    "DEALLOCATING",
    "HeapGuardGen",
    "SecurityPolicy",
    "WRITE_CHECKS",
    "WRITE_ROLES",
]
