"""The security micro-generator: heap-overflow containment.

Composed into the security wrapper, this generator

* maintains the library's own allocation size table by interposing the
  allocator entry points (prefix/postfix of ``malloc``/``free``/…),
* refuses writes that would exceed the destination's recorded capacity
  (bounds enforcement over the robust-API metadata),
* rejects ``%n`` format directives,
* substitutes a bounded read for ``gets``, and
* verifies heap-chunk integrity at deallocation sites (or on every call).

A violation *terminates* the protected program (raising
:class:`~repro.errors.SecurityViolation`, an ABORT-class contained
failure) rather than letting the overflow hijack control flow — the demo
3.4 behaviour.  When the policy carries a
:class:`~repro.recovery.RecoveryPolicy`, the response instead becomes a
per-function, per-violation-kind decision — contain, *repair* (heal the
heap in place and let the call proceed), or escalate — each decision
published as a :class:`~repro.telemetry.RecoveryEvent`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.errors import SecurityViolation
from repro.robust.api import FunctionDecl
from repro.robust.introspect import CheckPlan
from repro.robust.checks import (
    ArgumentChecker,
    CheckViolation,
    analyse_format,
    writable_extent,
)
from repro.runtime.process import Errno, SimProcess
from repro.security.policy import (
    ALLOCATING,
    DEALLOCATING,
    WRITE_CHECKS,
    WRITE_ROLES,
    SecurityPolicy,
)
from repro.telemetry import RecoveryEvent, SecurityEvent
from repro.wrappers.generators import error_return_value
from repro.wrappers.microgen import (
    CallFrame,
    Fragment,
    MicroGenerator,
    RuntimeHooks,
    WrapperUnit,
)


def _build_violation_handler(policy: SecurityPolicy, name: str, state,
                             emit, error_value):
    """The shared violation response, as ``found(frame, reason, kind)``.

    Returns True when the violation was handled terminally for this call
    (contained: the frame carries the error return) — call sites stop
    checking.  Returns False when a ``repair`` action healed the heap
    cleanly, meaning the call may proceed against the repaired state.
    Escalation raises.  Shared verbatim by the compiled and interpreted
    hook builders so the backend differentials stay byte-identical.
    """
    recovery = policy.recovery

    if recovery is None:
        # legacy response: terminate or contain, uniformly
        def violation_found(frame: CallFrame, reason: str,
                            kind: str) -> bool:
            emit(SecurityEvent(function=name, reason=reason,
                               terminated=policy.terminate))
            if policy.terminate:
                raise SecurityViolation(name, reason)
            frame.skip_call = True
            frame.ret = error_value
            frame.process.errno = Errno.EFAULT
            return True
        return violation_found

    size_table = state.size_table

    def violation_found(frame: CallFrame, reason: str, kind: str) -> bool:
        action = recovery.action_for(name, kind)
        if action == "repair":
            report = frame.process.heap.repair(quarantine=True)
            # quarantined chunks are dead to the program: their size-table
            # entries must not satisfy later capacity lookups
            for address in report.quarantined:
                size_table.pop(address, None)
            emit(RecoveryEvent(function=name, violation=kind,
                               action="repair",
                               attempts=max(len(report.actions), 1),
                               recovered=report.clean, detail=reason))
            if report.clean:
                return False
            # the shadow metadata could not reconcile the heap: escalate
            emit(SecurityEvent(function=name, reason=reason,
                               terminated=True))
            raise SecurityViolation(name, reason)
        if action == "escalate":
            emit(RecoveryEvent(function=name, violation=kind,
                               action="escalate", recovered=False,
                               detail=reason))
            emit(SecurityEvent(function=name, reason=reason,
                               terminated=True))
            raise SecurityViolation(name, reason)
        if action == "degrade":
            # contain the call, then signal the serving ladder: the
            # process-level hook feeds the circuit breaker without the
            # wrapper knowing whether anyone is listening
            emit(RecoveryEvent(function=name, violation=kind,
                               action="degrade", recovered=True,
                               detail=reason))
            emit(SecurityEvent(function=name, reason=reason,
                               terminated=False))
            frame.skip_call = True
            frame.ret = error_value
            frame.process.errno = Errno.EFAULT
            hook = frame.process.degrade_hook
            if hook is not None:
                hook(name, kind)
            return True
        # contain
        emit(RecoveryEvent(function=name, violation=kind,
                           action="contain", recovered=True,
                           detail=reason))
        emit(SecurityEvent(function=name, reason=reason,
                           terminated=False))
        frame.skip_call = True
        frame.ret = error_value
        frame.process.errno = Errno.EFAULT
        return True

    return violation_found


def _heap_kind(problem: str) -> str:
    """Classify an integrity finding for policy selection."""
    return "canary" if "canary" in problem else "heap_corruption"


class HeapGuardGen(MicroGenerator):
    """Security feature: size table + bounds + format + heap verification."""

    name = "heap guard"

    def __init__(self, policy: Optional[SecurityPolicy] = None):
        self.policy = policy or SecurityPolicy()

    # ------------------------------------------------------------------
    # C backend
    # ------------------------------------------------------------------

    def c_fragment(self, unit: WrapperUnit) -> Fragment:
        prefix = ""
        postfix = ""
        name = unit.name
        if name in ALLOCATING:
            postfix += f"    healers_sizetable_record(ret);\n"
        if name in DEALLOCATING and self.policy.verify_heap != "never":
            prefix += (
                f"    if (!healers_heap_verify())\n"
                f"        healers_terminate(\"heap metadata corrupted\");\n"
            )
        if name in DEALLOCATING:
            prefix += f"    healers_sizetable_forget({unit.arg_names()[0]});\n"
        if self.policy.enforce_bounds and unit.decl is not None:
            for param in unit.decl.params:
                if param.role in WRITE_ROLES and param.check in WRITE_CHECKS:
                    prefix += (
                        f"    if (!healers_bounds_ok({param.name}))\n"
                        f"        healers_terminate(\"overflow of "
                        f"{param.name} in {name}\");\n"
                    )
        return Fragment(generator=self.name, prefix=prefix, postfix=postfix)

    # ------------------------------------------------------------------
    # runtime backend
    # ------------------------------------------------------------------

    def runtime_hooks(self, unit: WrapperUnit) -> RuntimeHooks:
        if unit.fastpath:
            return self._compiled_hooks(unit)
        return self._interpreted_hooks(unit)

    def _compiled_hooks(self, unit: WrapperUnit) -> RuntimeHooks:
        """Build-time specialized hooks.

        Everything derivable from the function name, declaration and
        policy — which protections apply, the write-role map, the
        allocation-size recipe — is resolved here, once; per call only
        the applicable protections run.  A function with no applicable
        protection gets no hook at all.
        """
        policy = self.policy
        state = unit.state
        size_table = state.size_table
        emit = unit.bus.emit
        name = unit.name
        #: role metadata source: the introspected plan when the document
        #: carries one, else the hand-tuned declaration entry — the
        #: security policy is role-derived, so both yield the same view
        decl = unit.plan if unit.plan is not None else unit.decl

        is_dealloc = name in DEALLOCATING
        verify_here = policy.verify_heap == "always" or (
            policy.verify_heap == "free" and is_dealloc
        )
        guard_free_here = policy.guard_free and is_dealloc
        gets_here = policy.safe_gets and name == "gets"
        reject_n = policy.reject_percent_n
        check_arity = policy.check_format_args
        format_indices = tuple(
            index for index, param in enumerate(decl.params)
            if param.role == "format"
        ) if ((reject_n or check_arity) and decl is not None) else ()
        checker = (
            ArgumentChecker(security_view(decl), unit.prototype)
            if decl is not None else None
        )
        bounds_here = (policy.enforce_bounds and checker is not None
                       and checker.has_checks)
        #: param name → is a write-role violation (legacy falls through
        #: to False for parameters absent from the declaration)
        write_param = {
            p.name: (p.role in WRITE_ROLES or not p.role)
            for p in decl.params
        } if decl is not None else None
        error_value = error_return_value(
            unit.prototype, decl.error_return if decl else ""
        )

        violation_found = _build_violation_handler(
            policy, name, state, emit, error_value
        )

        def is_write_violation(violation: CheckViolation) -> bool:
            if violation.check == "size_bounded":
                return "(write)" in violation.detail
            if violation.check not in WRITE_CHECKS:
                return False
            if write_param is None:
                return True
            return write_param.get(violation.param, False)

        def prefix(frame: CallFrame) -> None:
            if frame.skip_call:
                return
            proc = frame.process
            if verify_here:
                problems = proc.heap.check_integrity()
                if problems:
                    if violation_found(frame,
                                       f"heap corrupted: {problems[0]}",
                                       _heap_kind(problems[0])):
                        return
            if is_dealloc and frame.args:
                pointer = frame.args[0]
                if (guard_free_here and pointer
                        and proc.heap.allocation_size(pointer) is None):
                    if violation_found(frame,
                                       _invalid_free_reason(pointer),
                                       "invalid_free"):
                        return
                size_table.pop(pointer, None)
            if gets_here:
                _safe_gets(frame, state, emit, violation_found)
                return
            for index in format_indices:
                if index >= len(frame.args):
                    continue
                analysis = analyse_format(proc, frame.args[index])
                if analysis is None:
                    violation_found(frame,
                                    "format string is not a valid string",
                                    "format")
                    return
                if reject_n and analysis[1]:
                    violation_found(frame, "format string contains %n",
                                    "format")
                    return
                if check_arity and analysis[0] > len(frame.varargs):
                    violation_found(
                        frame,
                        _format_arity_reason(analysis[0],
                                             len(frame.varargs)),
                        "format",
                    )
                    return
            if bounds_here:
                for violation in checker.validate_all(proc, frame.args,
                                                      frame.varargs):
                    if is_write_violation(violation):
                        violation_found(
                            frame,
                            f"write overflow: {violation.detail} "
                            f"(param {violation.param})",
                            "bounds",
                        )
                        return

        alloc_kind = ALLOCATING.get(name)
        postfix = None
        if alloc_kind is not None:
            def postfix(frame: CallFrame) -> None:
                if frame.ret:
                    size = _allocation_size(name, frame)
                    if size is not None:
                        size_table[frame.ret] = size

        needs_prefix = (verify_here or is_dealloc or gets_here
                        or format_indices or bounds_here)
        return RuntimeHooks(
            generator=self.name,
            prefix=prefix if needs_prefix else None,
            postfix=postfix,
        )

    def _interpreted_hooks(self, unit: WrapperUnit) -> RuntimeHooks:
        """The original per-call hooks (reference path for differentials)."""
        policy = self.policy
        # the size table is the guard's own operational state — it is
        # read back within the same call (safe gets, frees), so it stays
        # a direct mutation; only observations go through the bus
        state = unit.state
        emit = unit.bus.emit
        name = unit.name
        decl = unit.plan if unit.plan is not None else unit.decl
        checker = (
            ArgumentChecker(security_view(decl), unit.prototype,
                            compiled=False)
            if decl is not None else None
        )
        error_value = error_return_value(
            unit.prototype, decl.error_return if decl else ""
        )

        violation_found = _build_violation_handler(
            policy, name, state, emit, error_value
        )

        def prefix(frame: CallFrame) -> None:
            if frame.skip_call:
                return
            proc = frame.process
            if policy.verify_heap == "always" or (
                policy.verify_heap == "free" and name in DEALLOCATING
            ):
                problems = proc.heap.check_integrity()
                if problems:
                    if violation_found(frame,
                                       f"heap corrupted: {problems[0]}",
                                       _heap_kind(problems[0])):
                        return
            if name in DEALLOCATING and frame.args:
                pointer = frame.args[0]
                if (policy.guard_free and pointer
                        and proc.heap.allocation_size(pointer) is None):
                    if violation_found(frame,
                                       _invalid_free_reason(pointer),
                                       "invalid_free"):
                        return
                state.size_table.pop(pointer, None)
            if policy.safe_gets and name == "gets":
                _safe_gets(frame, state, emit, violation_found)
                return
            if (policy.reject_percent_n or policy.check_format_args) \
                    and decl is not None:
                detail = _format_check(proc, decl, frame, policy)
                if detail is not None:
                    violation_found(frame, detail, "format")
                    return
            if policy.enforce_bounds and checker is not None:
                for violation in checker.validate_all(proc, frame.args,
                                                      frame.varargs):
                    if _is_write_violation(decl, violation):
                        violation_found(
                            frame,
                            f"write overflow: {violation.detail} "
                            f"(param {violation.param})",
                            "bounds",
                        )
                        return

        def postfix(frame: CallFrame) -> None:
            if name in ALLOCATING and frame.ret:
                size = _allocation_size(name, frame)
                if size is not None:
                    state.size_table[frame.ret] = size

        return RuntimeHooks(generator=self.name, prefix=prefix,
                            postfix=postfix)


def security_view(meta):
    """Role-derived a-priori write checks, for either checker IR.

    Accepts the hand-tuned :class:`FunctionDecl` or an introspected
    :class:`CheckPlan`; the synthesised checks are the same either way
    because the security policy reads roles, not derived robust types.
    """
    if isinstance(meta, CheckPlan):
        return _security_plan(meta)
    return _security_decl(meta)


def _security_check_for(role: str, existing: str) -> str:
    """The security wrapper's check for one role (writes only)."""
    if role in ("out_string", "inout_string", "out_buffer"):
        return "buffer_capacity"
    if role in ("out_wstring", "out_wbuffer"):
        return "wbuffer_capacity"
    if role == "size":
        return "size_bounded"
    if role == "format":
        return existing
    return ""  # security cares about writes only


def _security_plan(plan: CheckPlan) -> CheckPlan:
    """The plan-IR rendering of :func:`_security_decl` (no deep copy —
    plans are frozen, so this is a cheap structural rewrite)."""
    return replace(
        plan,
        params=tuple(
            replace(param,
                    check=_security_check_for(param.role, param.check))
            for param in plan.params
        ),
    )


def _security_decl(decl: FunctionDecl) -> FunctionDecl:
    """A-priori bounds checks from role metadata alone.

    The security wrapper of [3] predates the robust-API derivation: its
    policy is "every write through an intercepted function must fit the
    destination's recorded capacity", known from the manual-page roles
    and the size table — no fault-injection campaign required.  So the
    guard synthesises capacity checks for every write-role parameter and
    extent checks for the sizes that govern them, even when the document
    carries no derived robust types.
    """
    import copy

    hardened = copy.deepcopy(decl)
    for param in hardened.params:
        param.check = _security_check_for(param.role, param.check)
    return hardened


def _is_write_violation(decl: Optional[FunctionDecl],
                        violation: CheckViolation) -> bool:
    if violation.check == "size_bounded":
        # over-long counts against writable buffers are write overflows;
        # read overruns are a robustness matter, not the security policy's
        return "(write)" in violation.detail
    if violation.check not in WRITE_CHECKS:
        return False
    if decl is None:
        return True
    for param in decl.params:
        if param.name == violation.param:
            return param.role in WRITE_ROLES or not param.role
    return False


def _invalid_free_reason(pointer: int) -> str:
    return (f"free of {pointer:#x}, which is not a live allocation "
            f"(double free or invalid pointer)")


def _format_arity_reason(consumed: int, supplied: int) -> str:
    return (f"format string consumes {consumed} argument"
            f"{'s' if consumed != 1 else ''} but the call supplied "
            f"{supplied}")


def _format_check(proc: SimProcess, decl: FunctionDecl,
                  frame: CallFrame, policy: SecurityPolicy) -> Optional[str]:
    for index, param in enumerate(decl.params):
        if param.role != "format":
            continue
        if index >= len(frame.args):
            continue
        analysis = analyse_format(proc, frame.args[index])
        if analysis is None:
            return "format string is not a valid string"
        consumed, uses_n = analysis
        if policy.reject_percent_n and uses_n:
            return "format string contains %n"
        if policy.check_format_args and consumed > len(frame.varargs):
            return _format_arity_reason(consumed, len(frame.varargs))
    return None


def _allocation_size(name: str, frame: CallFrame) -> Optional[int]:
    kind = ALLOCATING[name]
    if kind == "size-arg":
        return int(frame.args[0])
    if kind == "product-args":
        return int(frame.args[0]) * int(frame.args[1])
    if kind == "realloc":
        return int(frame.args[1])
    if kind == "strlen-result":
        # postfix: the result is a fresh, terminated allocation
        return len(frame.process.read_cstring(frame.ret)) + 1
    if kind == "file-struct":
        from repro.runtime.filesystem import FILE_STRUCT_SIZE
        return FILE_STRUCT_SIZE
    return None


def _safe_gets(frame: CallFrame, state, emit, violation_found) -> None:
    """Replace gets() with a read bounded by the destination's capacity.

    Uses the wrapper's own size table first (a heap destination), then the
    mapping bound.  An unbounded destination is a security violation.
    """
    proc = frame.process
    dest = frame.args[0] if frame.args else 0
    capacity = state.size_table.get(dest)
    if capacity is None:
        capacity = writable_extent(proc, dest)
    if capacity <= 0:
        violation_found(frame, "gets() destination is not writable",
                        "unsafe_gets")
        return
    frame.skip_call = True
    if proc.space.scalar:
        _scalar_safe_gets_body(frame, proc, dest, capacity, emit)
        return
    space = proc.space
    # locate the line without consuming the stream, then replay the stream
    # and memory side effects in bulk
    linelen = 0
    newline = False
    offset = 0
    chunk = 4096
    while True:
        window = proc.fs.peek(0, chunk, offset)
        if not window:
            linelen = offset
            break
        position = window.find(b"\n")
        if position >= 0:
            linelen = offset + position
            newline = True
            break
        offset += len(window)
        if len(window) < chunk:
            linelen = offset
            break
        chunk *= 4
    if linelen == 0 and not newline:
        proc.fs.read(0, 1)  # the empty read that flips the stream to EOF
        frame.ret = 0
        return
    to_write = min(linelen, capacity - 1)
    writable = space.writable_run(dest, to_write)
    if writable < to_write:
        # the loop faults on byte `writable` after consuming it from stdin
        data = proc.fs.read(0, writable + 1)
        if writable > 0:
            space.write_run(dest, data[:writable])
        space.write(dest + writable, data[writable:writable + 1])
        raise AssertionError("safe gets fault replay did not fault")
    data = proc.fs.read(0, linelen + (1 if newline else 0))
    if to_write > 0:
        space.write_run(dest, data[:to_write])
    if not newline:
        proc.fs.read(0, 1)  # replay the EOF-setting empty read
    space.write(dest + to_write, b"\x00")
    if linelen > capacity - 1:
        emit(
            SecurityEvent(function="gets",
                          reason=f"input truncated to {capacity - 1} bytes",
                          terminated=False)
        )
    frame.ret = dest


def _scalar_safe_gets_body(frame: CallFrame, proc: SimProcess, dest: int,
                           capacity: int, emit) -> None:
    """Reference byte loop for the bounded gets (differential backend)."""
    cursor = dest
    remaining = capacity - 1
    read_any = False
    discarded = False
    while True:
        data = proc.fs.read(0, 1)  # STDIN
        if not data:
            break
        read_any = True
        if data == b"\n":
            break
        if remaining > 0:
            proc.space.write(cursor, data)
            cursor += 1
            remaining -= 1
        else:
            discarded = True  # drop overflow bytes instead of writing them
    if not read_any:
        frame.ret = 0
        return
    proc.space.write(cursor, b"\x00")
    if discarded:
        emit(
            SecurityEvent(function="gets",
                          reason=f"input truncated to {capacity - 1} bytes",
                          terminated=False)
        )
    frame.ret = dest
