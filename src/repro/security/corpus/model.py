"""The declarative attack model and the single-run verdict machinery.

An :class:`Attack` is one crafted exploit attempt: a victim application,
a payload constructor (the *craft*, which replays the victim's
deterministic layout in a scratch process to aim the exploit — the moral
equivalent of reading addresses out of the published binary), a success
oracle, and an **expected-containment table** mapping each wrapper
preset to the verdicts the toolkit is allowed to produce.

Verdicts (:data:`VERDICTS`):

* ``escaped``   — the attack's own success oracle fired (root shell,
  service disrupted): the wrappers failed;
* ``detected``  — the program was terminated by an explicit detection
  (:class:`~repro.errors.SecurityViolation` or the stack protector);
* ``repaired``  — a repair action healed the heap and the service
  survived;
* ``contained`` — the service survived with the attack neutralised
  (error returns / truncation, no detection necessary);
* ``crashed``   — the program died of an undiagnosed simulator fault:
  the attack failed, but so did containment.

The expected table makes the corpus *scored*: a run whose verdict is
absent from the attack's table for that preset is a regression, and any
``escaped`` under the ``security`` or ``hardened`` preset is a hard
test failure regardless of the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.apps import SimApp
from repro.apps.base import AppResult, run_app
from repro.errors import SecurityViolation, StackSmashingDetected
from repro.libc import LibcRegistry
from repro.linker import DynamicLinker, SharedLibrary
from repro.recovery import self_healing_policy
from repro.robust.api import RobustAPIDocument
from repro.runtime import SimProcess
from repro.security.policy import SecurityPolicy
from repro.telemetry import MetricsSink
from repro.wrappers import WrapperFactory, WrapperSpec
from repro.wrappers.presets import (
    HARDENED,
    RECOVERY,
    ROBUSTNESS,
    SECURITY,
    default_generator_registry,
)

#: the containment-verdict taxonomy, worst to best
VERDICTS = ("escaped", "crashed", "detected", "repaired", "contained")


@dataclass
class Attack:
    """One exploit attempt against a bundled victim."""

    name: str
    app: SimApp
    craft: Callable[[], bytes]
    hijacked: Callable[[AppResult], bool]
    description: str
    #: the red-team taxonomy bucket this attack exercises
    attack_class: str = ""
    #: preset name -> acceptable verdicts (empty: any non-escape)
    expected: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: SimProcess construction overrides (e.g. armed canaries)
    process_kwargs: Dict[str, object] = field(default_factory=dict)

    def payload(self) -> bytes:
        return self.craft()

    def expected_verdicts(self, preset: str) -> Tuple[str, ...]:
        """Acceptable verdicts under ``preset`` (default: anything but
        an escape)."""
        table = self.expected.get(preset)
        if table:
            return table
        return tuple(v for v in VERDICTS if v != "escaped")


def _address_bytes(address: int) -> bytes:
    """Little-endian address with trailing NULs stripped (strcpy-safe).

    Raises if the address has *interior* NUL bytes — a real exploit would
    pick a different gadget; the simulation's layout never produces one,
    and the assertion documents the constraint.
    """
    stripped = address.to_bytes(8, "little").rstrip(b"\x00")
    if b"\x00" in stripped:
        raise ValueError(
            f"gadget address {address:#x} contains interior NUL bytes"
        )
    if b"\n" in stripped:
        raise ValueError(f"gadget address {address:#x} contains newline")
    return stripped


def _got_root(result: AppResult) -> bool:
    return bool(getattr(result.process, "root_shell", False))


def _service_disrupted(result: AppResult) -> bool:
    """DoS verdict: the service died or its heap metadata was corrupted."""
    if result.crashed:
        return True
    problems = result.process.heap.check_integrity()
    return bool(problems)


# ----------------------------------------------------------------------
# presets under evaluation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PresetConfig:
    """One wrapper deployment the corpus is scored against."""

    name: str
    #: None: the unwrapped baseline (attacks are *expected* to succeed)
    spec: Optional[WrapperSpec]
    #: fresh policy per run — wrapper state must never alias across runs
    policy: Callable[[], Optional[SecurityPolicy]]


def _plain_policy() -> SecurityPolicy:
    return SecurityPolicy()


def _recovery_policy() -> SecurityPolicy:
    return SecurityPolicy(recovery=self_healing_policy())


PRESET_CONFIGS: Dict[str, PresetConfig] = {
    "unwrapped": PresetConfig("unwrapped", None, lambda: None),
    "robustness": PresetConfig("robustness", ROBUSTNESS, _plain_policy),
    "security": PresetConfig("security", SECURITY, _plain_policy),
    "hardened": PresetConfig("hardened", HARDENED, _plain_policy),
    "recovery": PresetConfig("recovery", RECOVERY, _recovery_policy),
}

#: presets under which an escape is a hard failure, not a data point
GATED_PRESETS = ("security", "hardened")


# ----------------------------------------------------------------------
# single-run machinery
# ----------------------------------------------------------------------


@dataclass
class AttackRun:
    """Outcome of one attack × preset execution."""

    attack: str
    attack_class: str
    preset: str
    verdict: str
    status: Optional[int]
    exception: str
    recoveries: Dict[str, int]

    @property
    def escaped(self) -> bool:
        return self.verdict == "escaped"


def classify(attack: Attack, result: AppResult,
             recoveries: Dict[str, int]) -> str:
    """Fold one run into the verdict taxonomy (see module docstring).

    Detection outranks the attack's own oracle: a DoS oracle counts any
    crash as disruption, but a termination *by the defence* is the
    paper's prescribed response, not an attacker win.
    """
    if result.crashed and isinstance(
        result.exception, (SecurityViolation, StackSmashingDetected)
    ):
        return "detected"
    if attack.hijacked(result):
        return "escaped"
    if result.crashed:
        return "crashed"
    if recoveries.get("repair", 0) > 0:
        return "repaired"
    return "contained"


def run_attack(
    attack: Attack,
    preset: PresetConfig,
    registry: LibcRegistry,
    api: Optional[RobustAPIDocument],
    backend: str = "compiled",
    process: Optional[SimProcess] = None,
) -> AttackRun:
    """Execute one attack under one preset and score the outcome.

    ``process`` lets a campaign hand in a pre-armed (fault-injected)
    process; by default a fresh one is built from the attack's
    ``process_kwargs``.  The robust-API document matters: without it the
    heap guard has no declarations to hang bounds checks on.
    """
    if process is None:
        process = SimProcess(**attack.process_kwargs)
    linker = DynamicLinker()
    linker.add_library(SharedLibrary.from_registry(registry))
    metrics = MetricsSink()
    built = None
    if preset.spec is not None:
        factory = WrapperFactory(
            registry, api,
            generators=default_generator_registry(preset.policy()),
        )
        built = factory.preload(linker, preset.spec, backend=backend,
                                sinks=[metrics])
    result = run_app(attack.app, linker, stdin=attack.payload(),
                     process=process)
    if built is not None:
        built.bus.flush()
    recoveries = {action: count for action, count
                  in sorted(metrics.recoveries.items())}
    return AttackRun(
        attack=attack.name,
        attack_class=attack.attack_class,
        preset=preset.name,
        verdict=classify(attack, result, recoveries),
        status=result.status,
        exception=(type(result.exception).__name__
                   if result.exception is not None else ""),
        recoveries=recoveries,
    )
