"""Heap-lifetime attacks: overflow, double free, UAF, canary forgery.

Every craft performs *reconnaissance*: it replays the victim's
deterministic allocation/registration sequence in a scratch process to
learn buffer distances, gadget addresses and (for the canary forgery)
the exact metadata bytes between two chunks.
"""

from __future__ import annotations

from repro.apps import AUTHD, HEAPD
from repro.apps.authd import HANDLER_RECORD, NAME_BUFFER
from repro.apps.authd import gadget_addresses as authd_gadgets
from repro.apps.heapd import (
    CMD_BUFFER,
    NOTE_BUFFER,
    SLOT_BUFFER,
)
from repro.apps.heapd import HANDLER_RECORD as HEAPD_RECORD
from repro.apps.heapd import gadget_addresses as heapd_gadgets
from repro.runtime import SimProcess
from repro.security.corpus.model import (
    Attack,
    _address_bytes,
    _got_root,
    _service_disrupted,
)


def craft_heap_smash() -> bytes:
    """Recreate authd's heap layout to aim the overflow at the handler.

    The daemon mallocs the 24-byte name buffer and then the handler
    record; with the boundary-tag allocator they are adjacent.  The
    payload fills the distance with non-NUL bytes (clobbering the chunk
    header on the way — nobody checks before the dispatch) and lands the
    shell gadget's address on the function-pointer slot.
    """
    scout = SimProcess()
    gadgets = authd_gadgets(scout)
    name_buffer = scout.heap.malloc(NAME_BUFFER)
    handler_record = scout.heap.malloc(HANDLER_RECORD)
    distance = handler_record - name_buffer
    return b"A" * distance + _address_bytes(gadgets["shell"]) + b"\n"


def craft_double_free() -> bytes:
    """Free the same slot twice: the second free hits a dead chunk.

    Unprotected, the allocator aborts (or worse, corrupts its free
    list); the guard's invalid-free check must refuse the second call.
    """
    return b"ALLOC 48\nFREE 1\nFREE 1\nQUIT\n"


def craft_uaf_write() -> bytes:
    """strcpy through a dangling slot pointer after its buffer is freed.

    Slot 2 is allocated right after slot 1, so the dangling write runs
    out of the dead chunk and over the *live* neighbour's header —
    silent metadata corruption the integrity walk must be able to see;
    the guard refuses the write outright because the destination is no
    longer a live allocation.
    """
    return (b"ALLOC 40\nALLOC 40\nFREE 1\nPUT 1 " + b"U" * 80
            + b"\nQUIT\n")


def _heapd_scout() -> tuple:
    """Replay heapd's startup allocations in a canary-armed process."""
    scout = SimProcess(heap_canaries=True)
    gadgets = heapd_gadgets(scout)
    scout.heap.malloc(CMD_BUFFER)
    scout.heap.malloc(NOTE_BUFFER)
    victim = scout.heap.malloc(SLOT_BUFFER)
    record = scout.heap.malloc(HEAPD_RECORD)
    return scout, gadgets, victim, record


def craft_canary_bypass() -> bytes:
    """Overflow slot 0 into the handler record with *forged* metadata.

    ``RAW`` reads with ``gets()``, which passes NUL bytes through, so
    the payload can reproduce the slot's trailing canary and the next
    chunk's header byte-for-byte (read from the scout — the values are
    deterministic) before landing the shell gadget's full 8-byte address
    on the function pointer.  Heap verification then finds nothing
    wrong; only a bounded read (safe gets) stops the overflow itself.
    """
    scout, gadgets, victim, record = _heapd_scout()
    between = scout.space.read(victim + SLOT_BUFFER,
                               record - victim - SLOT_BUFFER)
    body = (b"C" * SLOT_BUFFER + between
            + gadgets["shell"].to_bytes(8, "little"))
    if b"\n" in body:
        raise ValueError("forged metadata contains a newline byte; "
                         "the gets()-carried payload cannot express it")
    return b"RAW 0\n" + body + b"\nRUN\nQUIT\n"


OVERFLOW_ADJACENT = Attack(
    name="heap-smash",
    attack_class="overflow-adjacent",
    app=AUTHD,
    craft=craft_heap_smash,
    hijacked=_got_root,
    description="[3]-style heap overflow redirecting a function pointer "
                "to a shell gadget (demo 3.4's first half)",
    expected={
        "unwrapped": ("escaped",),
        "robustness": ("escaped",),
        "security": ("detected",),
        "hardened": ("detected",),
        "recovery": ("contained",),
    },
)

DOUBLE_FREE_CHAIN = Attack(
    name="double-free",
    attack_class="double-free-chain",
    app=HEAPD,
    craft=craft_double_free,
    hijacked=_service_disrupted,
    description="double free of a slot buffer: allocator abort / "
                "free-list corruption DoS",
    expected={
        "unwrapped": ("escaped",),
        "robustness": ("escaped",),
        "security": ("detected",),
        "hardened": ("detected",),
        "recovery": ("contained",),
    },
)

UAF_WRITE = Attack(
    name="uaf-write",
    attack_class="use-after-free-write",
    app=HEAPD,
    craft=craft_uaf_write,
    hijacked=_service_disrupted,
    description="write through a dangling pointer into freed allocator "
                "memory",
    expected={
        "unwrapped": ("escaped",),
        "robustness": ("escaped",),
        "security": ("detected",),
        "hardened": ("detected",),
        "recovery": ("contained",),
    },
)

CANARY_BYPASS = Attack(
    name="canary-bypass",
    attack_class="canary-bypass",
    app=HEAPD,
    craft=craft_canary_bypass,
    hijacked=_got_root,
    description="overflow carrying forged canary + chunk header so heap "
                "verification passes; only bounded reads stop it",
    expected={
        "unwrapped": ("escaped",),
        "robustness": ("escaped",),
        "security": ("contained",),
        "hardened": ("contained",),
        "recovery": ("contained",),
    },
    process_kwargs={"heap_canaries": True},
)
