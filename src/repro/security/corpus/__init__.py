"""The curated red-team attack corpus (scored against preset oracles).

Attack classes over the bundled victims (serving included), each a declarative
:class:`~repro.security.corpus.model.Attack` with an expected-
containment table per wrapper preset.  The corpus is executed by
:func:`~repro.security.corpus.model.run_attack` directly (the scored
regression suite) and by the multi-fault
:class:`~repro.chaos.campaign.ChaosCampaign` (adversarial benchmarks).
"""

from repro.security.corpus.heap import (
    CANARY_BYPASS,
    DOUBLE_FREE_CHAIN,
    OVERFLOW_ADJACENT,
    UAF_WRITE,
    craft_canary_bypass,
    craft_double_free,
    craft_heap_smash,
    craft_uaf_write,
)
from repro.security.corpus.io import (
    FORMAT_OVERREAD,
    GETS_FLOOD,
    STEALTH_CORRUPT,
    craft_format_overread,
    craft_format_probe,
    craft_gets_flood,
)
from repro.security.corpus.model import (
    GATED_PRESETS,
    PRESET_CONFIGS,
    VERDICTS,
    Attack,
    AttackRun,
    PresetConfig,
    classify,
    run_attack,
)
from repro.security.corpus.serving import (
    STORED_OVERFLOW,
    craft_stored_overflow,
)
from repro.security.corpus.stack import (
    STACK_SMASH,
    craft_stack_smash,
    craft_stack_smash_protected,
)
from repro.security.corpus.wide import (
    RECORD_FLOOD,
    WIDE_OVERFLOW,
    craft_record_flood,
    craft_wide_overflow,
)

#: the scored corpus, one entry per attack class
CORPUS = [
    OVERFLOW_ADJACENT,
    STACK_SMASH,
    DOUBLE_FREE_CHAIN,
    UAF_WRITE,
    CANARY_BYPASS,
    FORMAT_OVERREAD,
    GETS_FLOOD,
    STEALTH_CORRUPT,
    WIDE_OVERFLOW,
    RECORD_FLOOD,
    STORED_OVERFLOW,
]

#: benign inputs per victim: the false-positive corpus
BENIGN_INPUTS = {
    "authd": b"alice\n",
    "stackd": b"ping\n",
    "msgformat": b"ECHO hello world\nADD 19 23\nQUIT\n",
    "heapd": b"ALLOC 16\nPUT 1 hello\nRUN\nQUIT\n",
    "localed": b"WIDEN hello\nLOAD 2\nQUIT\n",
    "kvd": b"SET greet hello\nGET greet\nDEL greet\nQUIT\n",
}


def attack_by_name(name: str) -> Attack:
    for attack in CORPUS:
        if attack.name == name:
            return attack
    raise KeyError(f"unknown attack {name!r}")


__all__ = [
    "BENIGN_INPUTS",
    "CANARY_BYPASS",
    "CORPUS",
    "DOUBLE_FREE_CHAIN",
    "FORMAT_OVERREAD",
    "GATED_PRESETS",
    "GETS_FLOOD",
    "OVERFLOW_ADJACENT",
    "PRESET_CONFIGS",
    "RECORD_FLOOD",
    "STACK_SMASH",
    "STEALTH_CORRUPT",
    "STORED_OVERFLOW",
    "UAF_WRITE",
    "VERDICTS",
    "WIDE_OVERFLOW",
    "Attack",
    "AttackRun",
    "PresetConfig",
    "attack_by_name",
    "classify",
    "craft_canary_bypass",
    "craft_double_free",
    "craft_format_overread",
    "craft_format_probe",
    "craft_gets_flood",
    "craft_heap_smash",
    "craft_record_flood",
    "craft_stored_overflow",
    "craft_stack_smash",
    "craft_stack_smash_protected",
    "craft_uaf_write",
    "craft_wide_overflow",
    "run_attack",
]
