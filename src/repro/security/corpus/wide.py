"""Full-coverage attack classes: wide-string and size×nmemb overflows.

These two attacks are the red-team argument for introspection-derived
check plans: their sink functions (``wcsncpy``, ``fread``) are *outside*
the campaign-probed subset the hand-tuned robust API covers, so a
robustness wrapper built from the legacy declaration document has no
checks to contain them — only the full-coverage introspected document
(``RobustAPIDocument.build_introspected`` / ``healers derive-checks``)
reaches them.  The security guard derives its capacity checks from the
declared roles either way, which is why the gated presets stay safe in
the scored matrix below while ``robustness`` is expected to escape.
"""

from __future__ import annotations

from repro.apps import LOCALED
from repro.security.corpus.model import Attack, _service_disrupted


def craft_wide_overflow() -> bytes:
    """A display name far longer than the 16-wchar display buffer.

    localed widens the name and copies it with ``wcsncpy(display,
    staging, n)`` where ``n`` is the *source* length + 1: 48 characters
    become 196 bytes written into a 64-byte allocation, clobbering the
    adjacent record cache and heap metadata in 4-byte units.
    """
    return b"WIDEN " + b"W" * 48 + b"\nQUIT\n"


def craft_record_flood() -> bytes:
    """A record count far larger than the in-core cache.

    localed seeds its database with 32 records but caches at most 4;
    ``LOAD 32`` makes ``fread`` pull size×nmemb = 24×32 = 768 bytes into
    the 96-byte cache — the multiplication the size_mul relation in the
    derived check plan exists to catch.
    """
    return b"LOAD 32\nQUIT\n"


WIDE_OVERFLOW = Attack(
    name="wide-overflow",
    attack_class="wide-overflow",
    app=LOCALED,
    craft=craft_wide_overflow,
    hijacked=_service_disrupted,
    description="wcsncpy with n derived from the source: wide-unit "
                "heap overflow past the display buffer",
    expected={
        "unwrapped": ("escaped",),
        "robustness": ("escaped",),
        "security": ("contained", "detected"),
        "hardened": ("contained", "detected"),
        "recovery": ("contained", "repaired"),
    },
)

RECORD_FLOOD = Attack(
    name="record-flood",
    attack_class="fread-overflow",
    app=LOCALED,
    craft=craft_record_flood,
    hijacked=_service_disrupted,
    description="attacker-controlled nmemb: fread size×nmemb overflow "
                "of the record cache",
    expected={
        "unwrapped": ("escaped",),
        "robustness": ("escaped",),
        "security": ("contained", "detected"),
        "hardened": ("contained", "detected"),
        "recovery": ("contained", "repaired"),
    },
)
