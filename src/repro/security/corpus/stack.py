"""Stack-smashing attacks: return-address overwrites [1]."""

from __future__ import annotations

from repro.apps import STACKD
from repro.apps.stacksmash import REQUEST_BUFFER
from repro.apps.stacksmash import gadget_addresses as stackd_gadgets
from repro.runtime import SimProcess
from repro.security.corpus.model import Attack, _address_bytes, _got_root


def craft_stack_smash() -> bytes:
    """Recreate stackd's frame layout to overwrite the return slot."""
    scout = SimProcess()
    gadgets = stackd_gadgets(scout)
    frame = scout.stack.push_frame("handle_request",
                                   return_address=gadgets["return"])
    buffer = scout.stack.alloca(REQUEST_BUFFER)
    distance = frame.return_slot - buffer
    return b"B" * distance + _address_bytes(gadgets["shell"]) + b"\n"


def craft_stack_smash_protected() -> bytes:
    """Stack payload against a *protected* stack (canary slot present).

    The canary shifts the frame layout by one slot; the attacker cannot
    know the canary value, so the payload simply writes through it — the
    protector must catch that.
    """
    scout = SimProcess(stack_protect=True)
    gadgets = stackd_gadgets(scout)
    frame = scout.stack.push_frame("handle_request",
                                   return_address=gadgets["return"])
    buffer = scout.stack.alloca(REQUEST_BUFFER)
    distance = frame.return_slot - buffer
    return b"B" * distance + _address_bytes(gadgets["shell"]) + b"\n"


STACK_SMASH = Attack(
    name="stack-smash",
    attack_class="stack-smash",
    app=STACKD,
    craft=craft_stack_smash_protected,
    hijacked=_got_root,
    description="return-address overwrite through an on-stack buffer "
                "[1]; the stack protector (armed) must catch the "
                "canary clobber even when a wrapper does not",
    expected={
        "unwrapped": ("detected",),
        "robustness": ("detected",),
        "security": ("detected",),
        "hardened": ("detected",),
        "recovery": ("detected",),
    },
    process_kwargs={"stack_protect": True},
)
