"""Serving-path attacks: second-order payloads through kvd's request loop.

The serving anchor app stores attacker data verbatim and only
overflows when the data is *read back*: ``SET`` heap-copies a value at
full length, ``GET`` ``strcat``s it into the fixed
``RESPONSE_BUFFER``-byte reply buffer.  The crafted stream is benign
at every write — the request line fits the request buffer, the stored
copy is exact — so input-side filtering never sees anything wrong; the
violation only exists on the response path, which is precisely the
hot fused trace the serving benchmark measures.
"""

from __future__ import annotations

from repro.apps import KVD
from repro.apps.kvd import REQUEST_BUFFER, RESPONSE_BUFFER
from repro.security.corpus.model import Attack, _service_disrupted


def craft_stored_overflow() -> bytes:
    """A value sized to burst the reply buffer only on read-back.

    Half again the response buffer guarantees the ``strcat`` runs
    through the response chunk's trailing boundary tag into the
    neighbouring stored-key chunk, while the ``SET`` line itself stays
    well inside the request buffer — the store is clean, the echo is
    the exploit.
    """
    value = b"V" * (RESPONSE_BUFFER + RESPONSE_BUFFER // 2)
    line = b"SET bomb " + value
    assert len(line) < REQUEST_BUFFER - 1
    return line + b"\nGET bomb\nQUIT\n"


STORED_OVERFLOW = Attack(
    name="stored-overflow",
    attack_class="second-order-overflow",
    app=KVD,
    craft=craft_stored_overflow,
    hijacked=_service_disrupted,
    description="stored value overflows kvd's fixed reply buffer on "
                "GET read-back: clean on write, exploit on echo",
    expected={
        "unwrapped": ("escaped",),
        "robustness": ("escaped",),
        "security": ("detected",),
        "hardened": ("detected",),
        "recovery": ("contained", "repaired"),
    },
)
