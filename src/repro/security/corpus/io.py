"""Input-channel attacks: floods, stealthy overflows, format abuse."""

from __future__ import annotations

from repro.apps import HEAPD, MSGFORMAT
from repro.security.corpus.model import Attack, _service_disrupted


def craft_gets_flood() -> bytes:
    """Denial-of-service flood: a request far larger than any buffer."""
    return b"ECHO " + b"F" * 600 + b"\nQUIT\n"


def craft_format_probe() -> bytes:
    """Hostile format directives smuggled into the reflected reply.

    msgformat expands the request through ``sprintf``'s ``%s``; the
    response buffer is 160 bytes, so a request that *expands* past it
    (here via padding-width directives after reflection is not possible —
    instead the flood variant is used) is covered by gets_flood.  This
    probe instead overflows the staging buffer just enough to corrupt the
    adjacent response allocation without faulting: a stealthy corruption
    the heap-verification policy must catch.
    """
    return b"ECHO " + b"S" * 80 + b"\nQUIT\n"


def craft_format_overread() -> bytes:
    """A format string consuming far more arguments than supplied.

    heapd's ``NOTE`` renders the attacker's text as the format string of
    a ``sprintf`` call with *zero* variadic arguments: every ``%s``
    walks further past the end of the argument list (an info-leak /
    crash primitive).  The guard's format-arity check must refuse the
    call before the first ``va_arg``.
    """
    return b"NOTE " + b"%s" * 8 + b"\nQUIT\n"


GETS_FLOOD = Attack(
    name="gets-flood",
    attack_class="gets-flood",
    app=MSGFORMAT,
    craft=craft_gets_flood,
    hijacked=_service_disrupted,
    description="over-long request through gets(): crash/corruption DoS",
    expected={
        "unwrapped": ("escaped",),
        "robustness": ("escaped",),
        "security": ("contained",),
        "hardened": ("contained",),
        "recovery": ("contained",),
    },
)

STEALTH_CORRUPT = Attack(
    name="stealth-corrupt",
    attack_class="stealth-corrupt",
    app=MSGFORMAT,
    craft=craft_format_probe,
    hijacked=_service_disrupted,
    description="overflow sized to corrupt heap metadata without faulting",
    expected={
        "unwrapped": ("escaped",),
        "robustness": ("escaped",),
        "security": ("contained",),
        "hardened": ("contained",),
        "recovery": ("contained",),
    },
)

FORMAT_OVERREAD = Attack(
    name="format-overread",
    attack_class="format-overread",
    app=HEAPD,
    craft=craft_format_overread,
    hijacked=_service_disrupted,
    description="attacker-controlled format string consuming va_args "
                "that were never supplied",
    expected={
        "unwrapped": ("escaped",),
        "robustness": ("escaped",),
        "security": ("detected",),
        "hardened": ("detected",),
        "recovery": ("contained",),
    },
)
