"""The pluggable sinks: state rebuild, JSONL, metrics, batched shipping.

* :class:`StateSink` rebuilds a :class:`~repro.wrappers.WrapperState`
  from the event stream, exactly as the pre-bus generators mutated it,
  so the Fig. 5 XML round-trip stays byte-identical.
* :class:`JsonlSink` appends one JSON object per event — the machine-
  readable trace of a hardened run.
* :class:`MetricsSink` keeps counters and per-function latency
  reservoirs (p50/p99 exectime) for live dashboards and benchmarks.
* :class:`CollectionSink` ships rendered profile documents to the
  collection server in batched, retried frames from a background
  thread, replacing the one-shot blocking send per process.

Sinks must not emit into the bus they subscribe to from inside
``handle_batch`` (dispatch runs under the bus lock); background threads
may emit freely.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from collections import Counter
from typing import Any, Callable, Dict, IO, List, Optional, Sequence, Tuple

from repro.telemetry.bus import EventBus, Sink
from repro.telemetry.events import (
    CallEvent,
    CallLogEvent,
    DocumentReady,
    DocumentShipped,
    ErrnoEvent,
    ExectimeEvent,
    SecurityEvent,
    TelemetryEvent,
    ViolationEvent,
)


class StateSink(Sink):
    """Rebuilds a ``WrapperState`` from the event stream.

    Application order matches emission order, and each event applies the
    same mutation the pre-bus micro-generator hooks performed in place —
    the property tests assert the resulting profile XML is
    byte-identical.
    """

    def __init__(self, state=None):
        if state is None:
            from repro.wrappers.state import WrapperState

            state = WrapperState()
        self.state = state

    def handle_batch(self, events: Sequence[TelemetryEvent]) -> None:
        from repro.wrappers.state import (
            SecurityEvent as SecurityRecord,
            ViolationRecord,
        )

        state = self.state
        calls = state.calls
        exectime_ns = state.exectime_ns
        for event in events:
            kind = event.kind
            if kind == "call":
                calls[event.function] += 1
            elif kind == "exectime":
                exectime_ns[event.function] += event.elapsed_ns
            elif kind == "errno":
                if event.scope == "function":
                    state.func_errnos.setdefault(
                        event.function, Counter()
                    )[event.errno_value] += 1
                else:
                    state.global_errnos[event.errno_value] += 1
            elif kind == "violation":
                state.violations.append(
                    ViolationRecord(
                        function=event.function,
                        param=event.param,
                        check=event.check,
                        detail=event.detail,
                    )
                )
            elif kind == "security":
                state.security_events.append(
                    SecurityRecord(
                        function=event.function,
                        reason=event.reason,
                        terminated=event.terminated,
                    )
                )
            elif kind == "call-log":
                state.call_log.append((event.function, event.args))
            # probe/document events carry no wrapper state


class JsonlSink(Sink):
    """Appends one JSON object per event to a path or text stream."""

    def __init__(self, target: "str | IO[str]"):
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "a", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self._lock = threading.Lock()
        self.written = 0

    def handle_batch(self, events: Sequence[TelemetryEvent]) -> None:
        lines = []
        for event in events:
            payload = event.to_dict()
            lines.append(json.dumps(payload, default=repr,
                                    sort_keys=True))
        text = "\n".join(lines) + "\n"
        with self._lock:
            self._handle.write(text)
            self.written += len(events)

    def close(self) -> None:
        with self._lock:
            self._handle.flush()
            if self._owns_handle:
                self._handle.close()


#: per-function latency samples kept before the reservoir stops growing
RESERVOIR_LIMIT = 8192


class MetricsSink(Sink):
    """Counters and latency quantiles over the event stream."""

    def __init__(self, reservoir_limit: int = RESERVOIR_LIMIT):
        self.reservoir_limit = reservoir_limit
        self.calls: Counter = Counter()
        self.errnos: Counter = Counter()
        self.violations: Counter = Counter()       # by check
        self.security_events: Counter = Counter()  # by function
        self.recoveries: Counter = Counter()       # by action
        self.health_transitions: Counter = Counter()  # by (from, to) rung
        self.sheds: Counter = Counter()            # by ladder rung
        self.attacks: Counter = Counter()          # by verdict
        self.escapes = 0
        self.probes = 0
        self.probe_failures = 0
        self.probe_cached = 0
        self.documents_shipped = 0
        self.ship_failures = 0
        self.documents_dropped = 0
        self._exectime: Dict[str, List[int]] = {}
        self._exectime_total: Counter = Counter()
        self._lock = threading.Lock()

    def handle_batch(self, events: Sequence[TelemetryEvent]) -> None:
        with self._lock:
            for event in events:
                kind = event.kind
                if kind == "call":
                    self.calls[event.function] += 1
                elif kind == "exectime":
                    self._exectime_total[event.function] += event.elapsed_ns
                    samples = self._exectime.setdefault(event.function, [])
                    if len(samples) < self.reservoir_limit:
                        samples.append(event.elapsed_ns)
                elif kind == "errno":
                    if event.scope == "global":
                        self.errnos[event.errno_value] += 1
                elif kind == "violation":
                    self.violations[event.check] += 1
                elif kind == "security":
                    self.security_events[event.function] += 1
                elif kind == "recovery":
                    self.recoveries[event.action] += 1
                elif kind == "health":
                    key = f"{event.rung_from}->{event.rung_to}"
                    self.health_transitions[key] += 1
                elif kind == "shed":
                    self.sheds[event.rung] += 1
                elif kind == "attack":
                    self.attacks[event.verdict] += 1
                elif kind == "escape":
                    self.escapes += 1
                elif kind == "probe":
                    self.probes += 1
                    if event.failed:
                        self.probe_failures += 1
                    if event.cached:
                        self.probe_cached += 1
                elif kind == "document-shipped":
                    if event.ok:
                        self.documents_shipped += event.documents
                    else:
                        self.ship_failures += 1
                        self.documents_dropped += event.documents

    # ------------------------------------------------------------------

    @staticmethod
    def _quantile(samples: List[int], q: float) -> int:
        if not samples:
            return 0
        ordered = sorted(samples)
        index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
        return ordered[index]

    def exectime_quantiles(
        self, function: str
    ) -> Tuple[int, int]:
        """(p50, p99) wrapped execution time in ns for one function."""
        with self._lock:
            samples = list(self._exectime.get(function, ()))
        return (self._quantile(samples, 0.50),
                self._quantile(samples, 0.99))

    def snapshot(self) -> Dict[str, Any]:
        """A plain-data view of every metric (JSON-serialisable)."""
        with self._lock:
            quantiles = {
                name: {"p50_ns": self._quantile(samples, 0.50),
                       "p99_ns": self._quantile(samples, 0.99),
                       "total_ns": self._exectime_total[name],
                       "samples": len(samples)}
                for name, samples in sorted(self._exectime.items())
            }
            return {
                "total_calls": sum(self.calls.values()),
                "calls": dict(self.calls),
                "errnos": dict(self.errnos),
                "violations": dict(self.violations),
                "security_events": dict(self.security_events),
                "recoveries": dict(self.recoveries),
                "health_transitions": dict(self.health_transitions),
                "sheds": dict(self.sheds),
                "attacks": dict(self.attacks),
                "escapes": self.escapes,
                "probes": self.probes,
                "probe_failures": self.probe_failures,
                "probe_cached": self.probe_cached,
                "documents_shipped": self.documents_shipped,
                "ship_failures": self.ship_failures,
                "documents_dropped": self.documents_dropped,
                "exectime": quantiles,
            }

    def describe(self, top: int = 10) -> str:
        """Human-readable summary (the ``campaign --metrics`` output)."""
        snap = self.snapshot()
        lines = [
            f"[metrics] {snap['total_calls']} calls, "
            f"{sum(snap['violations'].values())} violations, "
            f"{sum(snap['security_events'].values())} security events, "
            f"{snap['probes']} probes "
            f"({snap['probe_failures']} failed, "
            f"{snap['probe_cached']} cached), "
            f"{snap['documents_shipped']} documents shipped"
            + (f" ({snap['documents_dropped']} dropped)"
               if snap['documents_dropped'] else "")
            + (", recoveries "
               + "/".join(f"{action}:{count}" for action, count
                          in sorted(snap['recoveries'].items()))
               if snap['recoveries'] else "")
        ]
        busiest = sorted(snap["exectime"].items(),
                         key=lambda item: -item[1]["total_ns"])[:top]
        for name, row in busiest:
            lines.append(
                f"[metrics]   {name:<16} p50 {row['p50_ns']:>8} ns   "
                f"p99 {row['p99_ns']:>8} ns   ({row['samples']} samples)"
            )
        return "\n".join(lines)


class CollectionSinkClosed(RuntimeError):
    """``ship()`` on a paced sink during or after ``close()``.

    A paced producer blocked at the watermark is released by
    :meth:`CollectionSink.close` with this error rather than left to
    queue documents into a worker that will never drain them.
    """


class CollectionSink(Sink):
    """Batched, non-blocking, retrying shipper to the collection server.

    ``DocumentReady`` events (or direct :meth:`ship` calls) enqueue the
    rendered XML; a daemon thread drains the queue into multi-document
    frames of up to ``batch_size`` documents, retrying each frame with
    backoff.  Emission never blocks on the network, and :meth:`close`
    drains whatever is pending before returning — no document is lost
    to process exit.

    A frame that exhausts its retries is *dropped*, never silently: the
    drop is counted (:attr:`dropped`), logged as a warning, reported as
    a failed ``DocumentShipped`` event (so a ``MetricsSink`` on the
    report bus surfaces ``documents_dropped``), and included in the
    summary :meth:`close` returns.

    With ``pace=True`` the sink speaks the fabric's credit protocol
    instead: frames ship over one persistent
    :class:`~repro.collection.fabric.FabricClient` connection that paces
    itself against the server's advertised credit, transient failures
    retry forever (the sequenced frames make retries idempotent), and
    producers block at the ``max_pending`` watermark rather than let the
    queue grow without bound.  Backpressure propagates — server to
    connection to queue to producer — so :attr:`dropped` is structurally
    zero: only a server-rejected (``ERR``) frame can ever be dropped.

    Shutdown in pace mode is deterministic: :meth:`close` releases any
    producer blocked at the watermark with :class:`CollectionSinkClosed`
    (never a deadlock, never a silently stranded document), and a paced
    sink stays closed — later ``ship()`` calls raise the same error
    instead of resurrecting the worker.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        batch_size: int = 32,
        flush_interval: float = 0.05,
        retries: int = 3,
        retry_backoff: float = 0.05,
        timeout: float = 5.0,
        report_bus: Optional[EventBus] = None,
        transport: Optional[Callable] = None,
        pace: bool = False,
        max_pending: int = 4096,
    ):
        if batch_size < 1:
            raise ValueError(
                f"batch size must be >= 1, got {batch_size}"
            )
        if max_pending < batch_size:
            raise ValueError(
                f"max_pending ({max_pending}) must be >= batch size "
                f"({batch_size})"
            )
        self.address = address
        self.batch_size = batch_size
        self.flush_interval = flush_interval
        self.retries = max(1, retries)
        self.retry_backoff = retry_backoff
        self.timeout = timeout
        #: bus receiving DocumentShipped events (worker thread only)
        self.report_bus = report_bus
        #: the frame-submission callable, ``(address, documents,
        #: timeout) -> bool``; defaults to the collection client — a
        #: test or chaos harness substitutes its own
        self.transport = transport
        self.pace = pace
        self.max_pending = max_pending
        self._client = None  # lazy FabricClient (pace mode only)
        self.shipped = 0
        self.failed = 0
        self.frames = 0
        self._pending: List[str] = []
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._stop = False
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------

    def handle_batch(self, events: Sequence[TelemetryEvent]) -> None:
        documents = [event.xml for event in events
                     if event.kind == "document-ready"]
        if documents:
            self._enqueue(documents)

    def ship(self, xml_text: str) -> None:
        """Enqueue one document directly (no bus round-trip needed)."""
        self._enqueue([xml_text])

    def _enqueue(self, documents: List[str]) -> None:
        with self._wake:
            if self.pace and self._stop:
                # a paced sink stays closed: resurrecting the worker
                # here would let documents race a close() that already
                # reported its final tallies
                raise CollectionSinkClosed(
                    f"collection sink to {self.address} is closed"
                )
            self._ensure_thread_locked()
            if self.pace:
                # producer-side backpressure: block at the watermark
                # until the worker ships room free (never drop)
                while (len(self._pending) >= self.max_pending
                       and not self._stop):
                    self._wake.wait(timeout=self.flush_interval)
                if self._stop:
                    # close() released the watermark wait; the worker is
                    # shutting down and would never drain these, so the
                    # producer gets an error rather than silent loss
                    raise CollectionSinkClosed(
                        f"collection sink to {self.address} closed while "
                        f"producer was blocked at the watermark"
                    )
            self._pending.extend(documents)
            self._wake.notify_all()

    def _ensure_thread_locked(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            self._stop = False
            self._thread = threading.Thread(
                target=self._drain, name="healers-collection-sink",
                daemon=True,
            )
            self._thread.start()

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------

    def _drain(self) -> None:
        while True:
            with self._wake:
                while not self._pending and not self._stop:
                    self._wake.wait(timeout=self.flush_interval)
                if not self._pending and self._stop:
                    return
                frame = self._pending[: self.batch_size]
                del self._pending[: len(frame)]
                self._wake.notify_all()  # free paced producers
            if frame:
                self._ship_frame(frame)

    def _transport(self) -> Callable:
        if self.transport is not None:
            return self.transport
        if self.pace:
            return self._fabric_ship
        from repro.collection.server import submit_documents
        return submit_documents

    def _fabric_ship(self, address, documents, timeout) -> bool:
        """Pace-mode transport: one persistent, credit-paced connection."""
        if self._client is None:
            from repro.collection.fabric import FabricClient
            self._client = FabricClient(address, timeout=timeout)
        return self._client.ship(documents)

    def _ship_frame(self, frame: List[str]) -> None:
        transport = self._transport()

        frame_bytes = sum(len(doc.encode("utf-8")) for doc in frame)
        attempts = 0
        ok = False
        rejected = False
        while not ok and not rejected:
            attempts += 1
            try:
                ok = transport(self.address, frame, self.timeout)
            except OSError:
                ok = False
            except Exception:
                # a protocol-level ERR is permanent: the server refused
                # the frame, retrying cannot help even in pace mode
                rejected = True
            if ok or rejected:
                break
            if self.pace:
                # transient failure in pace mode: never drop — back off
                # (capped) and retry; sequenced frames make it idempotent
                time.sleep(self.retry_backoff * min(attempts, 8))
            elif attempts < self.retries:
                time.sleep(self.retry_backoff * attempts)
            else:
                break
        self.frames += 1
        if ok:
            self.shipped += len(frame)
        else:
            self.failed += len(frame)
            logging.getLogger("repro.telemetry").warning(
                "collection sink dropped %d document(s) after %d "
                "attempt(s) to %s (%d dropped total)",
                len(frame), attempts, self.address, self.failed,
            )
        if self.report_bus is not None:
            self.report_bus.emit(
                DocumentShipped(documents=len(frame),
                                frame_bytes=frame_bytes, ok=ok,
                                attempts=attempts)
            )

    # ------------------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Documents abandoned after exhausting every retry."""
        return self.failed

    def close(self, timeout: float = 30.0) -> Dict[str, int]:
        """Drain the queue, stop the worker, and report the tallies.

        Returns ``{"shipped", "dropped", "frames", "pending"}`` —
        ``pending`` is non-zero only when the drain timed out.
        """
        with self._wake:
            thread = self._thread
            self._stop = True
            self._wake.notify_all()
        if thread is not None:
            thread.join(timeout=timeout)
        if self._client is not None:
            try:
                self._client.close()
            except (OSError, ConnectionError):
                pass
            self._client = None
        summary = {
            "shipped": self.shipped,
            "dropped": self.failed,
            "frames": self.frames,
            "pending": self.pending(),
        }
        if summary["dropped"]:
            logging.getLogger("repro.telemetry").warning(
                "collection sink closed with %d dropped document(s) "
                "across %d frame(s)", summary["dropped"],
                summary["frames"],
            )
        return summary

    def pending(self) -> int:
        with self._lock:
            return len(self._pending)
