"""One observability layer for every HEALERS subsystem.

The paper's wrappers "send the gathered information to a central server
… in form of a self-describing XML document" (Sec. 2, Fig. 5).  This
package is the reproduction's single pipeline for that flow: typed
events (:mod:`repro.telemetry.events`), a lock-cheap bounded
:class:`EventBus` (:mod:`repro.telemetry.bus`), and pluggable sinks
(:mod:`repro.telemetry.sinks`) — so the wrapper runtime, the security
guard, the injection engine and the collection shipper all emit into
one event contract instead of private side channels.
"""

from repro.telemetry.bus import EventBus, Sink
from repro.telemetry.events import (
    AttackEvent,
    CallEvent,
    CallLogEvent,
    DocumentReady,
    DocumentShipped,
    ErrnoEvent,
    ExectimeEvent,
    EscapeEvent,
    HealthEvent,
    ProbeEvent,
    RecoveryEvent,
    SecurityEvent,
    ShedEvent,
    TelemetryEvent,
    ViolationEvent,
)
from repro.telemetry.sinks import (
    CollectionSink,
    CollectionSinkClosed,
    JsonlSink,
    MetricsSink,
    StateSink,
)

__all__ = [
    "AttackEvent",
    "CallEvent",
    "CallLogEvent",
    "CollectionSink",
    "CollectionSinkClosed",
    "DocumentReady",
    "DocumentShipped",
    "ErrnoEvent",
    "EscapeEvent",
    "EventBus",
    "ExectimeEvent",
    "HealthEvent",
    "JsonlSink",
    "MetricsSink",
    "ProbeEvent",
    "RecoveryEvent",
    "SecurityEvent",
    "ShedEvent",
    "Sink",
    "StateSink",
    "TelemetryEvent",
    "ViolationEvent",
]
