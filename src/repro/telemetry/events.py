"""The typed event model: one contract for every emitting layer.

Each event is a small ``__slots__`` record with a stable ``kind`` tag,
so sinks can dispatch without ``isinstance`` chains and the JSONL sink
can serialise any event the same way.  Events on the wrapper hot path
(:class:`CallEvent`, :class:`ExectimeEvent`, :class:`ErrnoEvent`) keep
hand-written ``__init__`` bodies — dataclass machinery would double the
per-call construction cost the overhead gate budgets for.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple


class TelemetryEvent:
    """Base class: a tagged record every sink understands."""

    __slots__ = ()

    #: stable wire tag (JSONL ``kind`` field)
    kind: str = "event"

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"kind": self.kind}
        for name in self.__slots__:  # type: ignore[attr-defined]
            payload[name] = getattr(self, name)
        return payload

    def __repr__(self) -> str:  # uniform debugging form
        fields = ", ".join(
            f"{name}={getattr(self, name)!r}"
            for name in self.__slots__  # type: ignore[attr-defined]
        )
        return f"{type(self).__name__}({fields})"

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name)
            for name in self.__slots__  # type: ignore[attr-defined]
        )


class CallEvent(TelemetryEvent):
    """One wrapped call entered (Fig. 3's call counter)."""

    __slots__ = ("function",)
    kind = "call"

    def __init__(self, function: str):
        self.function = function


class ExectimeEvent(TelemetryEvent):
    """One wrapped call's measured duration (Fig. 3's rdtsc pair)."""

    __slots__ = ("function", "elapsed_ns")
    kind = "exectime"

    def __init__(self, function: str, elapsed_ns: int):
        self.function = function
        self.elapsed_ns = elapsed_ns


class ErrnoEvent(TelemetryEvent):
    """One observed errno change, already clamped to the MAX_ERRNO guard.

    ``scope`` is ``"global"`` for the collect-errors feature and
    ``"function"`` for the func-errors feature, mirroring the two
    separate counter arrays of the generated C.
    """

    __slots__ = ("function", "errno_value", "scope")
    kind = "errno"

    def __init__(self, function: str, errno_value: int,
                 scope: str = "global"):
        self.function = function
        self.errno_value = errno_value
        self.scope = scope


class ViolationEvent(TelemetryEvent):
    """One contained robustness violation (arg-check refusal)."""

    __slots__ = ("function", "param", "check", "detail")
    kind = "violation"

    def __init__(self, function: str, param: str, check: str, detail: str):
        self.function = function
        self.param = param
        self.check = check
        self.detail = detail


class SecurityEvent(TelemetryEvent):
    """One blocked security-relevant operation (heap guard)."""

    __slots__ = ("function", "reason", "terminated")
    kind = "security"

    def __init__(self, function: str, reason: str, terminated: bool):
        self.function = function
        self.reason = reason
        self.terminated = terminated


class RecoveryEvent(TelemetryEvent):
    """One recovery-policy decision for a detected violation.

    ``violation`` is the recovery taxonomy kind (heap_corruption, canary,
    bounds, format, unsafe_gets, argcheck, transient_errno) — named
    ``violation`` rather than ``kind`` because ``kind`` is the wire tag
    every event carries.  ``recovered`` reports whether the action left
    the process able to continue (repair restored heap integrity, a retry
    eventually succeeded, or the call was contained to an error return).
    """

    __slots__ = ("function", "violation", "action", "attempts",
                 "recovered", "detail")
    kind = "recovery"

    def __init__(self, function: str, violation: str, action: str,
                 attempts: int = 1, recovered: bool = True,
                 detail: str = ""):
        self.function = function
        self.violation = violation
        self.action = action
        self.attempts = attempts
        self.recovered = recovered
        self.detail = detail


class CallLogEvent(TelemetryEvent):
    """One (function, argument vector) record from the logging wrapper."""

    __slots__ = ("function", "args")
    kind = "call-log"

    def __init__(self, function: str, args: Tuple[Any, ...]):
        self.function = function
        self.args = args


class ProbeEvent(TelemetryEvent):
    """One fault-injection probe verdict from the campaign engine."""

    __slots__ = ("function", "param", "value_label", "outcome", "failed",
                 "cached")
    kind = "probe"

    def __init__(self, function: str, param: str, value_label: str,
                 outcome: str, failed: bool, cached: bool = False):
        self.function = function
        self.param = param
        self.value_label = value_label
        self.outcome = outcome
        self.failed = failed
        self.cached = cached


class AttackEvent(TelemetryEvent):
    """One scored red-team attack execution (adversarial campaign)."""

    __slots__ = ("attack", "attack_class", "preset", "app", "verdict")
    kind = "attack"

    def __init__(self, attack: str, attack_class: str, preset: str,
                 app: str, verdict: str):
        self.attack = attack
        self.attack_class = attack_class
        self.preset = preset
        self.app = app
        self.verdict = verdict


class EscapeEvent(TelemetryEvent):
    """A containment escape, with everything needed to replay it.

    ``faults`` is the k-fault schedule (site, invocation-index) pairs
    active during the escaping run; together with ``(seed, trial, k)``
    it reconstructs the exact :class:`~repro.chaos.multifault.KFaultPlan`.
    """

    __slots__ = ("attack", "preset", "app", "seed", "trial", "k",
                 "faults")
    kind = "escape"

    def __init__(self, attack: str, preset: str, app: str, seed: int,
                 trial: int, k: int, faults: Tuple[Tuple[str, int], ...]):
        self.attack = attack
        self.preset = preset
        self.app = app
        self.seed = seed
        self.trial = trial
        self.k = k
        self.faults = faults


class HealthEvent(TelemetryEvent):
    """One circuit-breaker rung transition on the degradation ladder.

    ``rung_from``/``rung_to`` are names from
    :data:`~repro.recovery.breaker.RUNGS`; ``request_index`` is the
    admitted request whose outcome caused the move, which together with
    the storm's (seed, trial) witness replays the decision.
    """

    __slots__ = ("app", "preset", "rung_from", "rung_to", "reason",
                 "request_index")
    kind = "health"

    def __init__(self, app: str, preset: str, rung_from: str,
                 rung_to: str, reason: str, request_index: int):
        self.app = app
        self.preset = preset
        self.rung_from = rung_from
        self.rung_to = rung_to
        self.reason = reason
        self.request_index = request_index


class ShedEvent(TelemetryEvent):
    """One request rejected by load-shedding admission control."""

    __slots__ = ("app", "preset", "request_index", "rung", "reason")
    kind = "shed"

    def __init__(self, app: str, preset: str, request_index: int,
                 rung: str, reason: str = "admission"):
        self.app = app
        self.preset = preset
        self.request_index = request_index
        self.rung = rung
        self.reason = reason


class DocumentReady(TelemetryEvent):
    """A rendered profile document awaiting shipment to the collector."""

    __slots__ = ("application", "xml")
    kind = "document-ready"

    def __init__(self, application: str, xml: str):
        self.application = application
        self.xml = xml


class DocumentShipped(TelemetryEvent):
    """One batched frame acknowledged (or abandoned) by the collector."""

    __slots__ = ("documents", "frame_bytes", "ok", "attempts")
    kind = "document-shipped"

    def __init__(self, documents: int, frame_bytes: int, ok: bool,
                 attempts: int):
        self.documents = documents
        self.frame_bytes = frame_bytes
        self.ok = ok
        self.attempts = attempts
