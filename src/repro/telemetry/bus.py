"""A lock-cheap event bus with bounded ring-buffer batching.

``emit`` is the wrapper hot path: one lock-free (GIL-atomic) append to
the current batch.  When the batch reaches capacity it is cut and
dispatched to every sink *synchronously, under the flush lock* — so no
event is ever dropped (the bound triggers a flush, not a discard),
batches reach sinks in cut order, and sinks only ever see whole
batches.  The amortised per-event dispatch cost is what the overhead
benchmark gates.
"""

from __future__ import annotations

import threading
from typing import Iterable, List, Optional, Sequence

from repro.telemetry.events import TelemetryEvent


class Sink:
    """Base class for event consumers.

    A sink receives whole batches (``handle_batch``); ``close`` flushes
    whatever the sink buffers itself.  Subclasses override either or
    both.  Any object with the same two methods also qualifies — the
    bus duck-types.
    """

    def handle_batch(self, events: Sequence[TelemetryEvent]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; further batches must not arrive."""


class EventBus:
    """Bounded batching fan-out to pluggable sinks.

    ``capacity`` bounds the in-flight buffer: reaching it flushes
    inline, so memory stays bounded without losing events.  A bus with
    no sinks is a cheap null device (events are buffered then discarded
    at flush), which keeps emitting code unconditional.

    The hot path takes no lock: ``list.append`` on the (identity-stable)
    buffer is atomic under the GIL.  Only flushing locks, and it cuts
    the buffer by slice-copy + prefix-delete rather than swapping the
    list object, so a concurrent append can never land on a stale
    buffer — it either makes the cut or survives the delete.
    """

    def __init__(self, capacity: int = 256,
                 sinks: Optional[Iterable[Sink]] = None):
        if capacity < 1:
            raise ValueError(f"bus capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._sinks: List[Sink] = list(sinks or ())
        self._buffer: List[TelemetryEvent] = []
        self._lock = threading.Lock()
        #: events already dispatched / batches cut (monotonic)
        self._drained = 0
        self.batches = 0
        self._epoch = 0

    # ------------------------------------------------------------------
    # sink management
    # ------------------------------------------------------------------

    def subscribe(self, sink: Sink) -> Sink:
        with self._lock:
            self._sinks.append(sink)
            self._epoch += 1
        return sink

    def unsubscribe(self, sink: Sink) -> None:
        with self._lock:
            self._sinks.remove(sink)
            self._epoch += 1

    @property
    def epoch(self) -> int:
        """Monotonic sink-configuration version.

        Bumped by every ``subscribe``/``unsubscribe``.  A serving fast
        path snapshots ``(epoch, bool(sink_view))`` once per request and
        re-derives its telemetry mode only when the epoch moved, so
        telemetry-off request loops pay zero per-call ``sink_view``
        probes while a late subscription still takes effect on the next
        request boundary.
        """
        return self._epoch

    @property
    def sinks(self) -> List[Sink]:
        with self._lock:
            return list(self._sinks)

    @property
    def sink_view(self) -> List[Sink]:
        """The live sink list itself — identity-stable, do not mutate.

        ``subscribe``/``unsubscribe`` mutate this list in place, never
        replace it, so compiled wrappers can capture it once at build
        time and test its truthiness per call to decide whether
        telemetry-only hooks need to run at all.
        """
        return self._sinks

    # ------------------------------------------------------------------
    # the hot path
    # ------------------------------------------------------------------

    @property
    def emitted(self) -> int:
        """Events accepted so far (exact once emitters are quiescent)."""
        return self._drained + len(self._buffer)

    def emit(self, event: TelemetryEvent) -> None:
        """Append one event; flush inline when the buffer fills."""
        buffer = self._buffer
        buffer.append(event)  # GIL-atomic: no lock on the hot path
        if len(buffer) >= self.capacity:
            self.flush()

    def emit_many(self, events: Sequence[TelemetryEvent]) -> None:
        buffer = self._buffer
        capacity = self.capacity
        for event in events:
            buffer.append(event)
            if len(buffer) >= capacity:
                self.flush()

    def flush(self) -> None:
        """Dispatch whatever is buffered (idempotent when empty)."""
        with self._lock:
            self._dispatch_locked()

    def close(self) -> None:
        """Flush, then close every sink."""
        self.flush()
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "EventBus":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _dispatch_locked(self) -> None:
        buffer = self._buffer
        batch = buffer[:]
        if not batch:
            return
        # cut a prefix, never swap: late appends stay on the live list
        del buffer[: len(batch)]
        self._drained += len(batch)
        self.batches += 1
        for sink in self._sinks:
            sink.handle_batch(batch)
