"""The simulated dynamic linker: search order, LD_PRELOAD, RTLD_NEXT.

Reproduces the interposition mechanism of Section 2.1: "a user interested
in using a wrapper can preload it by defining the LD_PRELOAD environment
variable".  Preloaded libraries are searched before the needed libraries,
so a wrapper's ``strcpy`` shadows libc's; the wrapper reaches the original
through :meth:`DynamicLinker.resolve_next` — the moral equivalent of the
``addr_wctrans`` pointer obtained with ``dlsym(RTLD_NEXT, ...)`` in the
paper's generated code (Fig. 3).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.linker.library import ResolutionRecord, SharedLibrary, Symbol
from repro.runtime.process import SimProcess


class UnresolvedSymbolError(LookupError):
    """A referenced symbol has no definition in the search scope."""

    def __init__(self, name: str, searched: List[str]):
        self.name = name
        self.searched = searched
        super().__init__(
            f"undefined symbol {name!r} (searched: {', '.join(searched) or 'nothing'})"
        )


class DynamicLinker:
    """Resolves symbols across preloaded and needed libraries."""

    def __init__(self) -> None:
        self._libraries: Dict[str, SharedLibrary] = {}
        self._preload: List[SharedLibrary] = []

    # ------------------------------------------------------------------
    # library management
    # ------------------------------------------------------------------

    def add_library(self, library: SharedLibrary) -> None:
        """Install a library into the system search path."""
        self._libraries[library.soname] = library

    def preload(self, library: SharedLibrary) -> None:
        """LD_PRELOAD: search this library before all needed libraries."""
        self.add_library(library)
        self._preload.append(library)

    def clear_preloads(self) -> None:
        """Drop all preloads (unset LD_PRELOAD)."""
        self._preload.clear()

    def library(self, soname: str) -> Optional[SharedLibrary]:
        return self._libraries.get(soname)

    def libraries(self) -> List[SharedLibrary]:
        """All installed libraries (preloads first, then the rest)."""
        rest = [
            lib for lib in self._libraries.values() if lib not in self._preload
        ]
        return list(self._preload) + rest

    @property
    def preloads(self) -> List[SharedLibrary]:
        return list(self._preload)

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------

    def _search_order(self, needed: Optional[List[str]] = None) -> List[SharedLibrary]:
        scope: List[SharedLibrary] = list(self._preload)
        if needed is None:
            scope += [
                lib for lib in self._libraries.values()
                if lib not in self._preload
            ]
            return scope
        seen = {lib.soname for lib in scope}
        queue = list(needed)
        while queue:
            soname = queue.pop(0)
            if soname in seen:
                continue
            seen.add(soname)
            library = self._libraries.get(soname)
            if library is None:
                continue
            scope.append(library)
            queue.extend(library.needed)
        return scope

    def resolve(self, name: str,
                needed: Optional[List[str]] = None) -> ResolutionRecord:
        """Bind a symbol reference, honouring preload interposition.

        ``needed`` restricts the search to an executable's dependency
        closure; None searches everything (the toolkit's own view).
        """
        scope = self._search_order(needed)
        shadowed: List[str] = []
        found: Optional[Symbol] = None
        for library in scope:
            symbol = library.lookup(name)
            if symbol is None:
                continue
            if found is None:
                found = symbol
            else:
                shadowed.append(library.soname)
        if found is None:
            raise UnresolvedSymbolError(name, [lib.soname for lib in scope])
        return ResolutionRecord(
            name=name,
            symbol=found,
            interposed=found.library in self._preload and bool(shadowed),
            shadowed=shadowed,
        )

    def resolve_next(self, name: str, after: SharedLibrary,
                     needed: Optional[List[str]] = None) -> Symbol:
        """dlsym(RTLD_NEXT): the next definition after ``after`` in order."""
        scope = self._search_order(needed)
        try:
            start = scope.index(after) + 1
        except ValueError:
            start = 0
        for library in scope[start:]:
            symbol = library.lookup(name)
            if symbol is not None:
                return symbol
        raise UnresolvedSymbolError(
            name, [lib.soname for lib in scope[start:]]
        )

    # ------------------------------------------------------------------
    # program loading
    # ------------------------------------------------------------------

    def load(self, needed: List[str], undefined: List[str],
             process: SimProcess) -> "LinkedImage":
        """Eagerly bind an executable's undefined symbols (BIND_NOW).

        Raises :class:`UnresolvedSymbolError` when any reference cannot be
        satisfied — the same failure ld.so reports at startup.
        """
        table: Dict[str, ResolutionRecord] = {}
        for name in undefined:
            table[name] = self.resolve(name, needed=needed)
        return LinkedImage(process=process, bindings=table, linker=self,
                           needed=list(needed))


class LinkedImage:
    """A loaded program: its process plus the resolved PLT."""

    def __init__(self, process: SimProcess,
                 bindings: Dict[str, ResolutionRecord],
                 linker: DynamicLinker, needed: List[str]):
        self.process = process
        self.bindings = bindings
        self.linker = linker
        self.needed = needed

    def call(self, name: str, *args: Any) -> Any:
        """Call through the PLT (lazily binding unseen names)."""
        record = self.bindings.get(name)
        if record is None:
            record = self.linker.resolve(name, needed=self.needed)
            self.bindings[name] = record
        return record.symbol(self.process, *args)

    def binding(self, name: str) -> Optional[ResolutionRecord]:
        return self.bindings.get(name)

    def interposed_symbols(self) -> List[str]:
        """Names bound to a preloaded (wrapper) definition."""
        return sorted(
            name for name, record in self.bindings.items() if record.interposed
        )
