"""Shared-library objects for the simulated dynamic linker.

A :class:`SharedLibrary` is the unit the HEALERS toolkit operates on: a
named bag of symbols (callables over a :class:`~repro.runtime.SimProcess`)
plus their prototypes.  The simulated libc becomes one of these via
:func:`SharedLibrary.from_registry`; generated wrapper libraries are built
as :class:`SharedLibrary` instances whose symbols shadow libc's when
preloaded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.headers.model import Prototype

#: a symbol implementation: (process, *args) -> value
SymbolImpl = Callable[..., Any]


@dataclass
class Symbol:
    """One defined symbol in a shared library."""

    name: str
    impl: SymbolImpl
    library: "SharedLibrary"
    prototype: Optional[Prototype] = None

    def __call__(self, process, *args):
        return self.impl(process, *args)

    def __repr__(self) -> str:
        return f"Symbol({self.name!r} in {self.library.soname!r})"


class SharedLibrary:
    """A dynamically loadable library: soname + defined symbols."""

    def __init__(self, soname: str, needed: Optional[List[str]] = None):
        self.soname = soname
        self.needed: List[str] = list(needed or [])
        self._symbols: Dict[str, Symbol] = {}
        self._prototypes: Dict[str, Prototype] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_registry(cls, registry) -> "SharedLibrary":
        """Wrap a :class:`~repro.libc.LibcRegistry` as a shared library."""
        library = cls(registry.library_name)
        for function in registry:
            library.define(function.name, function.impl,
                           prototype=function.prototype)
        return library

    def define(self, name: str, impl: SymbolImpl,
               prototype: Optional[Prototype] = None) -> Symbol:
        """Add (or replace) a defined symbol."""
        symbol = Symbol(name=name, impl=impl, library=self,
                        prototype=prototype)
        self._symbols[name] = symbol
        if prototype is not None:
            self._prototypes[name] = prototype
        return symbol

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def lookup(self, name: str) -> Optional[Symbol]:
        """Find a defined symbol by name."""
        return self._symbols.get(name)

    def defines(self, name: str) -> bool:
        return name in self._symbols

    def prototype(self, name: str) -> Optional[Prototype]:
        return self._prototypes.get(name)

    def exported_names(self) -> List[str]:
        """All defined symbol names, sorted (the dynsym view)."""
        return sorted(self._symbols)

    def symbols(self) -> Iterator[Symbol]:
        return iter(self._symbols.values())

    def __len__(self) -> int:
        return len(self._symbols)

    def __repr__(self) -> str:
        return f"SharedLibrary({self.soname!r}, {len(self)} symbols)"


@dataclass
class ResolutionRecord:
    """Where a symbol reference was bound (for diagnostics and tests)."""

    name: str
    symbol: Symbol
    interposed: bool = False
    #: sonames of preloaded libraries that shadowed the base definition
    shadowed: List[str] = field(default_factory=list)
