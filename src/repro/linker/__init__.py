"""Simulated dynamic linking: shared libraries, LD_PRELOAD, RTLD_NEXT."""

from repro.linker.library import ResolutionRecord, SharedLibrary, Symbol
from repro.linker.linker import DynamicLinker, LinkedImage, UnresolvedSymbolError

__all__ = [
    "DynamicLinker",
    "LinkedImage",
    "ResolutionRecord",
    "SharedLibrary",
    "Symbol",
    "UnresolvedSymbolError",
]
