"""Registry of simulated C library functions.

Every libc function is registered with its C declaration (parsed into a
:class:`~repro.headers.model.Prototype`), an implementation operating on a
:class:`~repro.runtime.SimProcess`, and an optional *error detector* that
tells the sandbox which return values signal an error (e.g. NULL from
``malloc`` with errno set).

The registry is what the HEALERS toolkit enumerates when it "finds all
functions defined in that library" — it plays the role of the shared
object's dynamic symbol table plus the parsed prototype information.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.headers.model import Prototype
from repro.headers.parser import parse_prototype
from repro.runtime.process import SimProcess

#: implementation signature: (process, *argument values) -> return value
Impl = Callable[..., Any]
#: (return value, errno) -> True when the return signals an error
ErrorDetector = Callable[[Any, int], bool]


def null_on_error(value: Any, errno: int) -> bool:
    """Error convention: NULL return (optionally with errno)."""
    return value == 0


def negative_on_error(value: Any, errno: int) -> bool:
    """Error convention: negative return value."""
    return isinstance(value, int) and value < 0


def errno_only(value: Any, errno: int) -> bool:
    """Error convention: any nonzero errno after the call."""
    return errno != 0


@dataclass
class LibFunction:
    """One simulated C library function."""

    prototype: Prototype
    impl: Impl
    error_detector: Optional[ErrorDetector] = None
    category: str = "misc"
    #: short description used in generated XML declaration files
    summary: str = ""

    @property
    def name(self) -> str:
        return self.prototype.name

    @property
    def header(self) -> str:
        return self.prototype.header

    def __call__(self, process: SimProcess, *args: Any) -> Any:
        return self.impl(process, *args)


class LibcRegistry:
    """Name → :class:`LibFunction` mapping for one simulated library."""

    def __init__(self, library_name: str = "libc.so.6",
                 version: str = "1.0"):
        self.library_name = library_name
        #: library release; probe caches are keyed by name+version so a
        #: new release never reuses stale verdicts
        self.version = version
        self._functions: Dict[str, LibFunction] = {}

    @property
    def release(self) -> str:
        """``name@version`` — the cache-key identity of this library."""
        return f"{self.library_name}@{self.version}"

    def fingerprint(self) -> str:
        """Content hash over every registered declaration.

        A registry whose function set or prototypes changed produces a
        different fingerprint even at the same version string, which
        lets the probe cache detect silent drift.
        """
        digest = hashlib.sha256()
        for name in self.names():
            digest.update(self._functions[name].prototype.declare().encode())
        return digest.hexdigest()[:16]

    def register(self, function: LibFunction) -> None:
        if function.name in self._functions:
            raise ValueError(f"duplicate libc function {function.name!r}")
        self._functions[function.name] = function

    def get(self, name: str) -> Optional[LibFunction]:
        return self._functions.get(name)

    def __getitem__(self, name: str) -> LibFunction:
        return self._functions[name]

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def __iter__(self) -> Iterator[LibFunction]:
        return iter(self._functions.values())

    def __len__(self) -> int:
        return len(self._functions)

    def names(self) -> List[str]:
        return sorted(self._functions)

    def by_category(self, category: str) -> List[LibFunction]:
        return [f for f in self if f.category == category]

    def prototypes(self) -> List[Prototype]:
        return [f.prototype for f in self]


def libc_function(
    registry: LibcRegistry,
    declaration: str,
    header: str,
    category: str,
    error_detector: Optional[ErrorDetector] = None,
    summary: str = "",
) -> Callable[[Impl], Impl]:
    """Decorator registering ``impl`` under its C declaration.

    Example::

        @libc_function(reg, "size_t strlen(const char *s)",
                       header="string.h", category="string")
        def strlen(proc, s):
            ...
    """

    prototype = parse_prototype(declaration)
    prototype.header = header

    def decorate(impl: Impl) -> Impl:
        registry.register(
            LibFunction(
                prototype=prototype,
                impl=impl,
                error_detector=error_detector,
                category=category,
                summary=summary or (impl.__doc__ or "").strip().splitlines()[0]
                if impl.__doc__
                else summary,
            )
        )
        return impl

    return decorate
