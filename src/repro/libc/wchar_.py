"""Simulated <wchar.h> / <wctype.h> family.

Wide characters are 4 bytes (glibc's ``wchar_t``).  ``wctrans`` is the
function the paper's Fig. 3 wraps, so it is reproduced carefully: it maps
a *name string* to a transformation descriptor, returning 0 for unknown
names — and dereferences its argument without checking, so ``wctrans(NULL)``
is a crash the fault injector finds.
"""

from __future__ import annotations

from repro.libc import helpers
from repro.libc.registry import LibcRegistry, libc_function, null_on_error
from repro.memory.model import first_mismatch
from repro.runtime.process import SimProcess

WCHAR_SIZE = 4

#: transformation descriptors returned by wctrans()
TRANS_TOLOWER = 1
TRANS_TOUPPER = 2

#: classification descriptors returned by wctype()
_WCTYPE_NAMES = {
    b"alnum": 1,
    b"alpha": 2,
    b"blank": 3,
    b"cntrl": 4,
    b"digit": 5,
    b"graph": 6,
    b"lower": 7,
    b"print": 8,
    b"punct": 9,
    b"space": 10,
    b"upper": 11,
    b"xdigit": 12,
}


def read_wchar(proc: SimProcess, address: int) -> int:
    """Read one wchar_t (consumes fuel like the byte loops do)."""
    proc.consume()
    return proc.space.read_u32(address)


def _find_terminator(space, address: int, limit_chars=None):
    """Locate the zero word of a wide string via chunked bulk windows.

    Returns ``(index, scanned)`` in characters: ``index`` is the terminator
    position (None if absent) and ``scanned`` is how many characters were
    reachable — at ``scanned`` the next ``read_u32`` would fault (or the
    ``limit_chars`` bound was hit).
    """
    total = 0
    chunk = 256
    while limit_chars is None or total < limit_chars:
        cap = chunk
        if limit_chars is not None:
            cap = min(cap, limit_chars - total)
        chars, data = helpers.wide_window(space, address + total * WCHAR_SIZE, cap)
        index = helpers.find_word(data, 0)
        if index is not None:
            return total + index, total + index + 1
        total += chars
        if chars < cap:
            break
        chunk *= 4
    return None, total


def _scalar_wcslen(proc: SimProcess, s: int) -> int:
    length = 0
    while read_wchar(proc, s + length * WCHAR_SIZE) != 0:
        length += 1
    return length


def _scalar_wcscpy(proc: SimProcess, dest: int, src: int) -> int:
    offset = 0
    while True:
        value = read_wchar(proc, src + offset)
        proc.space.write_u32(dest + offset, value)
        if value == 0:
            return dest
        offset += WCHAR_SIZE


def _scalar_wcsncpy(proc: SimProcess, dest: int, src: int, n: int) -> int:
    terminated = False
    for index in range(n):
        if terminated:
            proc.consume()
            proc.space.write_u32(dest + index * WCHAR_SIZE, 0)
        else:
            value = read_wchar(proc, src + index * WCHAR_SIZE)
            proc.space.write_u32(dest + index * WCHAR_SIZE, value)
            if value == 0:
                terminated = True
    return dest


def _scalar_wcscmp(proc: SimProcess, s1: int, s2: int) -> int:
    offset = 0
    while True:
        a = read_wchar(proc, s1 + offset)
        b = read_wchar(proc, s2 + offset)
        if a != b:
            return helpers.int_result(a - b, 32)
        if a == 0:
            return 0
        offset += WCHAR_SIZE


def _scalar_wcschr(proc: SimProcess, s: int, c: int) -> int:
    cursor = s
    while True:
        value = read_wchar(proc, cursor)
        if value == (c & 0xFFFFFFFF):
            return cursor
        if value == 0:
            return 0
        cursor += WCHAR_SIZE


def register(reg: LibcRegistry) -> None:
    """Register the wide-character family into ``reg``."""

    @libc_function(reg, "size_t wcslen(const wchar_t *s)",
                   header="wchar.h", category="wide")
    def wcslen(proc: SimProcess, s: int) -> int:
        """Length of a wide string in characters."""
        space = proc.space
        if space.scalar:
            return _scalar_wcslen(proc, s)
        index, scanned = _find_terminator(space, s)
        if index is not None:
            proc.consume_metered(index + 1)
            return index
        proc.consume_metered(scanned + 1)
        space.read_u32(s + scanned * WCHAR_SIZE)
        raise AssertionError("wcslen fault replay did not fault")

    @libc_function(reg, "wchar_t *wcscpy(wchar_t *dest, const wchar_t *src)",
                   header="wchar.h", category="wide")
    def wcscpy(proc: SimProcess, dest: int, src: int) -> int:
        """Copy a wide string including its terminator; no bounds check."""
        space = proc.space
        if space.scalar:
            return _scalar_wcscpy(proc, dest, src)
        index, scanned = _find_terminator(space, src)
        span = (index + 1) if index is not None else scanned + 1
        if src < dest < src + span * WCHAR_SIZE:
            return _scalar_wcscpy(proc, dest, src)
        headroom = proc.fuel_headroom()
        if index is not None:
            need = index + 1
            writable = helpers.wide_writable_chars(space, dest, need)
            if writable >= need:
                side = need if headroom is None else min(need, headroom)
                if side:
                    space.write_run(dest, space.read_run(src, side * WCHAR_SIZE))
                proc.consume_metered(need)
                return dest
            side = writable if headroom is None else min(writable, headroom)
            if side:
                space.write_run(dest, space.read_run(src, side * WCHAR_SIZE))
            proc.consume_metered(writable + 1)
            space.write_u32(dest + writable * WCHAR_SIZE, 0)
            raise AssertionError("wcscpy fault replay did not fault")
        writable = helpers.wide_writable_chars(space, dest, scanned + 1)
        processed = min(scanned, writable)
        side = processed if headroom is None else min(processed, headroom)
        if side:
            space.write_run(dest, space.read_run(src, side * WCHAR_SIZE))
        proc.consume_metered(processed + 1)
        if scanned <= writable:
            space.read_u32(src + scanned * WCHAR_SIZE)
        else:
            space.write_u32(dest + writable * WCHAR_SIZE, 0)
        raise AssertionError("wcscpy fault replay did not fault")

    @libc_function(reg,
                   "wchar_t *wcsncpy(wchar_t *dest, const wchar_t *src, size_t n)",
                   header="wchar.h", category="wide")
    def wcsncpy(proc: SimProcess, dest: int, src: int, n: int) -> int:
        """Copy at most n wide characters, padding with L'\\0'."""
        space = proc.space
        if space.scalar or n <= 0 or src < dest < src + n * WCHAR_SIZE:
            return _scalar_wcsncpy(proc, dest, src, n)
        index, scanned = _find_terminator(space, src, n)
        if index is not None:
            copy_chars, read_ok = index + 1, True
        elif scanned >= n:
            copy_chars, read_ok = n, True
        else:
            copy_chars, read_ok = scanned, False
        writable = helpers.wide_writable_chars(space, dest, n)
        headroom = proc.fuel_headroom()
        if read_ok and writable >= n:
            side = n if headroom is None else min(n, headroom)
            copied = min(side, copy_chars)
            if copied:
                space.write_run(dest, space.read_run(src, copied * WCHAR_SIZE))
            if side > copied:
                space.fill_run(
                    dest + copied * WCHAR_SIZE, 0, (side - copied) * WCHAR_SIZE
                )
            proc.consume_metered(n)
            return dest
        if not read_ok and copy_chars <= writable:
            fault_char = copy_chars
        else:
            fault_char = writable
        side = fault_char if headroom is None else min(fault_char, headroom)
        copied = min(side, copy_chars)
        if copied:
            space.write_run(dest, space.read_run(src, copied * WCHAR_SIZE))
        if side > copied:
            space.fill_run(
                dest + copied * WCHAR_SIZE, 0, (side - copied) * WCHAR_SIZE
            )
        proc.consume_metered(fault_char + 1)
        if not read_ok and copy_chars <= writable:
            space.read_u32(src + copy_chars * WCHAR_SIZE)
        else:
            space.write_u32(dest + writable * WCHAR_SIZE, 0)
        raise AssertionError("wcsncpy fault replay did not fault")

    @libc_function(reg, "int wcscmp(const wchar_t *s1, const wchar_t *s2)",
                   header="wchar.h", category="wide")
    def wcscmp(proc: SimProcess, s1: int, s2: int) -> int:
        """Lexicographic wide-string comparison."""
        space = proc.space
        if space.scalar:
            return _scalar_wcscmp(proc, s1, s2)
        # the loop burns two fuel units per character (one per read_wchar)
        offset = 0
        chunk = 256
        while True:
            chars1, data1 = helpers.wide_window(
                space, s1 + offset * WCHAR_SIZE, chunk
            )
            chars2, data2 = helpers.wide_window(
                space, s2 + offset * WCHAR_SIZE, chunk
            )
            window = min(chars1, chars2)
            if window == 0:
                if chars1 == 0:
                    proc.consume_metered(2 * offset + 1)
                    space.read_u32(s1 + offset * WCHAR_SIZE)
                else:
                    proc.consume_metered(2 * offset + 2)
                    space.read_u32(s2 + offset * WCHAR_SIZE)
                raise AssertionError("wcscmp fault replay did not fault")
            a = data1[: window * WCHAR_SIZE]
            b = data2[: window * WCHAR_SIZE]
            if a == b:
                terminator = helpers.find_word(a, 0)
                if terminator is not None:
                    proc.consume_metered(2 * (offset + terminator) + 2)
                    return 0
            else:
                mismatch = first_mismatch(a, b) // WCHAR_SIZE
                terminator = helpers.find_word(a[: mismatch * WCHAR_SIZE], 0)
                if terminator is not None:
                    proc.consume_metered(2 * (offset + terminator) + 2)
                    return 0
                value1 = int.from_bytes(
                    a[mismatch * WCHAR_SIZE : (mismatch + 1) * WCHAR_SIZE], "little"
                )
                value2 = int.from_bytes(
                    b[mismatch * WCHAR_SIZE : (mismatch + 1) * WCHAR_SIZE], "little"
                )
                proc.consume_metered(2 * (offset + mismatch) + 2)
                return helpers.int_result(value1 - value2, 32)
            offset += window
            chunk *= 4

    @libc_function(reg, "wchar_t *wcschr(const wchar_t *s, wchar_t c)",
                   header="wchar.h", category="wide",
                   error_detector=null_on_error)
    def wcschr(proc: SimProcess, s: int, c: int) -> int:
        """First occurrence of c in the wide string s, or NULL."""
        space = proc.space
        if space.scalar:
            return _scalar_wcschr(proc, s, c)
        target = c & 0xFFFFFFFF
        offset = 0
        chunk = 256
        while True:
            chars, data = helpers.wide_window(space, s + offset * WCHAR_SIZE, chunk)
            hit = helpers.find_word(data, target)
            nul = hit if target == 0 else helpers.find_word(data, 0)
            # the loop tests the target before the terminator
            if hit is not None and (nul is None or hit <= nul):
                proc.consume_metered(offset + hit + 1)
                return s + (offset + hit) * WCHAR_SIZE
            if nul is not None:
                proc.consume_metered(offset + nul + 1)
                return 0
            offset += chars
            if chars < chunk:
                proc.consume_metered(offset + 1)
                space.read_u32(s + offset * WCHAR_SIZE)
                raise AssertionError("wcschr fault replay did not fault")
            chunk *= 4

    @libc_function(reg, "wctrans_t wctrans(const char *name)",
                   header="wctype.h", category="wide",
                   error_detector=null_on_error)
    def wctrans(proc: SimProcess, name: int) -> int:
        """Descriptor for a named transformation; 0 for unknown names.

        This is the function shown wrapped in the paper's Fig. 3.
        """
        length = helpers.scan_string_length(proc, name)
        text = proc.space.read(name, length)
        if text == b"tolower":
            return TRANS_TOLOWER
        if text == b"toupper":
            return TRANS_TOUPPER
        return 0

    @libc_function(reg, "wint_t towctrans(wint_t wc, wctrans_t desc)",
                   header="wctype.h", category="wide")
    def towctrans(proc: SimProcess, wc: int, desc: int) -> int:
        """Apply a transformation descriptor from wctrans()."""
        proc.consume()
        if desc == TRANS_TOLOWER:
            return wc + 0x20 if 0x41 <= wc <= 0x5A else wc
        if desc == TRANS_TOUPPER:
            return wc - 0x20 if 0x61 <= wc <= 0x7A else wc
        return wc

    @libc_function(reg, "wctype_t wctype(const char *name)",
                   header="wctype.h", category="wide",
                   error_detector=null_on_error)
    def wctype(proc: SimProcess, name: int) -> int:
        """Descriptor for a named character class; 0 for unknown names."""
        length = helpers.scan_string_length(proc, name)
        return _WCTYPE_NAMES.get(proc.space.read(name, length), 0)

    @libc_function(reg, "int iswctype(wint_t wc, wctype_t desc)",
                   header="wctype.h", category="wide")
    def iswctype(proc: SimProcess, wc: int, desc: int) -> int:
        """Test wc against a class descriptor from wctype()."""
        proc.consume()
        if not (0 <= wc <= 0x10FFFF):
            return 0
        char = chr(wc)
        tests = {
            1: char.isalnum(),
            2: char.isalpha(),
            3: char in " \t",
            4: wc < 0x20 or wc == 0x7F,
            5: char.isdigit(),
            6: char.isprintable() and char != " ",
            7: char.islower(),
            8: char.isprintable(),
            9: not char.isalnum() and char.isprintable() and char != " ",
            10: char.isspace(),
            11: char.isupper(),
            12: char in "0123456789abcdefABCDEF",
        }
        return 1 if tests.get(desc, False) else 0

    @libc_function(reg, "wint_t towupper(wint_t wc)",
                   header="wctype.h", category="wide")
    def towupper(proc: SimProcess, wc: int) -> int:
        """Wide uppercase conversion (ASCII range)."""
        proc.consume()
        return wc - 0x20 if 0x61 <= wc <= 0x7A else wc

    @libc_function(reg, "wint_t towlower(wint_t wc)",
                   header="wctype.h", category="wide")
    def towlower(proc: SimProcess, wc: int) -> int:
        """Wide lowercase conversion (ASCII range)."""
        proc.consume()
        return wc + 0x20 if 0x41 <= wc <= 0x5A else wc

    @libc_function(reg, "int iswalpha(wint_t wc)",
                   header="wctype.h", category="wide")
    def iswalpha(proc: SimProcess, wc: int) -> int:
        """Nonzero when wc is alphabetic."""
        proc.consume()
        return 1 if 0 <= wc <= 0x10FFFF and chr(wc).isalpha() else 0

    @libc_function(reg, "int iswdigit(wint_t wc)",
                   header="wctype.h", category="wide")
    def iswdigit(proc: SimProcess, wc: int) -> int:
        """Nonzero when wc is a decimal digit."""
        proc.consume()
        return 1 if 0x30 <= wc <= 0x39 else 0
