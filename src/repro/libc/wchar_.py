"""Simulated <wchar.h> / <wctype.h> family.

Wide characters are 4 bytes (glibc's ``wchar_t``).  ``wctrans`` is the
function the paper's Fig. 3 wraps, so it is reproduced carefully: it maps
a *name string* to a transformation descriptor, returning 0 for unknown
names — and dereferences its argument without checking, so ``wctrans(NULL)``
is a crash the fault injector finds.
"""

from __future__ import annotations

from repro.libc import helpers
from repro.libc.registry import LibcRegistry, libc_function, null_on_error
from repro.runtime.process import SimProcess

WCHAR_SIZE = 4

#: transformation descriptors returned by wctrans()
TRANS_TOLOWER = 1
TRANS_TOUPPER = 2

#: classification descriptors returned by wctype()
_WCTYPE_NAMES = {
    b"alnum": 1,
    b"alpha": 2,
    b"blank": 3,
    b"cntrl": 4,
    b"digit": 5,
    b"graph": 6,
    b"lower": 7,
    b"print": 8,
    b"punct": 9,
    b"space": 10,
    b"upper": 11,
    b"xdigit": 12,
}


def read_wchar(proc: SimProcess, address: int) -> int:
    """Read one wchar_t (consumes fuel like the byte loops do)."""
    proc.consume()
    return proc.space.read_u32(address)


def register(reg: LibcRegistry) -> None:
    """Register the wide-character family into ``reg``."""

    @libc_function(reg, "size_t wcslen(const wchar_t *s)",
                   header="wchar.h", category="wide")
    def wcslen(proc: SimProcess, s: int) -> int:
        """Length of a wide string in characters."""
        length = 0
        while read_wchar(proc, s + length * WCHAR_SIZE) != 0:
            length += 1
        return length

    @libc_function(reg, "wchar_t *wcscpy(wchar_t *dest, const wchar_t *src)",
                   header="wchar.h", category="wide")
    def wcscpy(proc: SimProcess, dest: int, src: int) -> int:
        """Copy a wide string including its terminator; no bounds check."""
        offset = 0
        while True:
            value = read_wchar(proc, src + offset)
            proc.space.write_u32(dest + offset, value)
            if value == 0:
                return dest
            offset += WCHAR_SIZE

    @libc_function(reg,
                   "wchar_t *wcsncpy(wchar_t *dest, const wchar_t *src, size_t n)",
                   header="wchar.h", category="wide")
    def wcsncpy(proc: SimProcess, dest: int, src: int, n: int) -> int:
        """Copy at most n wide characters, padding with L'\\0'."""
        terminated = False
        for index in range(n):
            if terminated:
                proc.consume()
                proc.space.write_u32(dest + index * WCHAR_SIZE, 0)
            else:
                value = read_wchar(proc, src + index * WCHAR_SIZE)
                proc.space.write_u32(dest + index * WCHAR_SIZE, value)
                if value == 0:
                    terminated = True
        return dest

    @libc_function(reg, "int wcscmp(const wchar_t *s1, const wchar_t *s2)",
                   header="wchar.h", category="wide")
    def wcscmp(proc: SimProcess, s1: int, s2: int) -> int:
        """Lexicographic wide-string comparison."""
        offset = 0
        while True:
            a = read_wchar(proc, s1 + offset)
            b = read_wchar(proc, s2 + offset)
            if a != b:
                return helpers.int_result(a - b, 32)
            if a == 0:
                return 0
            offset += WCHAR_SIZE

    @libc_function(reg, "wchar_t *wcschr(const wchar_t *s, wchar_t c)",
                   header="wchar.h", category="wide",
                   error_detector=null_on_error)
    def wcschr(proc: SimProcess, s: int, c: int) -> int:
        """First occurrence of c in the wide string s, or NULL."""
        cursor = s
        while True:
            value = read_wchar(proc, cursor)
            if value == (c & 0xFFFFFFFF):
                return cursor
            if value == 0:
                return 0
            cursor += WCHAR_SIZE

    @libc_function(reg, "wctrans_t wctrans(const char *name)",
                   header="wctype.h", category="wide",
                   error_detector=null_on_error)
    def wctrans(proc: SimProcess, name: int) -> int:
        """Descriptor for a named transformation; 0 for unknown names.

        This is the function shown wrapped in the paper's Fig. 3.
        """
        length = helpers.scan_string_length(proc, name)
        text = proc.space.read(name, length)
        if text == b"tolower":
            return TRANS_TOLOWER
        if text == b"toupper":
            return TRANS_TOUPPER
        return 0

    @libc_function(reg, "wint_t towctrans(wint_t wc, wctrans_t desc)",
                   header="wctype.h", category="wide")
    def towctrans(proc: SimProcess, wc: int, desc: int) -> int:
        """Apply a transformation descriptor from wctrans()."""
        proc.consume()
        if desc == TRANS_TOLOWER:
            return wc + 0x20 if 0x41 <= wc <= 0x5A else wc
        if desc == TRANS_TOUPPER:
            return wc - 0x20 if 0x61 <= wc <= 0x7A else wc
        return wc

    @libc_function(reg, "wctype_t wctype(const char *name)",
                   header="wctype.h", category="wide",
                   error_detector=null_on_error)
    def wctype(proc: SimProcess, name: int) -> int:
        """Descriptor for a named character class; 0 for unknown names."""
        length = helpers.scan_string_length(proc, name)
        return _WCTYPE_NAMES.get(proc.space.read(name, length), 0)

    @libc_function(reg, "int iswctype(wint_t wc, wctype_t desc)",
                   header="wctype.h", category="wide")
    def iswctype(proc: SimProcess, wc: int, desc: int) -> int:
        """Test wc against a class descriptor from wctype()."""
        proc.consume()
        if not (0 <= wc <= 0x10FFFF):
            return 0
        char = chr(wc)
        tests = {
            1: char.isalnum(),
            2: char.isalpha(),
            3: char in " \t",
            4: wc < 0x20 or wc == 0x7F,
            5: char.isdigit(),
            6: char.isprintable() and char != " ",
            7: char.islower(),
            8: char.isprintable(),
            9: not char.isalnum() and char.isprintable() and char != " ",
            10: char.isspace(),
            11: char.isupper(),
            12: char in "0123456789abcdefABCDEF",
        }
        return 1 if tests.get(desc, False) else 0

    @libc_function(reg, "wint_t towupper(wint_t wc)",
                   header="wctype.h", category="wide")
    def towupper(proc: SimProcess, wc: int) -> int:
        """Wide uppercase conversion (ASCII range)."""
        proc.consume()
        return wc - 0x20 if 0x61 <= wc <= 0x7A else wc

    @libc_function(reg, "wint_t towlower(wint_t wc)",
                   header="wctype.h", category="wide")
    def towlower(proc: SimProcess, wc: int) -> int:
        """Wide lowercase conversion (ASCII range)."""
        proc.consume()
        return wc + 0x20 if 0x41 <= wc <= 0x5A else wc

    @libc_function(reg, "int iswalpha(wint_t wc)",
                   header="wctype.h", category="wide")
    def iswalpha(proc: SimProcess, wc: int) -> int:
        """Nonzero when wc is alphabetic."""
        proc.consume()
        return 1 if 0 <= wc <= 0x10FFFF and chr(wc).isalpha() else 0

    @libc_function(reg, "int iswdigit(wint_t wc)",
                   header="wctype.h", category="wide")
    def iswdigit(proc: SimProcess, wc: int) -> int:
        """Nonzero when wc is a decimal digit."""
        proc.consume()
        return 1 if 0x30 <= wc <= 0x39 else 0
