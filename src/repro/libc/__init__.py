"""The simulated C library.

``standard_registry()`` builds the full simulated libc — the shared
library that HEALERS wraps.  Its functions are registered with parsed C
prototypes and implementations that operate on a
:class:`~repro.runtime.SimProcess`, reproducing the C standard library's
documented behaviour *and* its undocumented fragility (the raw material
for the fault-injection experiments).
"""

from repro.libc.registry import (
    ErrorDetector,
    LibcRegistry,
    LibFunction,
    libc_function,
    negative_on_error,
    null_on_error,
)
from repro.libc import ctype_, math_, stdio_, stdlib_, string_, time_, wchar_

__all__ = [
    "ErrorDetector",
    "LibFunction",
    "LibcRegistry",
    "libc_function",
    "math_registry",
    "negative_on_error",
    "null_on_error",
    "standard_registry",
]

_FAMILIES = (string_, ctype_, stdlib_, stdio_, wchar_, time_)


def standard_registry(library_name: str = "libc.so.6") -> LibcRegistry:
    """Build a fresh registry containing the whole simulated libc."""
    registry = LibcRegistry(library_name)
    for family in _FAMILIES:
        family.register(registry)
    return registry


def math_registry(library_name: str = "libm.so.6") -> LibcRegistry:
    """Build the simulated math library (a second wrappable library)."""
    registry = LibcRegistry(library_name)
    math_.register(registry)
    return registry
