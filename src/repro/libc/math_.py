"""Simulated <math.h> — the second shared library, libm.so.6.

Math functions follow C99 error reporting: a *domain error* (sqrt of a
negative, log of a non-positive) sets ``errno = EDOM`` and returns NaN;
a *range error* (overflowing exp, pow) sets ``errno = ERANGE`` and
returns ±HUGE_VAL; pole errors (fmod by zero) are domain errors.  Unlike
the string family, this library is *robust by construction* — every
argument is a scalar, every failure is an errno — which gives the fault
injector the contrast Ballista also observed: brittleness concentrates
in the pointer-taking API, not the numeric one.
"""

from __future__ import annotations

import math

from repro.libc.registry import LibcRegistry, libc_function
from repro.runtime.process import Errno, SimProcess

HUGE_VAL = float("inf")
NAN = float("nan")


def _domain_error(proc: SimProcess) -> float:
    proc.errno = Errno.EDOM
    return NAN


def _range_error(proc: SimProcess, sign: float = 1.0) -> float:
    proc.errno = Errno.ERANGE
    return math.copysign(HUGE_VAL, sign)


def _is_bad(value: float) -> bool:
    return isinstance(value, float) and (math.isnan(value))


def register(reg: LibcRegistry) -> None:
    """Register the math family into ``reg`` (normally libm's registry)."""

    @libc_function(reg, "double sqrt(double x)", header="math.h",
                   category="math")
    def sqrt(proc: SimProcess, x: float) -> float:
        """Square root; EDOM for negative arguments."""
        proc.consume()
        x = float(x)
        if math.isnan(x):
            return NAN
        if x < 0:
            return _domain_error(proc)
        return math.sqrt(x)

    @libc_function(reg, "double cbrt(double x)", header="math.h",
                   category="math")
    def cbrt(proc: SimProcess, x: float) -> float:
        """Cube root (defined for all reals)."""
        proc.consume()
        x = float(x)
        if math.isnan(x) or math.isinf(x):
            return x
        return math.copysign(abs(x) ** (1.0 / 3.0), x)

    @libc_function(reg, "double pow(double x, double y)", header="math.h",
                   category="math")
    def pow_(proc: SimProcess, x: float, y: float) -> float:
        """x**y with C99 domain/range errno reporting."""
        proc.consume()
        x, y = float(x), float(y)
        try:
            result = math.pow(x, y)
        except ValueError:
            return _domain_error(proc)
        except OverflowError:
            return _range_error(proc, 1.0 if x >= 0 else -1.0)
        if math.isinf(result) and not (math.isinf(x) or math.isinf(y)):
            return _range_error(proc, result)
        return result

    @libc_function(reg, "double exp(double x)", header="math.h",
                   category="math")
    def exp(proc: SimProcess, x: float) -> float:
        """e**x; ERANGE on overflow."""
        proc.consume()
        x = float(x)
        if math.isnan(x):
            return NAN
        try:
            return math.exp(x)
        except OverflowError:
            return _range_error(proc)

    @libc_function(reg, "double log(double x)", header="math.h",
                   category="math")
    def log(proc: SimProcess, x: float) -> float:
        """Natural logarithm; EDOM for x<0, ERANGE (pole) for x==0."""
        proc.consume()
        x = float(x)
        if math.isnan(x):
            return NAN
        if x < 0:
            return _domain_error(proc)
        if x == 0:
            proc.errno = Errno.ERANGE
            return -HUGE_VAL
        return math.log(x)

    @libc_function(reg, "double log10(double x)", header="math.h",
                   category="math")
    def log10(proc: SimProcess, x: float) -> float:
        """Base-10 logarithm, same error contract as log."""
        proc.consume()
        x = float(x)
        if math.isnan(x):
            return NAN
        if x < 0:
            return _domain_error(proc)
        if x == 0:
            proc.errno = Errno.ERANGE
            return -HUGE_VAL
        return math.log10(x)

    @libc_function(reg, "double sin(double x)", header="math.h",
                   category="math")
    def sin(proc: SimProcess, x: float) -> float:
        """Sine; EDOM for infinite arguments."""
        proc.consume()
        x = float(x)
        if math.isnan(x):
            return NAN
        if math.isinf(x):
            return _domain_error(proc)
        return math.sin(x)

    @libc_function(reg, "double cos(double x)", header="math.h",
                   category="math")
    def cos(proc: SimProcess, x: float) -> float:
        """Cosine; EDOM for infinite arguments."""
        proc.consume()
        x = float(x)
        if math.isnan(x):
            return NAN
        if math.isinf(x):
            return _domain_error(proc)
        return math.cos(x)

    @libc_function(reg, "double tan(double x)", header="math.h",
                   category="math")
    def tan(proc: SimProcess, x: float) -> float:
        """Tangent; EDOM for infinite arguments."""
        proc.consume()
        x = float(x)
        if math.isnan(x):
            return NAN
        if math.isinf(x):
            return _domain_error(proc)
        return math.tan(x)

    @libc_function(reg, "double atan2(double y, double x)", header="math.h",
                   category="math")
    def atan2(proc: SimProcess, y: float, x: float) -> float:
        """Two-argument arctangent (total over the reals)."""
        proc.consume()
        y, x = float(y), float(x)
        if math.isnan(y) or math.isnan(x):
            return NAN
        return math.atan2(y, x)

    @libc_function(reg, "double asin(double x)", header="math.h",
                   category="math")
    def asin(proc: SimProcess, x: float) -> float:
        """Arcsine; EDOM outside [-1, 1]."""
        proc.consume()
        x = float(x)
        if math.isnan(x):
            return NAN
        if x < -1 or x > 1:
            return _domain_error(proc)
        return math.asin(x)

    @libc_function(reg, "double acos(double x)", header="math.h",
                   category="math")
    def acos(proc: SimProcess, x: float) -> float:
        """Arccosine; EDOM outside [-1, 1]."""
        proc.consume()
        x = float(x)
        if math.isnan(x):
            return NAN
        if x < -1 or x > 1:
            return _domain_error(proc)
        return math.acos(x)

    @libc_function(reg, "double fmod(double x, double y)", header="math.h",
                   category="math")
    def fmod(proc: SimProcess, x: float, y: float) -> float:
        """Floating remainder; EDOM for y == 0 or infinite x."""
        proc.consume()
        x, y = float(x), float(y)
        if math.isnan(x) or math.isnan(y):
            return NAN
        if y == 0 or math.isinf(x):
            return _domain_error(proc)
        return math.fmod(x, y)

    @libc_function(reg, "double floor(double x)", header="math.h",
                   category="math")
    def floor(proc: SimProcess, x: float) -> float:
        """Round toward -inf (total)."""
        proc.consume()
        x = float(x)
        if math.isnan(x) or math.isinf(x):
            return x
        return float(math.floor(x))

    @libc_function(reg, "double ceil(double x)", header="math.h",
                   category="math")
    def ceil(proc: SimProcess, x: float) -> float:
        """Round toward +inf (total)."""
        proc.consume()
        x = float(x)
        if math.isnan(x) or math.isinf(x):
            return x
        return float(math.ceil(x))

    @libc_function(reg, "double fabs(double x)", header="math.h",
                   category="math")
    def fabs(proc: SimProcess, x: float) -> float:
        """Absolute value (total)."""
        proc.consume()
        return abs(float(x))

    @libc_function(reg, "double hypot(double x, double y)", header="math.h",
                   category="math")
    def hypot(proc: SimProcess, x: float, y: float) -> float:
        """sqrt(x²+y²) without intermediate overflow; ERANGE if the
        result itself overflows."""
        proc.consume()
        x, y = float(x), float(y)
        if math.isinf(x) or math.isinf(y):
            return HUGE_VAL
        if math.isnan(x) or math.isnan(y):
            return NAN
        try:
            result = math.hypot(x, y)
        except OverflowError:
            return _range_error(proc)
        if math.isinf(result):
            return _range_error(proc)
        return result
