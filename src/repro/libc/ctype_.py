"""Simulated <ctype.h> family.

Classification functions take an ``int`` that must be representable as an
``unsigned char`` or ``EOF``; like glibc's table-driven implementation,
values far outside that range index off the classification table.  glibc
historically tolerated this by over-allocating the table; we reproduce the
*standard's* contract instead: out-of-domain values are undefined and read
the table out of bounds, which gives the fault injector an integer-domain
robustness failure to find (Ballista reported exactly these for ctype).
"""

from __future__ import annotations

from repro.errors import SegmentationFault
from repro.libc.registry import LibcRegistry, libc_function
from repro.runtime.process import SimProcess

EOF = -1

_ALPHA = set(range(0x41, 0x5B)) | set(range(0x61, 0x7B))
_DIGIT = set(range(0x30, 0x3A))
_XDIGIT = _DIGIT | set(range(0x41, 0x47)) | set(range(0x61, 0x67))
_SPACE = {0x20, 0x09, 0x0A, 0x0B, 0x0C, 0x0D}
_UPPER = set(range(0x41, 0x5B))
_LOWER = set(range(0x61, 0x7B))
_CNTRL = set(range(0x00, 0x20)) | {0x7F}
_PRINT = set(range(0x20, 0x7F))
_GRAPH = set(range(0x21, 0x7F))
_PUNCT = _GRAPH - _ALPHA - _DIGIT


def _classify(proc: SimProcess, c: int, members: set) -> int:
    """Table lookup with the C domain rule: c must be uchar or EOF."""
    proc.consume()
    if c == EOF:
        return 0
    if not (0 <= c <= 0xFF):
        # undefined behaviour: indexing the classification table out of
        # bounds; far-out values walk off the table's mapping
        raise SegmentationFault(c & 0xFFFFFFFF, "read",
                                "ctype table index out of range")
    return 1 if c in members else 0


def register(reg: LibcRegistry) -> None:
    """Register the ctype family into ``reg``."""

    @libc_function(reg, "int isalpha(int c)", header="ctype.h", category="ctype")
    def isalpha(proc: SimProcess, c: int) -> int:
        """Nonzero when c is an alphabetic character."""
        return _classify(proc, c, _ALPHA)

    @libc_function(reg, "int isdigit(int c)", header="ctype.h", category="ctype")
    def isdigit(proc: SimProcess, c: int) -> int:
        """Nonzero when c is a decimal digit."""
        return _classify(proc, c, _DIGIT)

    @libc_function(reg, "int isalnum(int c)", header="ctype.h", category="ctype")
    def isalnum(proc: SimProcess, c: int) -> int:
        """Nonzero when c is alphanumeric."""
        return _classify(proc, c, _ALPHA | _DIGIT)

    @libc_function(reg, "int isxdigit(int c)", header="ctype.h", category="ctype")
    def isxdigit(proc: SimProcess, c: int) -> int:
        """Nonzero when c is a hexadecimal digit."""
        return _classify(proc, c, _XDIGIT)

    @libc_function(reg, "int isspace(int c)", header="ctype.h", category="ctype")
    def isspace(proc: SimProcess, c: int) -> int:
        """Nonzero when c is whitespace."""
        return _classify(proc, c, _SPACE)

    @libc_function(reg, "int isupper(int c)", header="ctype.h", category="ctype")
    def isupper(proc: SimProcess, c: int) -> int:
        """Nonzero when c is an uppercase letter."""
        return _classify(proc, c, _UPPER)

    @libc_function(reg, "int islower(int c)", header="ctype.h", category="ctype")
    def islower(proc: SimProcess, c: int) -> int:
        """Nonzero when c is a lowercase letter."""
        return _classify(proc, c, _LOWER)

    @libc_function(reg, "int iscntrl(int c)", header="ctype.h", category="ctype")
    def iscntrl(proc: SimProcess, c: int) -> int:
        """Nonzero when c is a control character."""
        return _classify(proc, c, _CNTRL)

    @libc_function(reg, "int isprint(int c)", header="ctype.h", category="ctype")
    def isprint(proc: SimProcess, c: int) -> int:
        """Nonzero when c is printable (including space)."""
        return _classify(proc, c, _PRINT)

    @libc_function(reg, "int isgraph(int c)", header="ctype.h", category="ctype")
    def isgraph(proc: SimProcess, c: int) -> int:
        """Nonzero when c is printable and not space."""
        return _classify(proc, c, _GRAPH)

    @libc_function(reg, "int ispunct(int c)", header="ctype.h", category="ctype")
    def ispunct(proc: SimProcess, c: int) -> int:
        """Nonzero when c is punctuation."""
        return _classify(proc, c, _PUNCT)

    @libc_function(reg, "int toupper(int c)", header="ctype.h", category="ctype")
    def toupper(proc: SimProcess, c: int) -> int:
        """Uppercase conversion (same domain rule as the predicates)."""
        proc.consume()
        if c == EOF:
            return EOF
        if not (0 <= c <= 0xFF):
            raise SegmentationFault(c & 0xFFFFFFFF, "read",
                                    "ctype table index out of range")
        return c - 0x20 if c in _LOWER else c

    @libc_function(reg, "int tolower(int c)", header="ctype.h", category="ctype")
    def tolower(proc: SimProcess, c: int) -> int:
        """Lowercase conversion (same domain rule as the predicates)."""
        proc.consume()
        if c == EOF:
            return EOF
        if not (0 <= c <= 0xFF):
            raise SegmentationFault(c & 0xFFFFFFFF, "read",
                                    "ctype table index out of range")
        return c + 0x20 if c in _UPPER else c
