"""Shared low-level primitives for the simulated libc.

These helpers are intentionally *naive*: they mimic the tight byte loops of
a real C library with no argument validation.  Every byte touched consumes
one unit of process fuel, so an unterminated scan either faults at a
mapping boundary (CRASH) or exhausts its fuel (HANG) — the two failure
modes fault injection must provoke and the wrappers must prevent.
"""

from __future__ import annotations

from typing import Optional

from repro.runtime.process import SimProcess


def scan_string_length(proc: SimProcess, address: int) -> int:
    """strlen-style scan; faults/hangs exactly like the C loop would."""
    length = 0
    cursor = address
    while True:
        proc.consume()
        if proc.space.read(cursor, 1)[0] == 0:
            return length
        length += 1
        cursor += 1


def copy_string(proc: SimProcess, dest: int, src: int) -> int:
    """strcpy-style byte loop; returns bytes copied excluding the NUL."""
    copied = 0
    while True:
        proc.consume()
        byte = proc.space.read(src + copied, 1)[0]
        proc.space.write(dest + copied, bytes([byte]))
        if byte == 0:
            return copied
        copied += 1


def copy_bytes_forward(proc: SimProcess, dest: int, src: int, count: int) -> None:
    """memcpy-style loop (forward, byte-at-a-time, fuel-metered)."""
    for offset in range(count):
        proc.consume()
        byte = proc.space.read(src + offset, 1)
        proc.space.write(dest + offset, byte)


def copy_bytes_backward(proc: SimProcess, dest: int, src: int, count: int) -> None:
    """memmove tail-first loop for overlapping dest > src."""
    for offset in range(count - 1, -1, -1):
        proc.consume()
        byte = proc.space.read(src + offset, 1)
        proc.space.write(dest + offset, byte)


def compare_strings(proc: SimProcess, left: int, right: int,
                    limit: Optional[int] = None, fold_case: bool = False) -> int:
    """strcmp/strncmp/strcasecmp core; returns the C-style difference."""
    offset = 0
    while True:
        if limit is not None and offset >= limit:
            return 0
        proc.consume()
        a = proc.space.read(left + offset, 1)[0]
        b = proc.space.read(right + offset, 1)[0]
        if fold_case:
            a = _fold(a)
            b = _fold(b)
        if a != b:
            return a - b
        if a == 0:
            return 0
        offset += 1


def _fold(byte: int) -> int:
    if 0x41 <= byte <= 0x5A:
        return byte + 0x20
    return byte


def to_signed(value: int, bits: int = 32) -> int:
    """Interpret an unsigned machine word as a signed integer."""
    sign = 1 << (bits - 1)
    mask = (1 << bits) - 1
    value &= mask
    return value - (1 << bits) if value & sign else value


def to_unsigned(value: int, bits: int = 64) -> int:
    """Truncate a Python int to an unsigned machine word."""
    return value & ((1 << bits) - 1)


def int_result(value: int, bits: int = 32) -> int:
    """Wrap a computed integer the way a C int return would."""
    return to_signed(to_unsigned(value, bits), bits)
