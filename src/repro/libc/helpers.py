"""Shared low-level primitives for the simulated libc.

These helpers are intentionally *naive*: they mimic the tight byte loops of
a real C library with no argument validation.  Every byte touched consumes
one unit of process fuel, so an unterminated scan either faults at a
mapping boundary (CRASH) or exhausts its fuel (HANG) — the two failure
modes fault injection must provoke and the wrappers must prevent.

The default implementations are *vectorized*: they resolve the accessible
extent once, perform the copy/scan/compare as one C-speed slice operation,
and then replay the exact fuel accounting and faulting access the byte loop
would have performed.  The original loops are kept verbatim as ``_scalar_*``
and selected via ``AddressSpace.scalar`` (``HEALERS_SCALAR_MEMORY=1``), so a
differential suite can prove byte- and fault-address parity.
"""

from __future__ import annotations

import sys
from array import array
from typing import Optional

from repro.memory.model import AddressSpace, Perm, first_mismatch
from repro.runtime.process import SimProcess


def scan_string_length(proc: SimProcess, address: int) -> int:
    """strlen-style scan; faults/hangs exactly like the C loop would."""
    if proc.space.scalar:
        return _scalar_scan_string_length(proc, address)
    space = proc.space
    index, scanned = space.find_byte(address, 0)
    if index is not None:
        proc.consume_metered(index + 1)
        return index
    proc.consume_metered(scanned + 1)
    space.read(address + scanned, 1)
    raise AssertionError("strlen fault replay did not fault")


def _scalar_scan_string_length(proc: SimProcess, address: int) -> int:
    length = 0
    cursor = address
    while True:
        proc.consume()
        if proc.space.read(cursor, 1)[0] == 0:
            return length
        length += 1
        cursor += 1


def scan_string_length_bounded(proc: SimProcess, address: int, maxlen: int) -> int:
    """strnlen-style scan: stops at the terminator or at ``maxlen`` bytes."""
    if proc.space.scalar:
        return _scalar_scan_string_length_bounded(proc, address, maxlen)
    if maxlen <= 0:
        return maxlen
    space = proc.space
    index, scanned = space.find_byte(address, 0, maxlen)
    if index is not None:
        proc.consume_metered(index + 1)
        return index
    if scanned >= maxlen:
        proc.consume_metered(maxlen)
        return maxlen
    proc.consume_metered(scanned + 1)
    space.read(address + scanned, 1)
    raise AssertionError("strnlen fault replay did not fault")


def _scalar_scan_string_length_bounded(
    proc: SimProcess, address: int, maxlen: int
) -> int:
    length = 0
    while length < maxlen:
        proc.consume()
        if proc.space.read(address + length, 1)[0] == 0:
            return length
        length += 1
    return maxlen


def _bulk_copy(
    proc: SimProcess, dest: int, src: int, count: int, units: Optional[int] = None
) -> None:
    """Copy ``count`` accessible bytes, clamped to the fuel headroom, then
    meter ``units`` consumes (defaults to ``count``).

    The clamp keeps side effects identical to a loop that ran out of fuel
    mid-copy; ``consume_metered`` then raises the same ``OutOfFuel``.
    """
    space = proc.space
    headroom = proc.fuel_headroom()
    side = count if headroom is None else min(count, headroom)
    if side > 0:
        space.write_run(dest, space.read_run(src, side))
    proc.consume_metered(count if units is None else units)


def copy_string(proc: SimProcess, dest: int, src: int) -> int:
    """strcpy-style byte loop; returns bytes copied excluding the NUL."""
    if proc.space.scalar:
        return _scalar_copy_string(proc, dest, src)
    space = proc.space
    index, scanned = space.find_byte(src, 0)
    span = (index + 1) if index is not None else scanned + 1
    if src < dest < src + span:
        # the destination lands inside the bytes still being scanned, so the
        # reference loop reads back data it has already overwritten — defer
        return _scalar_copy_string(proc, dest, src)
    if index is not None:
        total = index + 1
        writable = space.writable_run(dest, total)
        if writable >= total:
            _bulk_copy(proc, dest, src, total)
            return index
        _bulk_copy(proc, dest, src, writable, units=writable + 1)
        space.write(dest + writable, b"\x00")
        raise AssertionError("strcpy fault replay did not fault")
    writable = space.writable_run(dest, scanned + 1)
    processed = min(scanned, writable)
    _bulk_copy(proc, dest, src, processed, units=processed + 1)
    if scanned <= writable:
        space.read(src + scanned, 1)
    else:
        space.write(dest + writable, b"\x00")
    raise AssertionError("strcpy fault replay did not fault")


def _scalar_copy_string(proc: SimProcess, dest: int, src: int) -> int:
    copied = 0
    while True:
        proc.consume()
        byte = proc.space.read(src + copied, 1)[0]
        proc.space.write(dest + copied, bytes([byte]))
        if byte == 0:
            return copied
        copied += 1


def copy_bytes_forward(proc: SimProcess, dest: int, src: int, count: int) -> None:
    """memcpy-style loop (forward, byte-at-a-time, fuel-metered)."""
    if proc.space.scalar or count <= 0:
        _scalar_copy_bytes_forward(proc, dest, src, count)
        return
    space = proc.space
    readable = space.readable_run(src, count)
    writable = space.writable_run(dest, count)
    complete = min(count, readable, writable)
    headroom = proc.fuel_headroom()
    side = complete if headroom is None else min(complete, headroom)
    if side > 0:
        space.copy_within(dest, src, side, forward=True)
    if complete >= count:
        proc.consume_metered(count)
        return
    proc.consume_metered(complete + 1)
    if readable <= writable:
        space.read(src + complete, 1)
    else:
        space.write(dest + complete, b"\x00")
    raise AssertionError("memcpy fault replay did not fault")


def _scalar_copy_bytes_forward(
    proc: SimProcess, dest: int, src: int, count: int
) -> None:
    for offset in range(count):
        proc.consume()
        byte = proc.space.read(src + offset, 1)
        proc.space.write(dest + offset, byte)


def copy_bytes_backward(proc: SimProcess, dest: int, src: int, count: int) -> None:
    """memmove tail-first loop for overlapping dest > src."""
    if proc.space.scalar or count <= 0 or dest < src < dest + count:
        # a descending loop with dest < src overlapping smears bytes it has
        # not read yet; only the reference loop reproduces that faithfully
        _scalar_copy_bytes_backward(proc, dest, src, count)
        return
    space = proc.space
    readable = space.readable_run_back(src + count, count)
    writable = space.writable_run_back(dest + count, count)
    complete = min(count, readable, writable)
    headroom = proc.fuel_headroom()
    side = complete if headroom is None else min(complete, headroom)
    if side > 0:
        space.copy_within(dest + count - side, src + count - side, side)
    if complete >= count:
        proc.consume_metered(count)
        return
    proc.consume_metered(complete + 1)
    offset = count - 1 - complete
    if readable <= writable:
        space.read(src + offset, 1)
    else:
        space.write(dest + offset, b"\x00")
    raise AssertionError("memmove fault replay did not fault")


def _scalar_copy_bytes_backward(
    proc: SimProcess, dest: int, src: int, count: int
) -> None:
    for offset in range(count - 1, -1, -1):
        proc.consume()
        byte = proc.space.read(src + offset, 1)
        proc.space.write(dest + offset, byte)


def compare_strings(proc: SimProcess, left: int, right: int,
                    limit: Optional[int] = None, fold_case: bool = False) -> int:
    """strcmp/strncmp/strcasecmp core; returns the C-style difference."""
    if proc.space.scalar:
        return _scalar_compare_strings(proc, left, right, limit, fold_case)
    space = proc.space
    offset = 0
    chunk = 512
    while True:
        if limit is not None and offset >= limit:
            proc.consume_metered(offset)
            return 0
        cap = chunk
        if limit is not None:
            cap = min(cap, limit - offset)
        left_run = space.readable_run(left + offset, cap)
        right_run = space.readable_run(right + offset, cap)
        window = min(left_run, right_run)
        if window == 0:
            proc.consume_metered(offset + 1)
            if left_run == 0:
                space.read(left + offset, 1)
            else:
                space.read(right + offset, 1)
            raise AssertionError("strcmp fault replay did not fault")
        a = space.read_run(left + offset, window)
        b = space.read_run(right + offset, window)
        if fold_case:
            a = a.translate(_FOLD_TABLE)
            b = b.translate(_FOLD_TABLE)
        if a == b:
            terminator = a.find(0)
            if terminator >= 0:
                proc.consume_metered(offset + terminator + 1)
                return 0
        else:
            mismatch = first_mismatch(a, b)
            terminator = a.find(0, 0, mismatch)
            if terminator >= 0:
                proc.consume_metered(offset + terminator + 1)
                return 0
            proc.consume_metered(offset + mismatch + 1)
            return a[mismatch] - b[mismatch]
        offset += window
        chunk *= 4


def _scalar_compare_strings(proc: SimProcess, left: int, right: int,
                            limit: Optional[int] = None,
                            fold_case: bool = False) -> int:
    offset = 0
    while True:
        if limit is not None and offset >= limit:
            return 0
        proc.consume()
        a = proc.space.read(left + offset, 1)[0]
        b = proc.space.read(right + offset, 1)[0]
        if fold_case:
            a = _fold(a)
            b = _fold(b)
        if a != b:
            return a - b
        if a == 0:
            return 0
        offset += 1


def _fold(byte: int) -> int:
    if 0x41 <= byte <= 0x5A:
        return byte + 0x20
    return byte


_FOLD_TABLE = bytes(_fold(i) for i in range(256))


# ----------------------------------------------------------------------
# wide-character (4-byte) scan windows
# ----------------------------------------------------------------------

def wide_window(space: AddressSpace, address: int, limit_chars: int):
    """Readable 4-byte characters starting at ``address``.

    Returns ``(chars, data)`` where ``data`` holds ``chars * 4`` bytes.  The
    window stops (without faulting) at the first character a ``read_u32``
    would reject — including a 1–3 byte tail inside a mapping, which faults
    even when an adjacent mapping follows.
    """
    chars = 0
    parts = []
    cursor = address
    while chars < limit_chars:
        mapping = space.find_mapping(cursor)
        if mapping is None or not (mapping.perm_bits & int(Perm.READ)):
            break
        here = min((mapping.end - cursor) // 4, limit_chars - chars)
        if here <= 0:
            break
        offset = cursor - mapping.start
        parts.append(bytes(mapping.data[offset : offset + here * 4]))
        chars += here
        cursor += here * 4
        if cursor < mapping.end:
            break
    return chars, b"".join(parts)


def wide_writable_chars(space: AddressSpace, address: int, limit_chars: int) -> int:
    """How many 4-byte characters from ``address`` a ``write_u32`` accepts."""
    chars = 0
    cursor = address
    while chars < limit_chars:
        mapping = space.find_mapping(cursor)
        if mapping is None or not (mapping.perm_bits & int(Perm.WRITE)):
            break
        here = min((mapping.end - cursor) // 4, limit_chars - chars)
        if here <= 0:
            break
        chars += here
        cursor += here * 4
        if cursor < mapping.end:
            break
    return chars


def find_word(data: bytes, value: int) -> Optional[int]:
    """Index (in words) of the first little-endian u32 equal to ``value``."""
    words = array("I")
    words.frombytes(data)
    if sys.byteorder == "big":
        words.byteswap()
    try:
        return words.index(value & 0xFFFFFFFF)
    except ValueError:
        return None


def to_signed(value: int, bits: int = 32) -> int:
    """Interpret an unsigned machine word as a signed integer."""
    sign = 1 << (bits - 1)
    mask = (1 << bits) - 1
    value &= mask
    return value - (1 << bits) if value & sign else value


def to_unsigned(value: int, bits: int = 64) -> int:
    """Truncate a Python int to an unsigned machine word."""
    return value & ((1 << bits) - 1)


def int_result(value: int, bits: int = 32) -> int:
    """Wrap a computed integer the way a C int return would."""
    return to_signed(to_unsigned(value, bits), bits)
