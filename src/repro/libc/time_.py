"""Simulated <time.h> family.

Calendar math is implemented from first principles (Hinnant's
civil-from-days algorithms), not delegated to Python's datetime, so the
simulated functions have exactly the behaviours the C ones do:

* ``gmtime``/``localtime`` return a pointer to a **shared static
  ``struct tm``** — the classic non-reentrancy (a second call clobbers
  the first result);
* ``asctime`` formats into a **26-byte static buffer**; a ``struct tm``
  with a five-digit year overflows it (the documented glibc hazard,
  CVE-2009-ish class).  The "static" buffers are modelled as one-time
  heap allocations so that such overflows corrupt observable allocator
  metadata instead of vanishing into a data segment;
* ``strftime`` is a bounded formatter returning 0 when the result does
  not fit.

The simulated clock is deterministic: it starts at the 2003-01-01 epoch
(the paper's year) and advances one second per ``time()`` call.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.libc import helpers
from repro.libc.registry import LibcRegistry, libc_function, null_on_error
from repro.runtime.process import SimProcess

#: 2003-01-01 00:00:00 UTC — the paper's publication year
SIM_EPOCH = 1041379200

#: struct tm layout: nine consecutive i32 fields, as on 32-bit glibc
TM_FIELDS = ("tm_sec", "tm_min", "tm_hour", "tm_mday", "tm_mon",
             "tm_year", "tm_wday", "tm_yday", "tm_isdst")
TM_SIZE = 4 * len(TM_FIELDS)

ASCTIME_BUFFER = 26

_WDAY = ("Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat")
_MON = ("Jan", "Feb", "Mar", "Apr", "May", "Jun",
        "Jul", "Aug", "Sep", "Oct", "Nov", "Dec")


# ----------------------------------------------------------------------
# civil calendar algorithms (Hinnant)
# ----------------------------------------------------------------------

def days_from_civil(year: int, month: int, day: int) -> int:
    """Days since 1970-01-01 for a proleptic Gregorian date."""
    year -= month <= 2
    era = (year if year >= 0 else year - 399) // 400
    yoe = year - era * 400
    doy = (153 * (month + (-3 if month > 2 else 9)) + 2) // 5 + day - 1
    doe = yoe * 365 + yoe // 4 - yoe // 100 + doy
    return era * 146097 + doe - 719468


def civil_from_days(days: int) -> Tuple[int, int, int]:
    """(year, month, day) from days since 1970-01-01."""
    days += 719468
    era = (days if days >= 0 else days - 146096) // 146097
    doe = days - era * 146097
    yoe = (doe - doe // 1460 + doe // 36524 - doe // 146096) // 365
    year = yoe + era * 400
    doy = doe - (365 * yoe + yoe // 4 - yoe // 100)
    mp = (5 * doy + 2) // 153
    day = doy - (153 * mp + 2) // 5 + 1
    month = mp + (3 if mp < 10 else -9)
    return (year + (month <= 2), month, day)


def is_leap(year: int) -> bool:
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)


def _break_down(timestamp: int) -> dict:
    days, rem = divmod(timestamp, 86400)
    hour, rem = divmod(rem, 3600)
    minute, sec = divmod(rem, 60)
    year, month, day = civil_from_days(days)
    yday = days - days_from_civil(year, 1, 1)
    wday = (days + 4) % 7  # 1970-01-01 was a Thursday
    return {
        "tm_sec": sec, "tm_min": minute, "tm_hour": hour,
        "tm_mday": day, "tm_mon": month - 1, "tm_year": year - 1900,
        "tm_wday": wday, "tm_yday": yday, "tm_isdst": 0,
    }


# ----------------------------------------------------------------------
# struct tm in simulated memory
# ----------------------------------------------------------------------

def write_tm(proc: SimProcess, address: int, fields: dict) -> None:
    for index, name in enumerate(TM_FIELDS):
        proc.space.write_i32(address + 4 * index, fields.get(name, 0))


def read_tm(proc: SimProcess, address: int) -> dict:
    return {
        name: proc.space.read_i32(address + 4 * index)
        for index, name in enumerate(TM_FIELDS)
    }


def _static_buffer(proc: SimProcess, key: str, size: int) -> int:
    """The function's 'static' buffer: one heap allocation per process.

    glibc places these in .data; allocating them once on the heap keeps
    the same aliasing semantics while making overflows observable to the
    allocator's consistency checks.
    """
    cache = getattr(proc, "_time_statics", None)
    if cache is None:
        cache = {}
        proc._time_statics = cache
    if key not in cache:
        cache[key] = proc.heap.malloc(size)
    return cache[key]


def _render_asctime(fields: dict) -> bytes:
    year = fields["tm_year"] + 1900
    wday = _WDAY[fields["tm_wday"] % 7]
    mon = _MON[fields["tm_mon"] % 12]
    return (
        f"{wday} {mon} {fields['tm_mday']:2d} "
        f"{fields['tm_hour']:02d}:{fields['tm_min']:02d}:"
        f"{fields['tm_sec']:02d} {year}\n"
    ).encode()


# ----------------------------------------------------------------------
# registration
# ----------------------------------------------------------------------

def register(reg: LibcRegistry) -> None:
    """Register the time family into ``reg``."""

    @libc_function(reg, "time_t time(time_t *tloc)",
                   header="time.h", category="time")
    def time_(proc: SimProcess, tloc: int) -> int:
        """Simulated wall clock; also stored through tloc when non-NULL."""
        proc.consume()
        now = getattr(proc, "sim_time", SIM_EPOCH)
        proc.sim_time = now + 1
        if tloc != 0:
            proc.space.write_u64(tloc, now)
        return now

    @libc_function(reg, "double difftime(time_t time1, time_t time0)",
                   header="time.h", category="time")
    def difftime(proc: SimProcess, time1: int, time0: int) -> float:
        """Seconds elapsed between two calendar times."""
        proc.consume()
        return float(time1 - time0)

    @libc_function(reg, "struct tm *gmtime(const time_t *timep)",
                   header="time.h", category="time",
                   error_detector=null_on_error)
    def gmtime(proc: SimProcess, timep: int) -> int:
        """Broken-down UTC time in the shared static struct tm."""
        timestamp = proc.space.read_u64(timep)  # derefs blindly
        proc.consume()
        result = _static_buffer(proc, "tm", TM_SIZE)
        if result == 0:
            return 0
        write_tm(proc, result, _break_down(timestamp))
        return result

    @libc_function(reg, "struct tm *localtime(const time_t *timep)",
                   header="time.h", category="time",
                   error_detector=null_on_error)
    def localtime(proc: SimProcess, timep: int) -> int:
        """Local time (the simulated TZ is UTC): same static struct."""
        return gmtime(proc, timep)

    @libc_function(reg, "time_t mktime(struct tm *tm)",
                   header="time.h", category="time")
    def mktime(proc: SimProcess, tm: int) -> int:
        """Calendar time from broken-down time (normalising fields)."""
        fields = read_tm(proc, tm)
        proc.consume(TM_SIZE)
        days = days_from_civil(fields["tm_year"] + 1900,
                               fields["tm_mon"] + 1, fields["tm_mday"])
        timestamp = (days * 86400 + fields["tm_hour"] * 3600
                     + fields["tm_min"] * 60 + fields["tm_sec"])
        # C normalises the struct on the way out
        write_tm(proc, tm, _break_down(timestamp))
        return timestamp

    @libc_function(reg, "char *asctime(const struct tm *tm)",
                   header="time.h", category="time",
                   error_detector=null_on_error)
    def asctime(proc: SimProcess, tm: int) -> int:
        """Render into the 26-byte static buffer — with the documented
        hazard: out-of-range fields (a 5+ digit year) overflow it."""
        fields = read_tm(proc, tm)
        text = _render_asctime(fields)
        buffer = _static_buffer(proc, "asctime", ASCTIME_BUFFER)
        if buffer == 0:
            return 0
        cursor = buffer
        for byte in text:  # no bound: the C bug, faithfully
            proc.consume()
            proc.space.write(cursor, bytes([byte]))
            cursor += 1
        proc.space.write(cursor, b"\x00")
        return buffer

    @libc_function(reg, "char *ctime(const time_t *timep)",
                   header="time.h", category="time",
                   error_detector=null_on_error)
    def ctime(proc: SimProcess, timep: int) -> int:
        """asctime(localtime(timep)), sharing both static buffers."""
        tm_ptr = gmtime(proc, timep)
        if tm_ptr == 0:
            return 0
        return asctime(proc, tm_ptr)

    @libc_function(reg,
                   "size_t strftime(char *s, size_t max, "
                   "const char *format, const struct tm *tm)",
                   header="time.h", category="time")
    def strftime(proc: SimProcess, s: int, max_: int, format_: int,
                 tm: int) -> int:
        """Bounded time formatter; returns 0 when the result overflows."""
        fields = read_tm(proc, tm)
        out: List[bytes] = []
        cursor = format_
        while True:
            proc.consume()
            byte = proc.space.read(cursor, 1)[0]
            cursor += 1
            if byte == 0:
                break
            if byte != 0x25:  # '%'
                out.append(bytes([byte]))
                continue
            conv = chr(proc.space.read(cursor, 1)[0])
            cursor += 1
            out.append(_strftime_conv(conv, fields))
        rendered = b"".join(out)
        if len(rendered) + 1 > max_:
            return 0  # per C99: contents undefined, we write nothing
        for offset, byte in enumerate(rendered):
            proc.consume()
            proc.space.write(s + offset, bytes([byte]))
        proc.space.write(s + len(rendered), b"\x00")
        return len(rendered)

    @libc_function(reg, "clock_t clock(void)",
                   header="time.h", category="time")
    def clock(proc: SimProcess) -> int:
        """Processor time: the fuel the process has burned."""
        proc.consume()
        return proc.fuel_used


def _strftime_conv(conv: str, fields: dict) -> bytes:
    year = fields["tm_year"] + 1900
    table = {
        "Y": str(year),
        "y": f"{year % 100:02d}",
        "m": f"{fields['tm_mon'] % 12 + 1:02d}",
        "d": f"{fields['tm_mday']:02d}",
        "e": f"{fields['tm_mday']:2d}",
        "H": f"{fields['tm_hour']:02d}",
        "M": f"{fields['tm_min']:02d}",
        "S": f"{fields['tm_sec']:02d}",
        "j": f"{fields['tm_yday'] + 1:03d}",
        "a": _WDAY[fields["tm_wday"] % 7],
        "b": _MON[fields["tm_mon"] % 12],
        "n": "\n",
        "t": "\t",
        "%": "%",
    }
    return table.get(conv, "%" + conv).encode()
