"""Simulated <stdio.h> family.

Streams are ``FILE *`` heap allocations holding a magic number and an
index into the process's stream table (see
:mod:`repro.runtime.filesystem`); a garbage ``FILE *`` is dereferenced and
faults or fails the magic check, as glibc's ``_IO_FILE`` vtable access
would.

The formatting engine supports the printf subset that C-library workloads
actually use — including ``%n``, which the security wrapper's
format-string policy must be able to block, and unbounded ``sprintf``/
``gets``, the canonical overflow vectors.
"""

from __future__ import annotations

from typing import List

from repro.errors import SegmentationFault
from repro.libc import helpers
from repro.libc.registry import (
    LibcRegistry,
    libc_function,
    negative_on_error,
    null_on_error,
)
from repro.runtime.filesystem import (
    FILE_MAGIC,
    FILE_STRUCT_SIZE,
    STDERR_INDEX,
    STDIN_INDEX,
    STDOUT_INDEX,
)
from repro.runtime.process import Errno, SimProcess

EOF = -1


# ----------------------------------------------------------------------
# FILE* plumbing
# ----------------------------------------------------------------------

def make_file_struct(proc: SimProcess, stream_index: int) -> int:
    """Allocate a FILE structure bound to ``stream_index``."""
    address = proc.heap.malloc(FILE_STRUCT_SIZE)
    if address == 0:
        return 0
    proc.space.write_u32(address, FILE_MAGIC)
    proc.space.write_u32(address + 4, stream_index)
    proc.space.write_u32(address + 8, 0)
    proc.space.write_u32(address + 12, 0)
    return address


def stream_index_of(proc: SimProcess, file_ptr: int) -> int:
    """Dereference a FILE*; faults on garbage, like vtable access would."""
    magic = proc.space.read_u32(file_ptr)
    if magic != FILE_MAGIC:
        # glibc chases _IO_jump_t through the corrupted struct and faults
        raise SegmentationFault(file_ptr, "read", "not a FILE structure")
    return proc.space.read_u32(file_ptr + 4)


def std_stream(proc: SimProcess, which: int) -> int:
    """FILE* for stdin/stdout/stderr, created lazily per process."""
    cache = getattr(proc, "_std_files", None)
    if cache is None:
        cache = {}
        proc._std_files = cache
    if which not in cache:
        cache[which] = make_file_struct(proc, which)
    return cache[which]


# ----------------------------------------------------------------------
# printf engine
# ----------------------------------------------------------------------

def format_into(proc: SimProcess, fmt: int, args: List, limit=None,
                out_address=None, writer=None) -> int:
    """Render a printf format.

    Either writes bytes at ``out_address`` (sprintf semantics: unbounded
    unless ``limit``) or hands chunks to ``writer`` (fprintf semantics).
    Returns the number of bytes that *would* have been produced, per C99
    snprintf.  Supports ``%d %i %u %x %X %o %c %s %p %f %g %e %%`` and
    ``%n``, with ``-``/``0`` flags, width, precision and ``l``/``ll``/``z``
    length modifiers.

    With unlimited fuel and the space in bulk mode the engine renders
    from a prefetched copy of the format with chunked emission — same
    bytes, same fuel total, same fault addresses as the per-byte
    reference loop below, which remains authoritative whenever a budget
    could trip mid-render or the space is in scalar mode.
    """
    if not proc.space.scalar and proc.fuel is None:
        result = _bulk_format_into(proc, fmt, args, limit, out_address,
                                   writer)
        if result is not None:
            return result
    return _scalar_format_into(proc, fmt, args, limit, out_address, writer)


def _scalar_format_into(proc: SimProcess, fmt: int, args: List, limit=None,
                        out_address=None, writer=None) -> int:
    """Per-byte reference printf engine (exact fuel/fault interleaving)."""
    produced = 0
    arg_index = 0

    def emit(chunk: bytes) -> None:
        nonlocal produced
        for byte in chunk:
            proc.consume()
            if writer is not None:
                writer(bytes([byte]))
            elif out_address is not None:
                if limit is None or produced < limit - 1:
                    proc.space.write(out_address + produced, bytes([byte]))
            produced += 1

    cursor = fmt
    while True:
        proc.consume()
        byte = proc.space.read(cursor, 1)[0]
        cursor += 1
        if byte == 0:
            break
        if byte != 0x25:  # '%'
            emit(bytes([byte]))
            continue
        spec, cursor = _parse_spec(proc, cursor)
        if spec.conversion == "%":
            emit(b"%")
            continue
        if spec.conversion == "n":
            if arg_index >= len(args):
                raise SegmentationFault(0, "read", "va_arg past end of arguments")
            proc.space.write_i32(args[arg_index], produced)
            arg_index += 1
            continue
        if arg_index >= len(args):
            # reading a missing vararg picks up garbage; in practice
            # printf with too few arguments reads a wild stack slot
            raise SegmentationFault(0, "read", "va_arg past end of arguments")
        value = args[arg_index]
        arg_index += 1
        emit(_render(proc, spec, value))
    if out_address is not None and (limit is None or limit > 0):
        terminator_at = out_address + min(produced, (limit - 1) if limit else produced)
        proc.space.write(terminator_at, b"\x00")
    return produced


class _Spec:
    __slots__ = ("flags", "width", "precision", "length", "conversion")

    def __init__(self):
        self.flags = ""
        self.width = 0
        self.precision = None
        self.length = ""
        self.conversion = ""


def _parse_spec(proc: SimProcess, cursor: int):
    spec = _Spec()
    while True:
        byte = proc.space.read(cursor, 1)[0]
        if chr(byte) in "-0+ #":
            spec.flags += chr(byte)
            cursor += 1
        else:
            break
    while 0x30 <= byte <= 0x39:
        spec.width = spec.width * 10 + (byte - 0x30)
        cursor += 1
        byte = proc.space.read(cursor, 1)[0]
    if byte == 0x2E:  # '.'
        cursor += 1
        spec.precision = 0
        byte = proc.space.read(cursor, 1)[0]
        while 0x30 <= byte <= 0x39:
            spec.precision = spec.precision * 10 + (byte - 0x30)
            cursor += 1
            byte = proc.space.read(cursor, 1)[0]
    while chr(byte) in "lhzq":
        spec.length += chr(byte)
        cursor += 1
        byte = proc.space.read(cursor, 1)[0]
    spec.conversion = chr(byte)
    cursor += 1
    return spec, cursor


def _parse_spec_bytes(data: bytes, index: int, stop: int):
    """:func:`_parse_spec` over a prefetched buffer.

    Returns ``(spec, next_index)``, or None when parsing would read at
    or past ``stop`` (the terminator) — the reference loop then runs on
    beyond the NUL, so the caller must fall back to it.
    """
    spec = _Spec()
    if index >= stop:
        return None
    byte = data[index]
    while chr(byte) in "-0+ #":
        spec.flags += chr(byte)
        index += 1
        if index >= stop:
            return None
        byte = data[index]
    while 0x30 <= byte <= 0x39:
        spec.width = spec.width * 10 + (byte - 0x30)
        index += 1
        if index >= stop:
            return None
        byte = data[index]
    if byte == 0x2E:  # '.'
        index += 1
        spec.precision = 0
        if index >= stop:
            return None
        byte = data[index]
        while 0x30 <= byte <= 0x39:
            spec.precision = spec.precision * 10 + (byte - 0x30)
            index += 1
            if index >= stop:
                return None
            byte = data[index]
    while chr(byte) in "lhzq":
        spec.length += chr(byte)
        index += 1
        if index >= stop:
            return None
        byte = data[index]
    spec.conversion = chr(byte)
    return spec, index + 1


def _bulk_read_string(proc: SimProcess, address: int, precision) -> bytes:
    """:func:`_read_string_fuelled` with one scan and one fuel draw."""
    space = proc.space
    bound = precision if precision is not None else None
    index, scanned = space.find_byte(address, 0, bound)
    if index is not None:
        # terminator found: the loop consumed once per data byte plus
        # once for the terminator read
        proc.consume_metered(index + 1)
        return space.read_run(address, index)
    if precision is not None and scanned >= precision:
        # precision cap reached before any terminator
        proc.consume_metered(precision + 1)
        return space.read_run(address, precision)
    # ran off readable memory: consume up to the faulting read, then
    # raise the exact fault the per-byte loop would have raised
    proc.consume_metered(scanned + 1)
    proc.space.read(address + scanned, 1)
    raise AssertionError("%s fault replay did not fault")


def _bulk_format_into(proc: SimProcess, fmt: int, args: List, limit,
                      out_address, writer):
    """Chunked printf engine; None means "use the reference loop".

    Byte/fuel/fault parity with :func:`_scalar_format_into` under
    unlimited fuel: every scan unit the reference loop would consume is
    drawn with ``consume_metered``, emission writes whole chunks with
    the fault-replay idiom of :meth:`AddressSpace.write_run`, and any
    shape the prefetch cannot represent (unterminated format, directive
    truncated at the NUL) defers wholesale before any side effect.
    """
    space = proc.space
    terminator, _scanned = space.find_byte(fmt, 0)
    if terminator is None:
        return None  # unmapped or unterminated: reference loop faults
    data = space.read_run(fmt, terminator + 1)
    # validate every directive before any side effect: a spec truncated
    # at the NUL makes the reference loop scan past the terminator, a
    # shape the prefetch cannot replay
    probe = 0
    while True:
        percent = data.find(0x25, probe, terminator)
        if percent < 0:
            break
        parsed = _parse_spec_bytes(data, percent + 1, terminator)
        if parsed is None:
            return None
        _spec, probe = parsed
    produced = 0
    arg_index = 0

    def emit(chunk: bytes) -> None:
        nonlocal produced
        count = len(chunk)
        if count == 0:
            return
        if out_address is not None:
            window = count if limit is None else max(
                0, min(count, (limit - 1) - produced))
            if window > 0:
                target = out_address + produced
                writable = space.writable_run(target, window)
                if writable < window:
                    if writable:
                        space.write_run(target, chunk[:writable])
                    proc.consume_metered(writable + 1)
                    space.write(target + writable, b"\x00")
                    raise AssertionError(
                        "format fault replay did not fault")
                space.write_run(target, chunk[:window])
        proc.consume_metered(count)
        if writer is not None:
            writer(chunk)
        produced += count

    position = 0
    while position < terminator:
        percent = data.find(0x25, position, terminator)
        run = (terminator if percent < 0 else percent) - position
        if run:
            proc.consume_metered(run)  # the scan unit per literal byte
            emit(data[position : position + run])
            position += run
        if percent < 0:
            break
        proc.consume_metered(1)  # the scan unit for '%'
        spec, position = _parse_spec_bytes(data, position + 1, terminator)
        if spec.conversion == "%":
            emit(b"%")
            continue
        if spec.conversion == "n":
            if arg_index >= len(args):
                raise SegmentationFault(
                    0, "read", "va_arg past end of arguments")
            proc.space.write_i32(args[arg_index], produced)
            arg_index += 1
            continue
        if arg_index >= len(args):
            raise SegmentationFault(
                0, "read", "va_arg past end of arguments")
        value = args[arg_index]
        arg_index += 1
        if spec.conversion == "s" and int(value) != 0:
            raw = _bulk_read_string(proc, int(value), spec.precision)
            emit(_finish_text(spec, raw.decode("latin-1")))
        else:
            emit(_render(proc, spec, value))
    proc.consume_metered(1)  # the terminator read
    if out_address is not None and (limit is None or limit > 0):
        terminator_at = out_address + min(
            produced, (limit - 1) if limit else produced)
        space.write(terminator_at, b"\x00")
    return produced


def _render(proc: SimProcess, spec: _Spec, value) -> bytes:
    conv = spec.conversion
    if conv in "di":
        text = str(int(value))
    elif conv == "u":
        text = str(helpers.to_unsigned(int(value)))
    elif conv == "x":
        text = format(helpers.to_unsigned(int(value)), "x")
    elif conv == "X":
        text = format(helpers.to_unsigned(int(value)), "X")
    elif conv == "o":
        text = format(helpers.to_unsigned(int(value)), "o")
    elif conv == "c":
        text = chr(int(value) & 0xFF)
    elif conv == "p":
        text = hex(int(value))
    elif conv in "feEgG":
        number = float(value)
        precision = 6 if spec.precision is None else spec.precision
        if conv in "fF":
            text = f"{number:.{precision}f}"
        elif conv in "eE":
            text = f"{number:.{precision}{conv}}"
        else:
            text = f"{number:.{precision or 1}g}"
    elif conv == "s":
        if int(value) == 0:
            text = "(null)"  # glibc's famous leniency
        else:
            raw = _read_string_fuelled(proc, int(value), spec.precision)
            text = raw.decode("latin-1")
    else:
        text = "%" + conv
    return _finish_text(spec, text)


def _finish_text(spec: _Spec, text: str) -> bytes:
    """Apply %s precision truncation and width padding, then encode."""
    conv = spec.conversion
    if conv == "s" and spec.precision is not None:
        text = text[: spec.precision]
    if spec.width > len(text):
        pad = spec.width - len(text)
        if "-" in spec.flags:
            text = text + " " * pad
        elif "0" in spec.flags and conv not in "sc":
            text = "0" * pad + text
        else:
            text = " " * pad + text
    return text.encode("latin-1")


def _read_string_fuelled(proc: SimProcess, address: int, precision) -> bytes:
    out = bytearray()
    cursor = address
    while True:
        proc.consume()
        if precision is not None and len(out) >= precision:
            return bytes(out)
        byte = proc.space.read(cursor, 1)[0]
        if byte == 0:
            return bytes(out)
        out.append(byte)
        cursor += 1


def _scalar_gets(proc: SimProcess, s: int) -> int:
    cursor = s
    read_any = False
    while True:
        proc.consume()
        data = proc.fs.read(STDIN_INDEX, 1)
        if not data:
            break
        read_any = True
        if data == b"\n":
            break
        proc.space.write(cursor, data)
        cursor += 1
    if not read_any:
        return 0
    proc.space.write(cursor, b"\x00")
    return s


def _scalar_fgets(proc: SimProcess, s: int, size: int, index: int) -> int:
    cursor = s
    remaining = size - 1
    read_any = False
    while remaining > 0:
        proc.consume()
        data = proc.fs.read(index, 1)
        if data is None:
            proc.errno = Errno.EBADF
            return 0
        if not data:
            break
        read_any = True
        proc.space.write(cursor, data)
        cursor += 1
        remaining -= 1
        if data == b"\n":
            break
    if not read_any:
        return 0
    proc.space.write(cursor, b"\x00")
    return s


# ----------------------------------------------------------------------
# registration
# ----------------------------------------------------------------------

def register(reg: LibcRegistry) -> None:
    """Register the stdio family into ``reg``."""

    @libc_function(reg, "int sprintf(char *str, const char *format, ...)",
                   header="stdio.h", category="stdio")
    def sprintf(proc: SimProcess, str_: int, format_: int, *args) -> int:
        """Unbounded formatted write into str (the overflow vector)."""
        return format_into(proc, format_, list(args), out_address=str_)

    @libc_function(reg,
                   "int snprintf(char *str, size_t size, const char *format, ...)",
                   header="stdio.h", category="stdio")
    def snprintf(proc: SimProcess, str_: int, size: int, format_: int,
                 *args) -> int:
        """Bounded formatted write; returns would-be length."""
        return format_into(proc, format_, list(args),
                           limit=size, out_address=str_ if size > 0 else None)

    @libc_function(reg, "int printf(const char *format, ...)",
                   header="stdio.h", category="stdio")
    def printf(proc: SimProcess, format_: int, *args) -> int:
        """Formatted write to stdout."""
        return format_into(
            proc, format_, list(args),
            writer=lambda chunk: proc.fs.write(STDOUT_INDEX, chunk),
        )

    @libc_function(reg, "int fprintf(void *stream, const char *format, ...)",
                   header="stdio.h", category="stdio")
    def fprintf(proc: SimProcess, stream: int, format_: int, *args) -> int:
        """Formatted write to a stream."""
        index = stream_index_of(proc, stream)
        return format_into(
            proc, format_, list(args),
            writer=lambda chunk: proc.fs.write(index, chunk),
        )

    @libc_function(reg, "int puts(const char *s)",
                   header="stdio.h", category="stdio",
                   error_detector=negative_on_error)
    def puts(proc: SimProcess, s: int) -> int:
        """Write s and a newline to stdout."""
        length = helpers.scan_string_length(proc, s)
        proc.fs.write(STDOUT_INDEX, proc.space.read(s, length) + b"\n")
        return length + 1

    @libc_function(reg, "int putchar(int c)",
                   header="stdio.h", category="stdio")
    def putchar(proc: SimProcess, c: int) -> int:
        """Write one character to stdout."""
        proc.consume()
        proc.fs.write(STDOUT_INDEX, bytes([c & 0xFF]))
        return c & 0xFF

    @libc_function(reg, "char *gets(char *s)",
                   header="stdio.h", category="stdio",
                   error_detector=null_on_error)
    def gets(proc: SimProcess, s: int) -> int:
        """Read a line from stdin with *no* bound — the classic CVE."""
        if proc.space.scalar:
            return _scalar_gets(proc, s)
        space = proc.space
        fs = proc.fs
        if fs.peek(STDIN_INDEX, 1) is None:
            proc.consume_metered(1)
            fs.read(STDIN_INDEX, 1)
            return 0
        offset = 0
        newline = False
        while True:
            chunk = fs.peek(STDIN_INDEX, 4096, offset)
            position = chunk.find(b"\n")
            if position >= 0:
                linelen = offset + position
                newline = True
                break
            if len(chunk) < 4096:
                linelen = offset + len(chunk)
                break
            offset += 4096
        # one fuel unit per loop iteration: linelen data bytes plus the
        # newline (or the empty read that flags EOF)
        units = linelen + 1
        writable = space.writable_run(s, linelen)
        headroom = proc.fuel_headroom()
        if writable < linelen:
            fault_units = writable + 1
            advance = fault_units if headroom is None or headroom >= fault_units else headroom
            data = fs.read(STDIN_INDEX, advance) if advance else b""
            side = min(writable, advance)
            if side:
                space.write_run(s, data[:side])
            proc.consume_metered(fault_units)
            space.write(s + writable, b"\x00")
            raise AssertionError("gets fault replay did not fault")
        if headroom is not None and headroom < units:
            data = fs.read(STDIN_INDEX, headroom) if headroom else b""
            if data:
                space.write_run(s, data)
            proc.consume_metered(units)
            raise AssertionError("gets fuel replay did not trip")
        data = fs.read(STDIN_INDEX, linelen) if linelen else b""
        if data:
            space.write_run(s, data)
        fs.read(STDIN_INDEX, 1)  # the newline, or the empty read setting EOF
        proc.consume_metered(units)
        if linelen == 0 and not newline:
            return 0
        space.write(s + linelen, b"\x00")
        return s

    @libc_function(reg, "char *fgets(char *s, int size, void *stream)",
                   header="stdio.h", category="stdio",
                   error_detector=null_on_error)
    def fgets(proc: SimProcess, s: int, size: int, stream: int) -> int:
        """Bounded line read (the safe replacement wrappers substitute)."""
        index = stream_index_of(proc, stream)
        if size <= 0:
            return 0
        if proc.space.scalar:
            return _scalar_fgets(proc, s, size, index)
        want = size - 1
        if want == 0:
            return 0
        space = proc.space
        fs = proc.fs
        window = fs.peek(index, want)
        if window is None:
            proc.consume_metered(1)
            fs.read(index, 1)  # reproduces the error-flag side effect
            proc.errno = Errno.EBADF
            return 0
        position = window.find(b"\n")
        if position >= 0:
            take = position + 1
            eof_hit = False
        else:
            take = len(window)
            eof_hit = take < want
        units = take + 1 if eof_hit else take
        writable = space.writable_run(s, take)
        headroom = proc.fuel_headroom()
        if writable < take:
            fault_units = writable + 1
            advance = fault_units if headroom is None or headroom >= fault_units else headroom
            data = fs.read(index, advance) if advance else b""
            side = min(writable, advance)
            if side:
                space.write_run(s, data[:side])
            proc.consume_metered(fault_units)
            space.write(s + writable, b"\x00")
            raise AssertionError("fgets fault replay did not fault")
        if headroom is not None and headroom < units:
            data = fs.read(index, headroom) if headroom else b""
            if data:
                space.write_run(s, data)
            proc.consume_metered(units)
            raise AssertionError("fgets fuel replay did not trip")
        data = fs.read(index, take) if take else b""
        if data:
            space.write_run(s, data)
        if eof_hit:
            fs.read(index, 1)  # the empty read that sets the EOF flag
        proc.consume_metered(units)
        if take == 0:
            return 0
        space.write(s + take, b"\x00")
        return s

    @libc_function(reg, "void *fopen(const char *path, const char *mode)",
                   header="stdio.h", category="stdio",
                   error_detector=null_on_error)
    def fopen(proc: SimProcess, path: int, mode: int) -> int:
        """Open a file; NULL with errno on failure."""
        path_text = proc.read_cstring(path).decode(errors="replace")
        mode_text = proc.read_cstring(mode).decode(errors="replace")
        proc.consume(len(path_text) + 1)
        index = proc.fs.open(path_text, mode_text)
        if index is None:
            proc.errno = (
                Errno.EINVAL if not mode_text or mode_text[0] not in "rwa"
                else Errno.ENOENT
            )
            return 0
        file_ptr = make_file_struct(proc, index)
        if file_ptr == 0:
            proc.errno = Errno.ENOMEM
        return file_ptr

    @libc_function(reg, "int fclose(void *stream)",
                   header="stdio.h", category="stdio",
                   error_detector=negative_on_error)
    def fclose(proc: SimProcess, stream: int) -> int:
        """Close a stream and release its FILE structure."""
        index = stream_index_of(proc, stream)
        ok = proc.fs.close(index)
        proc.space.write_u32(stream, 0)  # poison the magic
        proc.heap.free(stream)
        if not ok:
            proc.errno = Errno.EBADF
            return EOF
        return 0

    @libc_function(reg,
                   "size_t fread(void *ptr, size_t size, size_t nmemb, void *stream)",
                   header="stdio.h", category="stdio")
    def fread(proc: SimProcess, ptr: int, size: int, nmemb: int,
              stream: int) -> int:
        """Read up to size*nmemb bytes into ptr."""
        index = stream_index_of(proc, stream)
        if size == 0 or nmemb == 0:
            return 0
        data = proc.fs.read(index, size * nmemb)
        if data is None:
            proc.errno = Errno.EBADF
            return 0
        proc.consume(max(len(data), 1))
        proc.space.write(ptr, data)
        return len(data) // size

    @libc_function(reg,
                   "size_t fwrite(const void *ptr, size_t size, size_t nmemb, void *stream)",
                   header="stdio.h", category="stdio")
    def fwrite(proc: SimProcess, ptr: int, size: int, nmemb: int,
               stream: int) -> int:
        """Write size*nmemb bytes from ptr."""
        index = stream_index_of(proc, stream)
        if size == 0 or nmemb == 0:
            return 0
        total = size * nmemb
        data = proc.space.read(ptr, total)
        proc.consume(total)
        written = proc.fs.write(index, data)
        if written is None:
            proc.errno = Errno.EBADF
            return 0
        return written // size

    @libc_function(reg, "int fputs(const char *s, void *stream)",
                   header="stdio.h", category="stdio",
                   error_detector=negative_on_error)
    def fputs(proc: SimProcess, s: int, stream: int) -> int:
        """Write s to a stream."""
        index = stream_index_of(proc, stream)
        length = helpers.scan_string_length(proc, s)
        written = proc.fs.write(index, proc.space.read(s, length))
        if written is None:
            proc.errno = Errno.EBADF
            return EOF
        return written

    @libc_function(reg, "int fgetc(void *stream)",
                   header="stdio.h", category="stdio")
    def fgetc(proc: SimProcess, stream: int) -> int:
        """Read one character; EOF at end."""
        index = stream_index_of(proc, stream)
        proc.consume()
        data = proc.fs.read(index, 1)
        if not data:
            return EOF
        return data[0]

    @libc_function(reg, "int fputc(int c, void *stream)",
                   header="stdio.h", category="stdio")
    def fputc(proc: SimProcess, c: int, stream: int) -> int:
        """Write one character."""
        index = stream_index_of(proc, stream)
        proc.consume()
        written = proc.fs.write(index, bytes([c & 0xFF]))
        if written is None:
            proc.errno = Errno.EBADF
            return EOF
        return c & 0xFF

    @libc_function(reg, "int feof(void *stream)",
                   header="stdio.h", category="stdio")
    def feof(proc: SimProcess, stream: int) -> int:
        """Nonzero after a read hit end-of-file."""
        index = stream_index_of(proc, stream)
        proc.consume()
        entry = proc.fs.stream(index)
        return 1 if entry is not None and entry.eof else 0

    @libc_function(reg, "int ferror(void *stream)",
                   header="stdio.h", category="stdio")
    def ferror(proc: SimProcess, stream: int) -> int:
        """Nonzero after a stream error."""
        index = stream_index_of(proc, stream)
        proc.consume()
        entry = proc.fs.stream(index)
        return 1 if entry is not None and entry.error else 0

    @libc_function(reg, "int remove(const char *path)",
                   header="stdio.h", category="stdio",
                   error_detector=negative_on_error)
    def remove_(proc: SimProcess, path: int) -> int:
        """Delete a file; -1 with ENOENT when missing."""
        text = proc.read_cstring(path).decode(errors="replace")
        proc.consume(len(text) + 1)
        if text not in proc.fs.files:
            proc.errno = Errno.ENOENT
            return -1
        del proc.fs.files[text]
        return 0

    @libc_function(reg, "int rename(const char *old, const char *new)",
                   header="stdio.h", category="stdio",
                   error_detector=negative_on_error)
    def rename_(proc: SimProcess, old: int, new: int) -> int:
        """Rename a file; -1 with ENOENT when missing."""
        old_text = proc.read_cstring(old).decode(errors="replace")
        new_text = proc.read_cstring(new).decode(errors="replace")
        proc.consume(len(old_text) + len(new_text) + 2)
        if old_text not in proc.fs.files:
            proc.errno = Errno.ENOENT
            return -1
        proc.fs.files[new_text] = proc.fs.files.pop(old_text)
        return 0
