"""Simulated <string.h> (plus <strings.h>) family.

Implementations follow the C standard's *documented* behaviour and inherit
the C standard's *undocumented* fragility: NULL or garbage pointers are
dereferenced, unterminated strings are scanned off the end of their
buffer, and destination bounds are never checked.  The HEALERS pipeline
exists to discover and contain exactly these behaviours, so hardening them
here would invalidate the reproduction.
"""

from __future__ import annotations

from repro.libc import helpers
from repro.libc.registry import LibcRegistry, libc_function, null_on_error
from repro.memory.model import first_mismatch
from repro.runtime.process import Errno, SimProcess

_ERRNO_MESSAGES = {
    0: b"Success",
    Errno.EPERM: b"Operation not permitted",
    Errno.ENOENT: b"No such file or directory",
    Errno.EIO: b"Input/output error",
    Errno.EBADF: b"Bad file descriptor",
    Errno.ENOMEM: b"Cannot allocate memory",
    Errno.EACCES: b"Permission denied",
    Errno.EFAULT: b"Bad address",
    Errno.EINVAL: b"Invalid argument",
    Errno.ERANGE: b"Numerical result out of range",
    Errno.EDOM: b"Numerical argument out of domain",
}


def register(reg: LibcRegistry) -> None:
    """Register the string family into ``reg``."""

    @libc_function(reg, "size_t strlen(const char *s)",
                   header="string.h", category="string")
    def strlen(proc: SimProcess, s: int) -> int:
        """Length of the NUL-terminated string at s."""
        return helpers.scan_string_length(proc, s)

    @libc_function(reg, "size_t strnlen(const char *s, size_t maxlen)",
                   header="string.h", category="string")
    def strnlen(proc: SimProcess, s: int, maxlen: int) -> int:
        """Length of s, scanning at most maxlen bytes."""
        return helpers.scan_string_length_bounded(proc, s, maxlen)

    @libc_function(reg, "char *strcpy(char *dest, const char *src)",
                   header="string.h", category="string")
    def strcpy(proc: SimProcess, dest: int, src: int) -> int:
        """Copy src (including NUL) into dest; no bounds check."""
        helpers.copy_string(proc, dest, src)
        return dest

    @libc_function(reg, "char *stpcpy(char *dest, const char *src)",
                   header="string.h", category="string")
    def stpcpy(proc: SimProcess, dest: int, src: int) -> int:
        """Like strcpy but returns a pointer to dest's terminating NUL."""
        copied = helpers.copy_string(proc, dest, src)
        return dest + copied

    @libc_function(reg, "char *strncpy(char *dest, const char *src, size_t n)",
                   header="string.h", category="string")
    def strncpy(proc: SimProcess, dest: int, src: int, n: int) -> int:
        """Copy at most n bytes; pads dest with NULs to length n."""
        space = proc.space
        if space.scalar or n <= 0 or src < dest < src + n:
            # overlapping forward copy re-reads freshly written bytes; only
            # the reference loop reproduces that faithfully
            _scalar_strncpy(proc, dest, src, n)
            return dest
        index, scanned = space.find_byte(src, 0, n)
        if index is not None:
            copy_n, read_ok = index + 1, True
        elif scanned >= n:
            copy_n, read_ok = n, True
        else:
            copy_n, read_ok = scanned, False  # read faults at src + scanned
        writable = space.writable_run(dest, n)
        headroom = proc.fuel_headroom()
        if read_ok and writable >= n:
            side = n if headroom is None else min(n, headroom)
            copied = min(side, copy_n)
            if copied:
                space.write_run(dest, space.read_run(src, copied))
            if side > copied:
                space.fill_run(dest + copied, 0, side - copied)
            proc.consume_metered(n)
            return dest
        if not read_ok and copy_n <= writable:
            fault_offset = copy_n
        else:
            fault_offset = writable
        side = fault_offset if headroom is None else min(fault_offset, headroom)
        copied = min(side, copy_n)
        if copied:
            space.write_run(dest, space.read_run(src, copied))
        if side > copied:
            space.fill_run(dest + copied, 0, side - copied)
        proc.consume_metered(fault_offset + 1)
        if not read_ok and copy_n <= writable:
            space.read(src + copy_n, 1)
        else:
            space.write(dest + writable, b"\x00")
        raise AssertionError("strncpy fault replay did not fault")

    @libc_function(reg, "char *strcat(char *dest, const char *src)",
                   header="string.h", category="string")
    def strcat(proc: SimProcess, dest: int, src: int) -> int:
        """Append src to dest; no bounds check."""
        end = dest + helpers.scan_string_length(proc, dest)
        helpers.copy_string(proc, end, src)
        return dest

    @libc_function(reg, "char *strncat(char *dest, const char *src, size_t n)",
                   header="string.h", category="string")
    def strncat(proc: SimProcess, dest: int, src: int, n: int) -> int:
        """Append at most n bytes of src to dest, then a NUL."""
        end = dest + helpers.scan_string_length(proc, dest)
        offset = 0
        while offset < n:
            proc.consume()
            byte = proc.space.read(src + offset, 1)[0]
            if byte == 0:
                break
            proc.space.write(end + offset, bytes([byte]))
            offset += 1
        proc.space.write(end + offset, b"\x00")
        return dest

    @libc_function(reg, "int strcmp(const char *s1, const char *s2)",
                   header="string.h", category="string")
    def strcmp(proc: SimProcess, s1: int, s2: int) -> int:
        """Lexicographic comparison."""
        return helpers.compare_strings(proc, s1, s2)

    @libc_function(reg, "int strncmp(const char *s1, const char *s2, size_t n)",
                   header="string.h", category="string")
    def strncmp(proc: SimProcess, s1: int, s2: int, n: int) -> int:
        """Comparison over at most n bytes."""
        return helpers.compare_strings(proc, s1, s2, limit=n)

    @libc_function(reg, "int strcasecmp(const char *s1, const char *s2)",
                   header="strings.h", category="string")
    def strcasecmp(proc: SimProcess, s1: int, s2: int) -> int:
        """Case-insensitive comparison."""
        return helpers.compare_strings(proc, s1, s2, fold_case=True)

    @libc_function(reg,
                   "int strncasecmp(const char *s1, const char *s2, size_t n)",
                   header="strings.h", category="string")
    def strncasecmp(proc: SimProcess, s1: int, s2: int, n: int) -> int:
        """Case-insensitive comparison over at most n bytes."""
        return helpers.compare_strings(proc, s1, s2, limit=n, fold_case=True)

    @libc_function(reg, "int strcoll(const char *s1, const char *s2)",
                   header="string.h", category="string")
    def strcoll(proc: SimProcess, s1: int, s2: int) -> int:
        """Locale-aware comparison (C locale: same as strcmp)."""
        return helpers.compare_strings(proc, s1, s2)

    @libc_function(reg, "char *strchr(const char *s, int c)",
                   header="string.h", category="string",
                   error_detector=null_on_error)
    def strchr(proc: SimProcess, s: int, c: int) -> int:
        """First occurrence of (char)c in s, or NULL."""
        target = c & 0xFF
        space = proc.space
        if space.scalar:
            cursor = s
            while True:
                proc.consume()
                byte = space.read(cursor, 1)[0]
                if byte == target:
                    return cursor
                if byte == 0:
                    return 0
                cursor += 1
        hit, _ = space.find_byte(s, target)
        nul, scanned = space.find_byte(s, 0)
        # the loop tests target before terminator, so a tie goes to target
        if hit is not None and (nul is None or hit <= nul):
            proc.consume_metered(hit + 1)
            return s + hit
        if nul is not None:
            proc.consume_metered(nul + 1)
            return 0
        proc.consume_metered(scanned + 1)
        space.read(s + scanned, 1)
        raise AssertionError("strchr fault replay did not fault")

    @libc_function(reg, "char *strrchr(const char *s, int c)",
                   header="string.h", category="string",
                   error_detector=null_on_error)
    def strrchr(proc: SimProcess, s: int, c: int) -> int:
        """Last occurrence of (char)c in s, or NULL."""
        target = c & 0xFF
        space = proc.space
        if space.scalar:
            found = 0
            cursor = s
            while True:
                proc.consume()
                byte = space.read(cursor, 1)[0]
                if byte == target:
                    found = cursor
                if byte == 0:
                    return found
                cursor += 1
        nul, scanned = space.find_byte(s, 0)
        if nul is None:
            proc.consume_metered(scanned + 1)
            space.read(s + scanned, 1)
            raise AssertionError("strrchr fault replay did not fault")
        proc.consume_metered(nul + 1)
        if target == 0:
            return s + nul
        position = space.read_run(s, nul).rfind(target)
        return s + position if position >= 0 else 0

    @libc_function(reg, "char *strstr(const char *haystack, const char *needle)",
                   header="string.h", category="string",
                   error_detector=null_on_error)
    def strstr(proc: SimProcess, haystack: int, needle: int) -> int:
        """First occurrence of needle in haystack, or NULL."""
        needle_len = helpers.scan_string_length(proc, needle)
        if needle_len == 0:
            return haystack
        needle_bytes = proc.space.read(needle, needle_len)
        cursor = haystack
        while True:
            proc.consume()
            byte = proc.space.read(cursor, 1)[0]
            if byte == 0:
                return 0
            if byte == needle_bytes[0]:
                if proc.space.read(cursor, needle_len) == needle_bytes:
                    return cursor
            cursor += 1

    @libc_function(reg, "size_t strspn(const char *s, const char *accept)",
                   header="string.h", category="string")
    def strspn(proc: SimProcess, s: int, accept: int) -> int:
        """Length of the initial segment of s made of accept's bytes."""
        accept_len = helpers.scan_string_length(proc, accept)
        accept_set = set(proc.space.read(accept, accept_len))
        length = 0
        while True:
            proc.consume()
            byte = proc.space.read(s + length, 1)[0]
            if byte == 0 or byte not in accept_set:
                return length
            length += 1

    @libc_function(reg, "size_t strcspn(const char *s, const char *reject)",
                   header="string.h", category="string")
    def strcspn(proc: SimProcess, s: int, reject: int) -> int:
        """Length of the initial segment of s free of reject's bytes."""
        reject_len = helpers.scan_string_length(proc, reject)
        reject_set = set(proc.space.read(reject, reject_len))
        length = 0
        while True:
            proc.consume()
            byte = proc.space.read(s + length, 1)[0]
            if byte == 0 or byte in reject_set:
                return length
            length += 1

    @libc_function(reg, "char *strpbrk(const char *s, const char *accept)",
                   header="string.h", category="string",
                   error_detector=null_on_error)
    def strpbrk(proc: SimProcess, s: int, accept: int) -> int:
        """First byte of s that is in accept, or NULL."""
        accept_len = helpers.scan_string_length(proc, accept)
        accept_set = set(proc.space.read(accept, accept_len))
        cursor = s
        while True:
            proc.consume()
            byte = proc.space.read(cursor, 1)[0]
            if byte == 0:
                return 0
            if byte in accept_set:
                return cursor
            cursor += 1

    @libc_function(reg, "char *strdup(const char *s)",
                   header="string.h", category="string",
                   error_detector=null_on_error)
    def strdup(proc: SimProcess, s: int) -> int:
        """malloc'd copy of s; NULL with ENOMEM on exhaustion."""
        length = helpers.scan_string_length(proc, s)
        copy = proc.heap.malloc(length + 1)
        if copy == 0:
            proc.errno = Errno.ENOMEM
            return 0
        helpers.copy_string(proc, copy, s)
        return copy

    @libc_function(reg, "char *strndup(const char *s, size_t n)",
                   header="string.h", category="string",
                   error_detector=null_on_error)
    def strndup(proc: SimProcess, s: int, n: int) -> int:
        """malloc'd copy of at most n bytes of s, always terminated."""
        length = helpers.scan_string_length_bounded(proc, s, n)
        copy = proc.heap.malloc(length + 1)
        if copy == 0:
            proc.errno = Errno.ENOMEM
            return 0
        proc.space.write(copy, proc.space.read(s, length))
        proc.space.write(copy + length, b"\x00")
        return copy

    @libc_function(reg, "char *strtok(char *str, const char *delim)",
                   header="string.h", category="string",
                   error_detector=null_on_error)
    def strtok(proc: SimProcess, str_: int, delim: int) -> int:
        """Stateful tokeniser (state lives in the process, like libc's)."""
        return _strtok_impl(proc, str_, delim, save_ptr=None)

    @libc_function(reg,
                   "char *strtok_r(char *str, const char *delim, char **saveptr)",
                   header="string.h", category="string",
                   error_detector=null_on_error)
    def strtok_r(proc: SimProcess, str_: int, delim: int, saveptr: int) -> int:
        """Re-entrant tokeniser; saveptr is dereferenced unconditionally."""
        return _strtok_impl(proc, str_, delim, save_ptr=saveptr)

    @libc_function(reg, "void *memcpy(void *dest, const void *src, size_t n)",
                   header="string.h", category="memory")
    def memcpy(proc: SimProcess, dest: int, src: int, n: int) -> int:
        """Copy n bytes; overlap is undefined (we copy forward)."""
        helpers.copy_bytes_forward(proc, dest, src, n)
        return dest

    @libc_function(reg, "void *memmove(void *dest, const void *src, size_t n)",
                   header="string.h", category="memory")
    def memmove(proc: SimProcess, dest: int, src: int, n: int) -> int:
        """Overlap-safe copy of n bytes."""
        if dest > src:
            helpers.copy_bytes_backward(proc, dest, src, n)
        else:
            helpers.copy_bytes_forward(proc, dest, src, n)
        return dest

    @libc_function(reg, "void *memset(void *s, int c, size_t n)",
                   header="string.h", category="memory")
    def memset(proc: SimProcess, s: int, c: int, n: int) -> int:
        """Fill n bytes with (unsigned char)c."""
        space = proc.space
        if space.scalar or n <= 0:
            for offset in range(n):
                proc.consume()
                space.write(s + offset, bytes([c & 0xFF]))
            return s
        writable = space.writable_run(s, n)
        headroom = proc.fuel_headroom()
        if writable >= n:
            side = n if headroom is None else min(n, headroom)
            if side:
                space.fill_run(s, c & 0xFF, side)
            proc.consume_metered(n)
            return s
        side = writable if headroom is None else min(writable, headroom)
        if side:
            space.fill_run(s, c & 0xFF, side)
        proc.consume_metered(writable + 1)
        space.write(s + writable, b"\x00")
        raise AssertionError("memset fault replay did not fault")

    @libc_function(reg, "int memcmp(const void *s1, const void *s2, size_t n)",
                   header="string.h", category="memory")
    def memcmp(proc: SimProcess, s1: int, s2: int, n: int) -> int:
        """Compare n bytes."""
        space = proc.space
        if space.scalar or n <= 0:
            for offset in range(n):
                proc.consume()
                a = space.read(s1 + offset, 1)[0]
                b = space.read(s2 + offset, 1)[0]
                if a != b:
                    return a - b
            return 0
        run1 = space.readable_run(s1, n)
        run2 = space.readable_run(s2, n)
        window = min(n, run1, run2)
        a = space.read_run(s1, window)
        b = space.read_run(s2, window)
        if a != b:
            mismatch = first_mismatch(a, b)
            proc.consume_metered(mismatch + 1)
            return a[mismatch] - b[mismatch]
        if window >= n:
            proc.consume_metered(n)
            return 0
        proc.consume_metered(window + 1)
        if run1 <= run2:
            space.read(s1 + window, 1)
        else:
            space.read(s2 + window, 1)
        raise AssertionError("memcmp fault replay did not fault")

    @libc_function(reg, "void *memchr(const void *s, int c, size_t n)",
                   header="string.h", category="memory",
                   error_detector=null_on_error)
    def memchr(proc: SimProcess, s: int, c: int, n: int) -> int:
        """First occurrence of (unsigned char)c in the first n bytes."""
        target = c & 0xFF
        space = proc.space
        if space.scalar or n <= 0:
            for offset in range(n):
                proc.consume()
                if space.read(s + offset, 1)[0] == target:
                    return s + offset
            return 0
        index, scanned = space.find_byte(s, target, n)
        if index is not None:
            proc.consume_metered(index + 1)
            return s + index
        if scanned >= n:
            proc.consume_metered(n)
            return 0
        proc.consume_metered(scanned + 1)
        space.read(s + scanned, 1)
        raise AssertionError("memchr fault replay did not fault")

    @libc_function(reg, "char *strerror(int errnum)",
                   header="string.h", category="string")
    def strerror(proc: SimProcess, errnum: int) -> int:
        """Message string for an errno value (interned, read-only)."""
        message = _ERRNO_MESSAGES.get(errnum)
        if message is None:
            message = b"Unknown error %d" % errnum
        return proc.intern_cstring(message)


def _scalar_strncpy(proc: SimProcess, dest: int, src: int, n: int) -> None:
    offset = 0
    terminated = False
    while offset < n:
        proc.consume()
        if terminated:
            proc.space.write(dest + offset, b"\x00")
        else:
            byte = proc.space.read(src + offset, 1)[0]
            proc.space.write(dest + offset, bytes([byte]))
            if byte == 0:
                terminated = True
        offset += 1


def _strtok_impl(proc: SimProcess, str_: int, delim: int, save_ptr) -> int:
    """Common strtok/strtok_r body.

    For plain strtok the continuation pointer is stored on the process
    object (global state, like libc's hidden static); for strtok_r it is
    read from and written through ``save_ptr`` with no validation.
    """
    if save_ptr is None:
        cursor = str_ if str_ != 0 else getattr(proc, "_strtok_state", 0)
    else:
        cursor = str_ if str_ != 0 else proc.space.read_ptr(save_ptr)
    if cursor == 0:
        return 0
    delim_len = helpers.scan_string_length(proc, delim)
    delim_set = set(proc.space.read(delim, delim_len))
    # skip leading delimiters
    while True:
        proc.consume()
        byte = proc.space.read(cursor, 1)[0]
        if byte == 0:
            _store_strtok_state(proc, save_ptr, 0)
            return 0
        if byte not in delim_set:
            break
        cursor += 1
    token = cursor
    while True:
        proc.consume()
        byte = proc.space.read(cursor, 1)[0]
        if byte == 0:
            _store_strtok_state(proc, save_ptr, 0)
            return token
        if byte in delim_set:
            proc.space.write(cursor, b"\x00")
            _store_strtok_state(proc, save_ptr, cursor + 1)
            return token
        cursor += 1


def _store_strtok_state(proc: SimProcess, save_ptr, value: int) -> None:
    if save_ptr is None:
        proc._strtok_state = value
    else:
        proc.space.write_ptr(save_ptr, value)
