"""Simulated <stdlib.h> family.

Covers allocation (delegating to the process heap), numeric conversion,
integer arithmetic, searching/sorting with user callbacks, the PRNG, the
environment, and process termination.  Conversion functions scan their
input with naive byte loops (NULL or unterminated input faults/hangs);
``qsort``/``bsearch`` jump through their comparator pointer with no
validation, so a garbage function pointer faults like an indirect call to
a non-code address.
"""

from __future__ import annotations

from repro.errors import Aborted
from repro.libc import helpers
from repro.libc.registry import (
    LibcRegistry,
    libc_function,
    null_on_error,
)
from repro.runtime.process import Errno, SimProcess

INT_MIN = -(2 ** 31)
INT_MAX = 2 ** 31 - 1
LONG_MIN = -(2 ** 63)
LONG_MAX = 2 ** 63 - 1
ULONG_MAX = 2 ** 64 - 1
RAND_MAX = 2 ** 31 - 1


def register(reg: LibcRegistry) -> None:
    """Register the stdlib family into ``reg``."""

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    @libc_function(reg, "void *malloc(size_t size)",
                   header="stdlib.h", category="alloc",
                   error_detector=null_on_error)
    def malloc(proc: SimProcess, size: int) -> int:
        """Allocate size bytes; NULL with ENOMEM on exhaustion."""
        proc.consume()
        address = proc.heap.malloc(size)
        if address == 0:
            proc.errno = Errno.ENOMEM
        return address

    @libc_function(reg, "void *calloc(size_t nmemb, size_t size)",
                   header="stdlib.h", category="alloc",
                   error_detector=null_on_error)
    def calloc(proc: SimProcess, nmemb: int, size: int) -> int:
        """Allocate and zero nmemb*size bytes (overflow checked first)."""
        proc.consume()
        address = proc.heap.calloc(nmemb, size)
        if address == 0:
            proc.errno = Errno.ENOMEM
        else:
            proc.consume(max(nmemb * size, 1))  # the zeroing loop
        return address

    @libc_function(reg, "void *realloc(void *ptr, size_t size)",
                   header="stdlib.h", category="alloc",
                   error_detector=null_on_error)
    def realloc(proc: SimProcess, ptr: int, size: int) -> int:
        """Resize an allocation; invalid ptr aborts (heap consistency)."""
        proc.consume()
        address = proc.heap.realloc(ptr, size)
        if address == 0 and size != 0:
            proc.errno = Errno.ENOMEM
        return address

    @libc_function(reg, "void free(void *ptr)",
                   header="stdlib.h", category="alloc")
    def free(proc: SimProcess, ptr: int) -> int:
        """Release an allocation; double/invalid free aborts."""
        proc.consume()
        proc.heap.free(ptr)
        return 0

    # ------------------------------------------------------------------
    # integer arithmetic
    # ------------------------------------------------------------------

    @libc_function(reg, "int abs(int j)", header="stdlib.h", category="math")
    def abs_(proc: SimProcess, j: int) -> int:
        """|j|; INT_MIN overflows back to INT_MIN, as in two's complement."""
        proc.consume()
        if j == INT_MIN:
            return INT_MIN
        return -j if j < 0 else j

    @libc_function(reg, "long labs(long j)", header="stdlib.h", category="math")
    def labs(proc: SimProcess, j: int) -> int:
        """|j| for long."""
        proc.consume()
        if j == LONG_MIN:
            return LONG_MIN
        return -j if j < 0 else j

    @libc_function(reg, "long long llabs(long long j)",
                   header="stdlib.h", category="math")
    def llabs(proc: SimProcess, j: int) -> int:
        """|j| for long long."""
        proc.consume()
        if j == LONG_MIN:
            return LONG_MIN
        return -j if j < 0 else j

    @libc_function(reg, "int div_quot(int numer, int denom)",
                   header="stdlib.h", category="math")
    def div_quot(proc: SimProcess, numer: int, denom: int) -> int:
        """Quotient field of div(); division by zero traps (SIGFPE)."""
        proc.consume()
        quotient = int(numer / denom)  # C truncates toward zero
        return quotient

    @libc_function(reg, "int div_rem(int numer, int denom)",
                   header="stdlib.h", category="math")
    def div_rem(proc: SimProcess, numer: int, denom: int) -> int:
        """Remainder field of div(); division by zero traps (SIGFPE)."""
        proc.consume()
        return numer - int(numer / denom) * denom

    # ------------------------------------------------------------------
    # numeric conversion
    # ------------------------------------------------------------------

    @libc_function(reg, "int atoi(const char *nptr)",
                   header="stdlib.h", category="convert")
    def atoi(proc: SimProcess, nptr: int) -> int:
        """Convert initial digits; no error reporting (silent on garbage)."""
        value = _strtol_scan(proc, nptr, 10)[0]
        return helpers.int_result(value, 32)

    @libc_function(reg, "long atol(const char *nptr)",
                   header="stdlib.h", category="convert")
    def atol(proc: SimProcess, nptr: int) -> int:
        """Convert initial digits to long."""
        value = _strtol_scan(proc, nptr, 10)[0]
        return helpers.int_result(value, 64)

    @libc_function(reg, "long long atoll(const char *nptr)",
                   header="stdlib.h", category="convert")
    def atoll(proc: SimProcess, nptr: int) -> int:
        """Convert initial digits to long long."""
        value = _strtol_scan(proc, nptr, 10)[0]
        return helpers.int_result(value, 64)

    @libc_function(reg,
                   "long strtol(const char *nptr, char **endptr, int base)",
                   header="stdlib.h", category="convert")
    def strtol(proc: SimProcess, nptr: int, endptr: int, base: int) -> int:
        """Conversion with overflow clamping, errno and end pointer."""
        if base != 0 and not (2 <= base <= 36):
            proc.errno = Errno.EINVAL
            if endptr:
                proc.space.write_ptr(endptr, nptr)
            return 0
        value, end = _strtol_scan(proc, nptr, base)
        if endptr:
            proc.space.write_ptr(endptr, end)
        if value > LONG_MAX:
            proc.errno = Errno.ERANGE
            return LONG_MAX
        if value < LONG_MIN:
            proc.errno = Errno.ERANGE
            return LONG_MIN
        return value

    @libc_function(reg,
                   "unsigned long strtoul(const char *nptr, char **endptr, int base)",
                   header="stdlib.h", category="convert")
    def strtoul(proc: SimProcess, nptr: int, endptr: int, base: int) -> int:
        """Unsigned conversion with ERANGE clamping."""
        if base != 0 and not (2 <= base <= 36):
            proc.errno = Errno.EINVAL
            if endptr:
                proc.space.write_ptr(endptr, nptr)
            return 0
        value, end = _strtol_scan(proc, nptr, base)
        if endptr:
            proc.space.write_ptr(endptr, end)
        if abs(value) > ULONG_MAX:
            proc.errno = Errno.ERANGE
            return ULONG_MAX
        return value & ULONG_MAX

    @libc_function(reg, "double atof(const char *nptr)",
                   header="stdlib.h", category="convert")
    def atof(proc: SimProcess, nptr: int) -> float:
        """Convert initial float text; silent on garbage."""
        return _strtod_scan(proc, nptr)[0]

    @libc_function(reg, "double strtod(const char *nptr, char **endptr)",
                   header="stdlib.h", category="convert")
    def strtod(proc: SimProcess, nptr: int, endptr: int) -> float:
        """Float conversion with end pointer."""
        value, end = _strtod_scan(proc, nptr)
        if endptr:
            proc.space.write_ptr(endptr, end)
        return value

    # ------------------------------------------------------------------
    # search / sort
    # ------------------------------------------------------------------

    @libc_function(reg,
                   "void qsort(void *base, size_t nmemb, size_t size, "
                   "int (*compar)(const void *, const void *))",
                   header="stdlib.h", category="algorithm")
    def qsort(proc: SimProcess, base: int, nmemb: int, size: int,
              compar: int) -> int:
        """In-place sort; calls through the comparator pointer blindly."""
        if nmemb == 0:
            return 0
        comparator = proc.resolve_callback(compar)
        elements = []
        for index in range(nmemb):
            proc.consume(size if size > 0 else 1)
            elements.append(proc.space.read(base + index * size, size))
        scratch = proc.heap.malloc(max(size, 1) * 2)
        if scratch == 0:
            proc.errno = Errno.ENOMEM
            return 0
        try:
            import functools

            def cmp(a: bytes, b: bytes) -> int:
                proc.consume()
                proc.space.write(scratch, a)
                proc.space.write(scratch + size, b)
                return comparator(proc, scratch, scratch + size)

            elements.sort(key=functools.cmp_to_key(cmp))
        finally:
            proc.heap.free(scratch)
        for index, element in enumerate(elements):
            proc.consume(size if size > 0 else 1)
            proc.space.write(base + index * size, element)
        return 0

    @libc_function(reg,
                   "void *bsearch(const void *key, const void *base, "
                   "size_t nmemb, size_t size, "
                   "int (*compar)(const void *, const void *))",
                   header="stdlib.h", category="algorithm",
                   error_detector=null_on_error)
    def bsearch(proc: SimProcess, key: int, base: int, nmemb: int,
                size: int, compar: int) -> int:
        """Binary search over a sorted array."""
        comparator = proc.resolve_callback(compar)
        lo, hi = 0, nmemb
        while lo < hi:
            proc.consume()
            mid = (lo + hi) // 2
            candidate = base + mid * size
            result = comparator(proc, key, candidate)
            if result == 0:
                return candidate
            if result < 0:
                hi = mid
            else:
                lo = mid + 1
        return 0

    # ------------------------------------------------------------------
    # PRNG
    # ------------------------------------------------------------------

    @libc_function(reg, "int rand(void)", header="stdlib.h", category="misc")
    def rand_(proc: SimProcess) -> int:
        """glibc-style TYPE_0 linear congruential generator."""
        proc.consume()
        proc.rand_state = (proc.rand_state * 1103515245 + 12345) & 0x7FFFFFFF
        return proc.rand_state

    @libc_function(reg, "void srand(unsigned int seed)",
                   header="stdlib.h", category="misc")
    def srand(proc: SimProcess, seed: int) -> int:
        """Seed the PRNG."""
        proc.consume()
        proc.rand_state = seed & 0xFFFFFFFF
        return 0

    # ------------------------------------------------------------------
    # environment / termination
    # ------------------------------------------------------------------

    @libc_function(reg, "char *getenv(const char *name)",
                   header="stdlib.h", category="env",
                   error_detector=null_on_error)
    def getenv(proc: SimProcess, name: int) -> int:
        """Pointer to the variable's value, or NULL."""
        text = proc.read_cstring(name).decode(errors="replace")
        for _ in text:
            proc.consume()
        return proc.getenv_ptr(text)

    @libc_function(reg, "int setenv(const char *name, const char *value, int overwrite)",
                   header="stdlib.h", category="env")
    def setenv(proc: SimProcess, name: int, value: int, overwrite: int) -> int:
        """Set an environment variable."""
        key = proc.read_cstring(name).decode(errors="replace")
        if not key or "=" in key:
            proc.errno = Errno.EINVAL
            return -1
        if key in proc.environ and not overwrite:
            return 0
        proc.setenv(key, proc.read_cstring(value).decode(errors="replace"))
        return 0

    @libc_function(reg, "void exit(int status)",
                   header="stdlib.h", category="process")
    def exit_(proc: SimProcess, status: int) -> int:
        """Terminate the process with the given status."""
        proc.exit(status & 0xFF)
        return 0  # unreachable

    @libc_function(reg, "void abort(void)",
                   header="stdlib.h", category="process")
    def abort_(proc: SimProcess) -> int:
        """Raise SIGABRT."""
        raise Aborted("abort() called")


def _strtol_scan(proc: SimProcess, nptr: int, base: int):
    """Shared integer-scan loop: skips space, handles sign/prefix/digits.

    Returns (value, end_pointer).  Reads byte-at-a-time with fuel, so NULL
    pointers fault and unterminated digit runs burn fuel.
    """
    cursor = nptr
    while True:
        proc.consume()
        byte = proc.space.read(cursor, 1)[0]
        if byte not in (0x20, 0x09, 0x0A, 0x0B, 0x0C, 0x0D):
            break
        cursor += 1
    sign = 1
    if byte in (0x2B, 0x2D):
        sign = -1 if byte == 0x2D else 1
        cursor += 1
        proc.consume()
        byte = proc.space.read(cursor, 1)[0]
    if base in (0, 16) and byte == 0x30:
        nxt = proc.space.read(cursor + 1, 1)[0]
        if nxt in (0x58, 0x78):
            probe = proc.space.read(cursor + 2, 1)[0]
            if _digit_value(probe) is not None and _digit_value(probe) < 16:
                base = 16
                cursor += 2
                byte = probe
        elif base == 0:
            base = 8
    if base == 0:
        base = 10
    value = 0
    digits = 0
    while True:
        digit = _digit_value(byte)
        if digit is None or digit >= base:
            break
        value = value * base + digit
        digits += 1
        cursor += 1
        proc.consume()
        byte = proc.space.read(cursor, 1)[0]
    if digits == 0:
        return (0, nptr)
    return (sign * value, cursor)


def _digit_value(byte: int):
    if 0x30 <= byte <= 0x39:
        return byte - 0x30
    if 0x41 <= byte <= 0x5A:
        return byte - 0x41 + 10
    if 0x61 <= byte <= 0x7A:
        return byte - 0x61 + 10
    return None


def _strtod_scan(proc: SimProcess, nptr: int):
    """Float scan: optional sign, digits, fraction, exponent."""
    cursor = nptr
    while True:
        proc.consume()
        byte = proc.space.read(cursor, 1)[0]
        if byte not in (0x20, 0x09, 0x0A, 0x0B, 0x0C, 0x0D):
            break
        cursor += 1
    start = cursor
    text = bytearray()
    if byte in (0x2B, 0x2D):
        text.append(byte)
        cursor += 1
        proc.consume()
        byte = proc.space.read(cursor, 1)[0]
    seen_digits = False
    seen_dot = False
    while True:
        if 0x30 <= byte <= 0x39:
            seen_digits = True
            text.append(byte)
        elif byte == 0x2E and not seen_dot:
            seen_dot = True
            text.append(byte)
        else:
            break
        cursor += 1
        proc.consume()
        byte = proc.space.read(cursor, 1)[0]
    if seen_digits and byte in (0x45, 0x65):
        mark = cursor
        exp = bytearray([byte])
        cursor += 1
        proc.consume()
        byte = proc.space.read(cursor, 1)[0]
        if byte in (0x2B, 0x2D):
            exp.append(byte)
            cursor += 1
            proc.consume()
            byte = proc.space.read(cursor, 1)[0]
        exp_digits = False
        while 0x30 <= byte <= 0x39:
            exp_digits = True
            exp.append(byte)
            cursor += 1
            proc.consume()
            byte = proc.space.read(cursor, 1)[0]
        if exp_digits:
            text.extend(exp)
        else:
            cursor = mark
    if not seen_digits:
        return (0.0, nptr)
    del start
    return (float(text.decode()), cursor)
