"""Multi-fault adversarial campaigns: corpus × presets × k-fault space.

The single-fault chaos harness asks "does the wrapped app survive *this*
fault"; the scored attack corpus asks "does the preset contain *this*
exploit".  A :class:`ChaosCampaign` composes both: every corpus attack
runs under every selected preset while a seed-deterministic
:class:`~repro.chaos.multifault.KFaultPlan` injects k ∈ {1..kmax}
substrate faults into the same run.  The k-fault space is pruned by
:class:`~repro.chaos.multifault.SpacePruner` (equivalence classes over
fault sites + domination by escaping singletons) and executed through
the same hardened :class:`~repro.injection.pool.UnitPool` the probe
executor uses — watchdog, dead-worker requeue, live incident stream.

Every record is replayable: ``(attack, preset, seed, trial, k-set)``
reconstructs the exact payload, wrapper deployment and fault schedule,
and :meth:`ChaosCampaign.replay` re-executes one record from just that
tuple (the determinism witness the benchmark asserts on).  Finished
cells land in a fingerprint-gated :class:`~repro.chaos.cache.TrialCache`
so an interrupted campaign resumes without re-executing them; hung
(watchdog-killed) cells are never cached.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import Executor, Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.chaos.cache import CachedTrial, TrialCache, TrialKey
from repro.chaos.injector import ChaosInjector
from repro.chaos.multifault import KFaultPlan, PruneStats, SpacePruner
from repro.chaos.plan import SITES
from repro.injection.pool import PoolStats, UnitPool
from repro.libc import LibcRegistry
from repro.robust.api import RobustAPIDocument
from repro.runtime import SimProcess
from repro.security.corpus import (
    CORPUS,
    PRESET_CONFIGS,
    Attack,
    PresetConfig,
    run_attack,
)
from repro.telemetry import AttackEvent, EscapeEvent, Sink

#: campaign backends (the corpus closures are not process-portable)
CAMPAIGN_BACKENDS = ("serial", "thread")

#: the presets a campaign scores by default (the wrapped deployments)
DEFAULT_PRESETS = ("security", "robustness", "hardened", "recovery")


class _SerialExecutor(Executor):
    """An inline Executor so the serial path shares the UnitPool loop."""

    def submit(self, fn, /, *args, **kwargs) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 — mirrored to caller
            future.set_exception(exc)
        return future


@dataclass(frozen=True)
class AdversarialUnit:
    """One executable cell: attack × preset × trial × k-set."""

    attack: str
    preset: str
    seed: int
    trial: int
    kset: Tuple[str, ...]

    def key(self) -> TrialKey:
        return TrialKey(attack=self.attack, preset=self.preset,
                        seed=self.seed, trial=self.trial, kset=self.kset)

    def label(self) -> str:
        return self.key().label()


@dataclass
class AdversarialRecord:
    """Outcome of one cell (replayable from its identity fields)."""

    attack: str
    attack_class: str
    app: str
    preset: str
    seed: int
    trial: int
    kset: Tuple[str, ...]
    verdict: str
    status: Optional[int]
    exception: str
    #: substrate faults that actually fired, in injection order
    faults: Tuple[Tuple[str, int], ...]
    recoveries: Dict[str, int]
    cached: bool = False

    @property
    def k(self) -> int:
        return len(self.kset)

    @property
    def escaped(self) -> bool:
        return self.verdict == "escaped"

    def replay_witness(self) -> dict:
        """Everything needed to reproduce this exact run."""
        return {
            "attack": self.attack,
            "preset": self.preset,
            "seed": self.seed,
            "trial": self.trial,
            "k": self.k,
            "kset": list(self.kset),
        }

    def to_dict(self) -> dict:
        return {
            "attack": self.attack,
            "attack_class": self.attack_class,
            "app": self.app,
            "preset": self.preset,
            "seed": self.seed,
            "trial": self.trial,
            "kset": list(self.kset),
            "k": self.k,
            "verdict": self.verdict,
            "status": self.status,
            "exception": self.exception,
            "faults": [list(fault) for fault in self.faults],
            "recoveries": dict(self.recoveries),
            "cached": self.cached,
        }


@dataclass
class AdversarialReport:
    """Outcome of one adversarial campaign."""

    records: List[AdversarialRecord] = field(default_factory=list)
    prune: PruneStats = field(default_factory=PruneStats)
    pool: PoolStats = field(default_factory=PoolStats)
    cache_hits: int = 0

    def matrix(self) -> Dict[str, Dict[str, Dict[str, int]]]:
        """preset -> attack class -> verdict -> count."""
        table: Dict[str, Dict[str, Dict[str, int]]] = {}
        for record in self.records:
            cell = (table.setdefault(record.preset, {})
                    .setdefault(record.attack_class, {}))
            cell[record.verdict] = cell.get(record.verdict, 0) + 1
        return table

    def escapes(self) -> List[AdversarialRecord]:
        return [record for record in self.records if record.escaped]

    def containment_rate(self, preset: str,
                         k: Optional[int] = None) -> float:
        """Fraction of ``preset`` cells (optionally one k) not escaped."""
        rows = [r for r in self.records if r.preset == preset
                and (k is None or r.k == k)]
        if not rows:
            return 1.0
        return sum(not r.escaped for r in rows) / len(rows)

    def to_dict(self) -> dict:
        return {
            "matrix": self.matrix(),
            "prune": self.prune.to_dict(),
            "records": [record.to_dict() for record in self.records],
            "escapes": [record.replay_witness()
                        for record in self.escapes()],
            "cache_hits": self.cache_hits,
            "pool": {
                "worker_failures": self.pool.worker_failures,
                "requeued": self.pool.requeued,
                "watchdog_timeouts": self.pool.watchdog_timeouts,
                "lost_units": self.pool.lost_units,
            },
        }


class ChaosCampaign:
    """Corpus × presets × pruned k-fault schedules, drained in parallel.

    Protocol per (attack, preset, seed, trial) cell group:

    1. all k=1 singletons run (one per fault site);
    2. their outcome signatures feed a :class:`SpacePruner`: sites with
       identical signatures collapse to one representative, and any
       singleton that already escaped dominates (= witnesses) every
       superset containing its site;
    3. only the surviving k≥2 sets run.

    Phases 1 and 3 each drain through one hardened :class:`UnitPool`
    across *all* cell groups at once, so parallel workers stay busy
    regardless of how unevenly pruning shrinks individual groups.
    """

    def __init__(
        self,
        registry: LibcRegistry,
        api: Optional[RobustAPIDocument],
        attacks: Optional[Sequence[Attack]] = None,
        presets: Sequence[str] = DEFAULT_PRESETS,
        seeds: Sequence[int] = (2003,),
        trials: int = 2,
        kmax: int = 3,
        #: low by default: fault indices must land inside the few dozen
        #: substrate calls an attack run actually makes, or no k-set
        #: ever fires and the whole space collapses to one class
        horizon: int = 6,
        backend: str = "compiled",
        exec_backend: str = "serial",
        jobs: int = 2,
        watchdog: Optional[float] = None,
        unit_retries: int = 2,
        cache: Optional[TrialCache] = None,
        sinks: Sequence[Sink] = (),
        on_incident: Optional[Callable[[str], None]] = None,
    ):
        if exec_backend not in CAMPAIGN_BACKENDS:
            raise ValueError(
                f"unknown campaign backend {exec_backend!r}; "
                f"known: {', '.join(CAMPAIGN_BACKENDS)}"
            )
        unknown = [name for name in presets if name not in PRESET_CONFIGS]
        if unknown:
            raise ValueError(f"unknown presets: {', '.join(unknown)}")
        self.registry = registry
        self.api = api
        self.attacks = list(attacks) if attacks is not None else list(CORPUS)
        self.presets = tuple(presets)
        self.seeds = tuple(seeds)
        self.trials = trials
        self.kmax = kmax
        self.horizon = horizon
        self.backend = backend
        self.exec_backend = exec_backend
        self.jobs = max(1, jobs)
        self.watchdog = watchdog
        self.unit_retries = unit_retries
        self.cache = cache
        self.sinks = list(sinks)
        self.on_incident = on_incident
        self._by_name = {attack.name: attack for attack in self.attacks}

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    def fingerprint(self) -> str:
        """Content hash every cached verdict is gated on."""
        digest = hashlib.sha256()
        payload = {
            "registry": self.registry.fingerprint(),
            "attacks": {attack.name:
                        hashlib.sha256(attack.payload()).hexdigest()
                        for attack in self.attacks},
            "presets": list(self.presets),
            "seeds": list(self.seeds),
            "trials": self.trials,
            "kmax": self.kmax,
            "horizon": self.horizon,
            "backend": self.backend,
        }
        digest.update(json.dumps(payload, sort_keys=True).encode())
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # one cell
    # ------------------------------------------------------------------

    def execute_unit(self, unit: AdversarialUnit) -> AdversarialRecord:
        """Run one attack under one preset with the unit's fault set."""
        attack = self._by_name[unit.attack]
        preset = PRESET_CONFIGS[unit.preset]
        plan = KFaultPlan.for_sites(unit.seed, unit.trial, unit.kset,
                                    horizon=self.horizon)
        injector = ChaosInjector(plan.to_plan(horizon=self.horizon))
        process = SimProcess(**attack.process_kwargs)
        injector.arm_heap(process.heap)
        injector.arm_filesystem(process.fs)
        run = run_attack(attack, preset, self.registry, self.api,
                         backend=self.backend, process=process)
        return AdversarialRecord(
            attack=attack.name,
            attack_class=attack.attack_class,
            app=attack.app.name,
            preset=preset.name,
            seed=unit.seed,
            trial=unit.trial,
            kset=unit.kset,
            verdict=run.verdict,
            status=run.status,
            exception=run.exception,
            faults=tuple(injector.event_log()),
            recoveries=dict(run.recoveries),
        )

    def replay(self, witness: dict) -> AdversarialRecord:
        """Re-execute one record from its replay witness (cache-free)."""
        unit = AdversarialUnit(
            attack=str(witness["attack"]),
            preset=str(witness["preset"]),
            seed=int(witness["seed"]),
            trial=int(witness["trial"]),
            kset=tuple(str(site) for site in witness["kset"]),
        )
        return self.execute_unit(unit)

    # ------------------------------------------------------------------
    # the campaign
    # ------------------------------------------------------------------

    @staticmethod
    def _signature(record: AdversarialRecord) -> Tuple:
        """The singleton outcome signature equivalence classes use.

        Site names are erased (that is what is being classified); what
        remains is observable behaviour: verdict, exception, exit
        status, the invocation indices that actually fired and the
        recovery actions taken.
        """
        return (
            record.verdict,
            record.exception,
            record.status,
            tuple(index for _site, index in record.faults),
            tuple(sorted(record.recoveries.items())),
        )

    def _pool_factory(self) -> Executor:
        if self.exec_backend == "thread":
            return ThreadPoolExecutor(max_workers=self.jobs)
        return _SerialExecutor()

    def _drain(self, units: List[AdversarialUnit],
               report: AdversarialReport,
               sink: Dict[TrialKey, AdversarialRecord]) -> None:
        """Run every unit (cache-aware) through one hardened pool pass."""
        fresh: List[AdversarialUnit] = []
        for unit in units:
            cached = self.cache.lookup(unit.key()) if self.cache else None
            if cached is not None:
                record = self._record_from_cache(unit, cached)
                report.cache_hits += 1
                self._absorb(record, report, sink)
            else:
                fresh.append(unit)
        if not fresh:
            return

        def on_result(unit: AdversarialUnit,
                      record: AdversarialRecord) -> None:
            if self.cache is not None:
                self.cache.record(unit.key(), CachedTrial(
                    verdict=record.verdict,
                    status=record.status,
                    exception=record.exception,
                    faults=record.faults,
                    recoveries=dict(record.recoveries),
                ))
            self._absorb(record, report, sink)

        def on_timeout(unit: AdversarialUnit) -> str:
            # synthesized, not observed — never cached, so a resumed
            # campaign re-executes the cell
            attack = self._by_name[unit.attack]
            self._absorb(AdversarialRecord(
                attack=attack.name,
                attack_class=attack.attack_class,
                app=attack.app.name,
                preset=unit.preset,
                seed=unit.seed,
                trial=unit.trial,
                kset=unit.kset,
                verdict="hang",
                status=None,
                exception="Hang",
                faults=(),
                recoveries={},
            ), report, sink)
            return "cell classified HANG (not cached)"

        pool = UnitPool(
            self._pool_factory,
            self.execute_unit,
            watchdog=self.watchdog,
            unit_retries=self.unit_retries,
            describe=lambda unit: unit.label(),
            on_incident=self.on_incident,
        )
        pool.drain(fresh, on_result, on_timeout)
        report.pool.worker_failures += pool.stats.worker_failures
        report.pool.requeued += pool.stats.requeued
        report.pool.watchdog_timeouts += pool.stats.watchdog_timeouts
        report.pool.lost_units += pool.stats.lost_units
        report.pool.incidents.extend(pool.stats.incidents)

    def _record_from_cache(self, unit: AdversarialUnit,
                           cached: CachedTrial) -> AdversarialRecord:
        attack = self._by_name[unit.attack]
        return AdversarialRecord(
            attack=attack.name,
            attack_class=attack.attack_class,
            app=attack.app.name,
            preset=unit.preset,
            seed=unit.seed,
            trial=unit.trial,
            kset=unit.kset,
            verdict=cached.verdict,
            status=cached.status,
            exception=cached.exception,
            faults=cached.faults,
            recoveries=dict(cached.recoveries),
            cached=True,
        )

    def _absorb(self, record: AdversarialRecord,
                report: AdversarialReport,
                sink: Dict[TrialKey, AdversarialRecord]) -> None:
        report.records.append(record)
        sink[TrialKey(attack=record.attack, preset=record.preset,
                      seed=record.seed, trial=record.trial,
                      kset=record.kset)] = record
        events: List = [AttackEvent(
            attack=record.attack, attack_class=record.attack_class,
            preset=record.preset, app=record.app, verdict=record.verdict,
        )]
        if record.escaped:
            events.append(EscapeEvent(
                attack=record.attack, preset=record.preset,
                app=record.app, seed=record.seed, trial=record.trial,
                k=record.k, faults=record.faults,
            ))
        for sink_ in self.sinks:
            sink_.handle_batch(events)

    def run(self) -> AdversarialReport:
        """Execute the pruned space: singletons, prune, survivors."""
        report = AdversarialReport()
        outcomes: Dict[TrialKey, AdversarialRecord] = {}

        groups = [
            (attack, preset, seed, trial)
            for attack in self.attacks
            for preset in self.presets
            for seed in self.seeds
            for trial in range(self.trials)
        ]

        # phase 1: every singleton of every cell group, one pool pass
        singletons = [
            AdversarialUnit(attack=attack.name, preset=preset, seed=seed,
                            trial=trial, kset=(site,))
            for attack, preset, seed, trial in groups
            for site in SITES
        ]
        self._drain(singletons, report, outcomes)

        # phase 2 (barrier): prune each group on its singleton outcomes
        survivors: List[AdversarialUnit] = []
        for attack, preset, seed, trial in groups:
            pruner = SpacePruner(sites=SITES, kmax=self.kmax)
            for site in SITES:
                key = TrialKey(attack=attack.name, preset=preset,
                               seed=seed, trial=trial, kset=(site,))
                record = outcomes.get(key)
                if record is None:  # lost/hung singleton: assume unique
                    pruner.observe(site, ("lost", site), escaped=False)
                    continue
                pruner.observe(site, self._signature(record),
                               escaped=record.escaped)
            survivors.extend(
                AdversarialUnit(attack=attack.name, preset=preset,
                                seed=seed, trial=trial, kset=kset)
                for kset in pruner.surviving_ksets()
            )
            report.prune.merge(pruner.stats)

        # phase 3: the surviving k>=2 sets, one pool pass
        self._drain(survivors, report, outcomes)
        return report
