"""Arming a :class:`~repro.chaos.plan.ChaosPlan` against the substrate.

The injector owns one call counter per site, consults the plan on every
tick, and keeps an ordered event log of the faults that actually fired —
``(site, call_index)`` pairs in injection order.  The log is the
determinism witness: two runs of the same plan over the same workload
must produce identical logs, whatever wrapper backend executed between
the ticks.

Injection points:

* :meth:`arm_heap` — allocator OOM (``malloc`` returns NULL with the
  failure counted) and heap-clobber (one byte written past a fresh
  allocation — landing on the canary when canaries are on, which is
  exactly what the repair path must detect and heal);
* :meth:`arm_filesystem` — read/write I/O errors on file streams;
* :meth:`wrap_transport` — connection resets and slow peers around the
  collection client's ``submit_documents``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Tuple

from repro.chaos.plan import ChaosPlan
from repro.memory.heap import HeapAllocator
from repro.runtime.filesystem import SimFileSystem

#: seconds a "slow peer" fault stalls the transport; long enough to be
#: visible in latency metrics, short enough for test suites
SLOW_PEER_SECONDS = 0.01


class ChaosInjector:
    """Per-run fault state: counters, the plan, and the event log."""

    def __init__(self, plan: ChaosPlan):
        self.plan = plan
        self._wanted: Dict[str, frozenset] = {
            site: frozenset(hits) for site, hits in plan.schedule.items()
        }
        self._counts: Dict[str, int] = {}
        #: ordered (site, call_index) log of faults that fired
        self.events: List[Tuple[str, int]] = []

    def should_fault(self, site: str) -> bool:
        """Tick the site's counter; True when this call is scheduled."""
        count = self._counts.get(site, 0)
        self._counts[site] = count + 1
        if count in self._wanted.get(site, ()):
            self.events.append((site, count))
            return True
        return False

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------

    def arm_heap(self, heap: HeapAllocator) -> None:
        """Install allocator OOM + post-allocation clobber faults."""
        heap.fault_hook = lambda: self.should_fault("alloc-oom")

        def clobber(user: int, size: int) -> None:
            if self.should_fault("heap-clobber"):
                end = user + size
                if heap.mapping.contains(end, 1):
                    heap.space.write(end, b"\x5a")

        heap.post_alloc_hook = clobber

    def arm_filesystem(self, fs: SimFileSystem) -> None:
        """Install I/O error faults on file-stream reads and writes."""
        fs.fault_hook = (
            lambda op, index: self.should_fault(f"fs-{op}")
        )

    def wrap_transport(self, base: Callable) -> Callable:
        """A chaos-wrapped collection transport.

        ``net-reset`` raises :class:`ConnectionResetError` (an OSError,
        so the collection sink's retry logic engages); ``net-slow``
        stalls briefly before delegating.
        """
        def transport(address, xml_texts, timeout: float = 5.0):
            if self.should_fault("net-reset"):
                raise ConnectionResetError(
                    "chaos: connection reset by peer"
                )
            if self.should_fault("net-slow"):
                time.sleep(SLOW_PEER_SECONDS)
            return base(address, xml_texts, timeout)

        return transport

    def arm_fabric(self, client) -> None:
        """Aim ``net-reset`` / ``net-slow`` at a fabric shipper.

        The :class:`~repro.collection.fabric.FabricClient` consults its
        ``fault_hook`` before every send attempt: ``net-reset`` tears
        the connection down mid-stream (the client resends un-acked
        sequenced frames, which the server dedups), ``net-slow`` stalls
        the shipper — exactly the conditions the fabric's zero-loss /
        exactly-once contract must hold under.
        """
        client.fault_hook = self.should_fault

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def calls_seen(self, site: str) -> int:
        return self._counts.get(site, 0)

    def event_log(self) -> List[Tuple[str, int]]:
        return list(self.events)
