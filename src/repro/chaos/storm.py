"""Rate-ramped fault storms against live serving traffic.

A storm is a *request-indexed* chaos schedule: where the batch chaos
harness derives one :class:`~repro.chaos.plan.ChaosPlan` per trial, a
:class:`StormSchedule` derives one plan per **request** of a serving
stream, with the per-call fault rate swept through named phases (calm,
ramp, peak, cooldown).  Every per-request plan is a pure function of
``(seed, trial, request_index)`` through the same
:func:`~repro.chaos.plan.trial_seed` arithmetic the k-fault campaigns
use — so any single request's faults replay from a three-integer
witness, independently of the rest of the storm.

Serving storms default to the heap sites only: the simulated
filesystem's fault hook deliberately exempts the standard streams
(indices 0–2), and a request-per-line server app touches nothing else,
so ``fs-read``/``fs-write`` faults would tick counters without ever
landing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.chaos.plan import ChaosPlan, trial_seed

#: sites a serving storm arms by default — the heap is the only
#: substrate a request-per-line app exercises that can actually fault
#: (std streams are exempt from the filesystem fault hook)
SERVING_SITES = ("alloc-oom", "heap-clobber")

#: call-index horizon per request; server handlers make a handful of
#: allocator calls per request, so a short horizon loses nothing
REQUEST_HORIZON = 8


@dataclass(frozen=True)
class StormPhase:
    """One contiguous slice of the stream at a constant fault rate.

    ``start``/``end`` are fractions of the stream length, half-open
    ``[start, end)``; ``rate`` is the per-call-index fault probability
    fed to :meth:`ChaosPlan.generate` for requests inside the phase.
    """

    name: str
    start: float
    end: float
    rate: float

    def covers(self, fraction: float) -> bool:
        return self.start <= fraction < self.end


#: the default storm shape: a calm lead-in, a ramp, a hot peak, and a
#: cooldown tail — fault effects must not outlive the peak
DEFAULT_PHASES: Tuple[StormPhase, ...] = (
    StormPhase("calm", 0.0, 0.2, 0.0),
    StormPhase("ramp", 0.2, 0.4, 0.08),
    StormPhase("peak", 0.4, 0.7, 0.25),
    StormPhase("cooldown", 0.7, 1.0, 0.03),
)


@dataclass
class StormSchedule:
    """A seed-deterministic, request-indexed fault storm.

    The schedule never materializes every plan up front —
    :meth:`plan_for` derives request ``i``'s plan on demand, and
    :meth:`witness` packages the three integers (plus generation
    parameters) that reproduce it anywhere.
    """

    seed: int
    trial: int = 0
    requests: int = 400
    phases: Tuple[StormPhase, ...] = DEFAULT_PHASES
    sites: Tuple[str, ...] = SERVING_SITES
    horizon: int = REQUEST_HORIZON
    _plan_cache: Dict[int, Optional[ChaosPlan]] = field(
        default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError("a storm needs at least one request")
        self.phases = tuple(self.phases)
        self.sites = tuple(self.sites)

    # ------------------------------------------------------------------
    # per-request derivation
    # ------------------------------------------------------------------

    def phase_at(self, index: int) -> StormPhase:
        """The phase covering request ``index`` (last phase as catch-all)."""
        fraction = index / self.requests
        for phase in self.phases:
            if phase.covers(fraction):
                return phase
        return self.phases[-1]

    def rate_at(self, index: int) -> float:
        return self.phase_at(index).rate

    def request_seed(self, index: int) -> int:
        """The derived seed for request ``index`` — the witness core."""
        return trial_seed(self.seed, self.trial, k=index)

    def plan_for(self, index: int) -> Optional[ChaosPlan]:
        """Request ``index``'s fault plan; None inside a zero-rate phase."""
        if index in self._plan_cache:
            return self._plan_cache[index]
        rate = self.rate_at(index)
        plan = None
        if rate > 0.0:
            plan = ChaosPlan.generate(
                self.request_seed(index), sites=self.sites,
                horizon=self.horizon, rate=rate,
            )
        self._plan_cache[index] = plan
        return plan

    def total_faults(self) -> int:
        """Scheduled fault count across the whole storm (for reports)."""
        return sum(
            plan.total_faults()
            for index in range(self.requests)
            if (plan := self.plan_for(index)) is not None
        )

    # ------------------------------------------------------------------
    # witnesses: one request's faults from three integers
    # ------------------------------------------------------------------

    def witness(self, index: int) -> dict:
        """Everything needed to replay request ``index``'s plan."""
        return {
            "seed": self.seed,
            "trial": self.trial,
            "request_index": index,
            "rate": self.rate_at(index),
            "sites": list(self.sites),
            "horizon": self.horizon,
        }

    @staticmethod
    def replay_witness(witness: dict) -> Optional[ChaosPlan]:
        """Reconstruct a per-request plan from its witness dict."""
        rate = float(witness["rate"])
        if rate <= 0.0:
            return None
        derived = trial_seed(int(witness["seed"]), int(witness["trial"]),
                             k=int(witness["request_index"]))
        return ChaosPlan.generate(
            derived, sites=tuple(witness["sites"]),
            horizon=int(witness["horizon"]), rate=rate,
        )

    # ------------------------------------------------------------------
    # round trip
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "trial": self.trial,
            "requests": self.requests,
            "sites": list(self.sites),
            "horizon": self.horizon,
            "phases": [
                {"name": p.name, "start": p.start, "end": p.end,
                 "rate": p.rate}
                for p in self.phases
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StormSchedule":
        return cls(
            seed=int(data["seed"]),
            trial=int(data.get("trial", 0)),
            requests=int(data.get("requests", 400)),
            phases=tuple(
                StormPhase(name=str(p["name"]), start=float(p["start"]),
                           end=float(p["end"]), rate=float(p["rate"]))
                for p in data.get("phases", [])
            ) or DEFAULT_PHASES,
            sites=tuple(data.get("sites", SERVING_SITES)),
            horizon=int(data.get("horizon", REQUEST_HORIZON)),
        )


def flat_storm(seed: int, requests: int, rate: float,
               trial: int = 0, sites: Sequence[str] = SERVING_SITES,
               horizon: int = REQUEST_HORIZON) -> StormSchedule:
    """A single-phase storm at one constant rate (tests, probes)."""
    return StormSchedule(
        seed=seed, trial=trial, requests=requests,
        phases=(StormPhase("flat", 0.0, 1.0, rate),),
        sites=tuple(sites), horizon=horizon,
    )
