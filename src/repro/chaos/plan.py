"""Seed-deterministic fault plans.

A :class:`ChaosPlan` decides, ahead of time, which invocations of each
injection *site* fail: the plan maps a site name to the sorted call
indices that fault.  Because the whole schedule derives from one integer
seed through :class:`random.Random`, a campaign is replayable — the same
seed yields byte-identical schedules across runs, platforms and wrapper
backends — and shippable: :meth:`to_dict`/:meth:`from_dict` round-trip a
plan through JSON so a failing trial can be filed and re-executed
verbatim.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

#: the injection sites the toolkit substrate exposes
SITES = (
    "alloc-oom",      # HeapAllocator.malloc returns NULL
    "heap-clobber",   # one byte past a fresh allocation is overwritten
    "fs-read",        # SimFileSystem.read on a file stream errors
    "fs-write",       # SimFileSystem.write on a file stream errors
    "net-reset",      # collection transport raises ConnectionResetError
    "net-slow",       # collection transport stalls briefly (slow peer)
)


def trial_seed(seed: int, trial: int, k: Optional[int] = None) -> int:
    """Per-trial (and optionally per-cardinality) derived seed.

    The base derivation ``seed * 1_000_003 + trial`` is kept verbatim for
    ``k=None`` so historical schedules replay unchanged.  When ``k`` is
    given it is mixed in *multiplicatively* — ``base * 1_000_033 + k`` —
    so two different ``(trial, k)`` pairs can only collide when trial
    indices diverge by more than a million, far past any campaign size.
    """
    base = seed * 1_000_003 + trial
    if k is None:
        return base
    return base * 1_000_033 + k


@dataclass
class ChaosPlan:
    """One replayable fault schedule: site -> faulting call indices."""

    seed: int
    schedule: Dict[str, Tuple[int, ...]] = field(default_factory=dict)
    #: call indices beyond the horizon never fault
    horizon: int = 200
    #: per-call fault probability used at generation time
    rate: float = 0.1

    @classmethod
    def generate(cls, seed: int, sites: Sequence[str] = SITES,
                 horizon: int = 200, rate: float = 0.1) -> "ChaosPlan":
        """Derive a schedule from a seed.

        Sites are drawn in their given (stable) order so the schedule is
        a pure function of ``(seed, sites, horizon, rate)``.
        """
        rng = random.Random(seed)
        schedule = {
            site: tuple(
                index for index in range(horizon) if rng.random() < rate
            )
            for site in sites
        }
        return cls(seed=seed, schedule=schedule, horizon=horizon, rate=rate)

    @classmethod
    def for_trial(cls, seed: int, trial: int,
                  sites: Sequence[str] = SITES, horizon: int = 200,
                  rate: float = 0.1,
                  k: Optional[int] = None) -> "ChaosPlan":
        """The plan for trial ``trial`` of a campaign seeded ``seed``.

        Per-trial seeds are derived by integer arithmetic (not hashing),
        so the derivation itself is stable across interpreter runs.

        ``k`` selects a fault-cardinality stream for the multi-fault
        campaigns: without mixing it in, the k=1 and k=2 plans at the
        same trial index would share their fault prefixes (the same
        ``random.Random`` stream drawn in the same order), so escapes
        found at k=2 would never be independent evidence.  Plans that
        predate the k-fault campaigns pass ``k=None`` and keep the
        original derivation byte-identical.
        """
        return cls.generate(trial_seed(seed, trial, k), sites=sites,
                            horizon=horizon, rate=rate)

    def faults_at(self, site: str) -> Tuple[int, ...]:
        return self.schedule.get(site, ())

    def total_faults(self) -> int:
        return sum(len(hits) for hits in self.schedule.values())

    # ------------------------------------------------------------------
    # replay round trip
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "horizon": self.horizon,
            "rate": self.rate,
            "schedule": {site: list(hits)
                         for site, hits in sorted(self.schedule.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosPlan":
        return cls(
            seed=int(data["seed"]),
            schedule={site: tuple(int(i) for i in hits)
                      for site, hits in data.get("schedule", {}).items()},
            horizon=int(data.get("horizon", 200)),
            rate=float(data.get("rate", 0.1)),
        )
