"""The chaos harness: fault-inject the toolkit's own substrate.

Each trial builds a fresh wrapped system (process, linker, preloaded
wrapper library), arms a seed-derived :class:`ChaosPlan` against the
heap allocator and filesystem, runs one of the demo applications, and
records whether the application *survived* — no simulator fault escaped
to the top — together with the exact fault log and the recovery actions
the wrappers took.

Because every source of variation is seeded (the plan) or rebuilt per
trial (the process and wrapper state), a campaign is a pure function of
``(seed, policy, backend)``: the regression suite asserts the full
event stream is identical across repeated runs and across the
compiled/interpreted wrapper backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps import (
    CSVSTAT,
    KVD,
    MSGFORMAT,
    WORDCOUNT,
    SimApp,
    run_app,
    standard_files,
)
from repro.chaos.injector import ChaosInjector
from repro.chaos.plan import ChaosPlan
from repro.libc import LibcRegistry
from repro.linker import DynamicLinker, SharedLibrary
from repro.recovery import self_healing_policy
from repro.robust.api import RobustAPIDocument
from repro.runtime import SimProcess
from repro.security.policy import SecurityPolicy
from repro.telemetry import MetricsSink
from repro.wrappers import RECOVERY, WrapperFactory, WrapperSpec
from repro.wrappers.presets import default_generator_registry


@dataclass
class ChaosScenario:
    """One demo workload the harness can aim faults at."""

    app: SimApp
    argv: List[str] = field(default_factory=list)
    stdin: bytes = b""
    files: Dict[str, bytes] = field(default_factory=dict)


def standard_scenarios() -> Dict[str, ChaosScenario]:
    """The demo workloads (mirroring the app test suite's shapes)."""
    return {
        "wordcount": ChaosScenario(
            app=WORDCOUNT, argv=["/data/sample.txt"],
            files=standard_files(),
        ),
        "csvstat": ChaosScenario(
            app=CSVSTAT, argv=["/data/values.csv"],
            files=standard_files(),
        ),
        "msgformat": ChaosScenario(
            app=MSGFORMAT, stdin=b"ECHO hi\nADD 40 2\nQUIT\n",
        ),
        # the serving anchor app, driven run-to-EOF: faults can land
        # mid-request with live heap state (stored keys and values)
        "kvd": ChaosScenario(
            app=KVD,
            stdin=(b"SET alpha one\nSET beta twenty-two\nGET alpha\n"
                   b"GET beta\nGET missing\nDEL alpha\nGET alpha\nQUIT\n"),
        ),
    }


@dataclass
class TrialOutcome:
    """One application run under one fault plan."""

    app: str
    trial: int
    plan_seed: int
    survived: bool
    status: Optional[int]
    exception: str = ""
    #: faults that actually fired, in injection order
    faults: List[Tuple[str, int]] = field(default_factory=list)
    #: recovery actions taken, by action name
    recoveries: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "trial": self.trial,
            "plan_seed": self.plan_seed,
            "survived": self.survived,
            "status": self.status,
            "exception": self.exception,
            "faults": [list(fault) for fault in self.faults],
            "recoveries": dict(self.recoveries),
        }


@dataclass
class ChaosReport:
    """Outcome of one chaos campaign."""

    seed: int
    trials: List[TrialOutcome] = field(default_factory=list)

    @property
    def containment_rate(self) -> float:
        """Fraction of trials the application survived."""
        if not self.trials:
            return 1.0
        return sum(t.survived for t in self.trials) / len(self.trials)

    def faults_fired(self) -> int:
        return sum(len(t.faults) for t in self.trials)

    def event_log(self) -> List[Tuple[str, int, str, int]]:
        """Ordered (app, trial, site, call_index) determinism witness."""
        return [
            (t.app, t.trial, site, index)
            for t in self.trials for site, index in t.faults
        ]

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "containment_rate": self.containment_rate,
            "faults_fired": self.faults_fired(),
            "trials": [t.to_dict() for t in self.trials],
        }


class ChaosHarness:
    """Seed-deterministic chaos campaigns over the demo applications."""

    def __init__(
        self,
        registry: LibcRegistry,
        api: Optional[RobustAPIDocument] = None,
        policy: Optional[SecurityPolicy] = None,
        spec: WrapperSpec = RECOVERY,
        backend: str = "compiled",
        seed: int = 0,
        horizon: int = 200,
        rate: float = 0.05,
        scenarios: Optional[Dict[str, ChaosScenario]] = None,
    ):
        self.registry = registry
        self.api = api
        self.policy = policy if policy is not None else SecurityPolicy(
            recovery=self_healing_policy()
        )
        self.spec = spec
        self.backend = backend
        self.seed = seed
        self.horizon = horizon
        self.rate = rate
        self.scenarios = (scenarios if scenarios is not None
                          else standard_scenarios())

    # ------------------------------------------------------------------

    def run_trial(self, name: str, trial: int) -> TrialOutcome:
        """One app run under the trial's derived fault plan."""
        scenario = self.scenarios[name]
        plan = ChaosPlan.for_trial(self.seed, trial,
                                   horizon=self.horizon, rate=self.rate)
        injector = ChaosInjector(plan)

        # a fresh process and wrapper library per trial: wrapper state
        # (the size table) must not alias heap addresses across runs
        process = SimProcess(heap_canaries=True)
        injector.arm_heap(process.heap)
        injector.arm_filesystem(process.fs)

        linker = DynamicLinker()
        linker.add_library(SharedLibrary.from_registry(self.registry))
        metrics = MetricsSink()
        factory = WrapperFactory(
            self.registry, self.api,
            generators=default_generator_registry(self.policy),
        )
        built = factory.preload(linker, self.spec, backend=self.backend,
                                sinks=[metrics])
        result = run_app(scenario.app, linker, argv=list(scenario.argv),
                         stdin=scenario.stdin, files=dict(scenario.files),
                         process=process)
        built.bus.flush()
        return TrialOutcome(
            app=name,
            trial=trial,
            plan_seed=plan.seed,
            survived=result.exception is None,
            status=result.status,
            exception=(type(result.exception).__name__
                       if result.exception is not None else ""),
            faults=injector.event_log(),
            recoveries={action: count for action, count
                        in sorted(metrics.recoveries.items())},
        )

    def run(self, trials: int = 5,
            apps: Optional[Sequence[str]] = None) -> ChaosReport:
        """``trials`` fault plans against each selected application."""
        report = ChaosReport(seed=self.seed)
        names = list(apps) if apps is not None else sorted(self.scenarios)
        for name in names:
            for trial in range(trials):
                report.trials.append(self.run_trial(name, trial))
        return report
