"""k-fault schedules and the pruned multi-fault search space.

A single-fault chaos trial answers "does the wrapper contain *this*
fault"; the interesting failures come from fault *combinations* — an
allocator OOM that lands while the heap is already clobbered, an I/O
error during the recovery path of another.  A :class:`KFaultPlan` is a
set of ``(site, invocation-index)`` tuples drawn seed-deterministically
for k ∈ {1, 2, 3}; :func:`enumerate_ksets` spans the naive space and
:class:`SpacePruner` shrinks it with two sound reductions:

* **equivalence classes** — sites whose k=1 trials produce the same
  outcome signature (verdict, faults fired, recovery actions) hit the
  same wrapper/check path, so only one representative per class needs
  k≥2 exploration;
* **domination** — if ``{a}`` already escapes containment, every
  superset containing ``a`` escapes at least as badly; those supersets
  are skipped and the singleton escape stands as the witness.

Both reductions are measured (:class:`PruneStats`) so the benchmark can
assert the fraction of the naive space actually skipped.

Determinism contract: every site draws its invocation index from one
``random.Random`` seeded by :func:`~repro.chaos.plan.trial_seed`, in
stable :data:`~repro.chaos.plan.SITES` order — so the index of site
``a`` is identical whether ``a`` appears alone or inside ``{a, b}``.
That projection property is what makes domination sound: the singleton
really is the k-set minus one fault, not a different schedule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.chaos.plan import SITES, ChaosPlan, trial_seed

#: one scheduled fault: (site name, faulting invocation index)
Fault = Tuple[str, int]


def site_indices(seed: int, trial: int, sites: Sequence[str] = SITES,
                 horizon: int = 200) -> Dict[str, int]:
    """The shared per-site invocation index for one (seed, trial).

    Drawn once per trial in stable site order, so any k-set over these
    sites projects onto its subsets (the domination prerequisite).
    """
    rng = random.Random(trial_seed(seed, trial))
    return {site: rng.randrange(horizon) for site in sites}


@dataclass(frozen=True)
class KFaultPlan:
    """One replayable k-fault schedule."""

    seed: int
    trial: int
    faults: Tuple[Fault, ...]

    @property
    def k(self) -> int:
        return len(self.faults)

    @property
    def sites(self) -> Tuple[str, ...]:
        return tuple(site for site, _ in self.faults)

    @classmethod
    def for_sites(cls, seed: int, trial: int, chosen: Iterable[str],
                  sites: Sequence[str] = SITES,
                  horizon: int = 200) -> "KFaultPlan":
        """The k-set over ``chosen`` sites with the trial's shared indices."""
        indices = site_indices(seed, trial, sites=sites, horizon=horizon)
        ordered = tuple(site for site in sites if site in set(chosen))
        return cls(seed=seed, trial=trial,
                   faults=tuple((site, indices[site]) for site in ordered))

    @classmethod
    def sample(cls, seed: int, trial: int, k: int,
               sites: Sequence[str] = SITES,
               horizon: int = 200) -> "KFaultPlan":
        """A random k-set drawn from the (seed, trial, k)-mixed stream.

        The site choice uses the k-mixed stream (distinct cardinalities
        never share prefixes) while the invocation indices stay the
        trial-shared projection, preserving subset soundness.
        """
        if not 1 <= k <= len(sites):
            raise ValueError(f"k must be in 1..{len(sites)}, got {k}")
        rng = random.Random(trial_seed(seed, trial, k))
        chosen = rng.sample(list(sites), k)
        return cls.for_sites(seed, trial, chosen, sites=sites,
                             horizon=horizon)

    def to_plan(self, horizon: int = 200) -> ChaosPlan:
        """Materialise as a :class:`ChaosPlan` the injector can arm."""
        schedule: Dict[str, Tuple[int, ...]] = {}
        for site, index in self.faults:
            schedule[site] = tuple(sorted(set(schedule.get(site, ())
                                              + (index,))))
        return ChaosPlan(seed=trial_seed(self.seed, self.trial, self.k),
                         schedule=schedule, horizon=horizon, rate=0.0)

    # ------------------------------------------------------------------
    # replay round trip
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "trial": self.trial,
            "k": self.k,
            "faults": [[site, index] for site, index in self.faults],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "KFaultPlan":
        return cls(
            seed=int(data["seed"]),
            trial=int(data["trial"]),
            faults=tuple((str(site), int(index))
                         for site, index in data.get("faults", [])),
        )


def enumerate_ksets(sites: Sequence[str] = SITES,
                    kmax: int = 3) -> List[Tuple[str, ...]]:
    """The naive k-fault space: every site combination for k = 1..kmax."""
    ksets: List[Tuple[str, ...]] = []
    for k in range(1, min(kmax, len(sites)) + 1):
        ksets.extend(combinations(sites, k))
    return ksets


def naive_space_size(n_sites: int, kmax: int) -> int:
    """|naive space| = Σ C(n, k) for k = 1..kmax."""
    from math import comb

    return sum(comb(n_sites, k) for k in range(1, min(kmax, n_sites) + 1))


@dataclass
class PruneStats:
    """Accounting for one pruned multi-fault space."""

    naive: int = 0              #: k-sets in the unpruned space
    executed: int = 0           #: k-sets actually run
    pruned_equivalence: int = 0  #: skipped: only non-representative sites
    pruned_dominated: int = 0    #: skipped: superset of an escaping set
    #: site -> its equivalence-class representative
    classes: Dict[str, str] = field(default_factory=dict)

    @property
    def skipped(self) -> int:
        return self.pruned_equivalence + self.pruned_dominated

    @property
    def skipped_fraction(self) -> float:
        return self.skipped / self.naive if self.naive else 0.0

    def merge(self, other: "PruneStats") -> None:
        self.naive += other.naive
        self.executed += other.executed
        self.pruned_equivalence += other.pruned_equivalence
        self.pruned_dominated += other.pruned_dominated

    def to_dict(self) -> dict:
        return {
            "naive": self.naive,
            "executed": self.executed,
            "pruned_equivalence": self.pruned_equivalence,
            "pruned_dominated": self.pruned_dominated,
            "skipped": self.skipped,
            "skipped_fraction": round(self.skipped_fraction, 4),
        }


#: an outcome signature: everything that distinguishes two singleton
#: trials' observable behaviour (verdict, the faults that actually
#: fired with the site name erased to its *position*, recovery actions)
Signature = Tuple


class SpacePruner:
    """Equivalence-class + domination pruning over one trial's k-space.

    Protocol: run all k=1 singletons, :meth:`observe` each signature,
    then :meth:`surviving_ksets` yields only the k≥2 sets worth running.
    """

    def __init__(self, sites: Sequence[str] = SITES, kmax: int = 3):
        self.sites = tuple(sites)
        self.kmax = kmax
        self._signatures: Dict[str, Signature] = {}
        self._escaping: set = set()
        self.stats = PruneStats(naive=naive_space_size(len(self.sites),
                                                       kmax))

    # ------------------------------------------------------------------

    def observe(self, site: str, signature: Signature,
                escaped: bool) -> None:
        """Record one singleton's outcome signature."""
        self._signatures[site] = signature
        if escaped:
            self._escaping.add(site)
        self.stats.executed += 1

    def representatives(self) -> Dict[str, str]:
        """site -> class representative (first site of the class, in
        stable site order)."""
        by_signature: Dict[Signature, str] = {}
        mapping: Dict[str, str] = {}
        for site in self.sites:
            signature = self._signatures.get(site)
            representative = by_signature.setdefault(signature, site)
            mapping[site] = representative
        self.stats.classes = mapping
        return mapping

    def surviving_ksets(self) -> List[Tuple[str, ...]]:
        """The k≥2 site sets that still need executing.

        A set survives when it consists purely of class representatives
        (anything else re-runs an equivalent schedule) and contains no
        site whose singleton already escaped (dominated: the escape is
        already witnessed by the subset).
        """
        mapping = self.representatives()
        survivors: List[Tuple[str, ...]] = []
        for k in range(2, min(self.kmax, len(self.sites)) + 1):
            for kset in combinations(self.sites, k):
                if any(mapping[site] != site for site in kset):
                    self.stats.pruned_equivalence += 1
                    continue
                if any(site in self._escaping for site in kset):
                    self.stats.pruned_dominated += 1
                    continue
                survivors.append(kset)
        self.stats.executed += len(survivors)
        # sanity: every k-set is accounted for exactly once
        assert (self.stats.executed + self.stats.skipped
                == self.stats.naive), "pruning accounting drifted"
        return survivors
