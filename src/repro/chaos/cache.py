"""Trial-result cache: resumable adversarial campaigns.

An adversarial campaign is a pure function of its configuration — the
corpus payloads, the presets, the seeds and the k-fault space are all
deterministic — so an interrupted or repeated campaign should only
execute the (attack, preset, seed, trial, k-set) cells it has not
finished yet.  The cache keys each cell's verdict by that tuple and is
gated on a campaign **fingerprint** (a content hash over the registry,
the corpus payloads and the campaign parameters): any drift yields a
fresh cache, never stale verdicts.

Watchdog-killed units are deliberately *not* recorded: a hang verdict
is synthesized, not observed, so a resumed campaign must re-execute the
cell.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import asdict, dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class TrialKey:
    """Cache identity of one adversarial cell."""

    attack: str
    preset: str
    seed: int
    trial: int
    kset: Tuple[str, ...]

    def label(self) -> str:
        return (f"{self.attack}|{self.preset}|{self.seed}|{self.trial}|"
                + "+".join(self.kset))


@dataclass
class CachedTrial:
    """One stored cell verdict (everything reporting reads back)."""

    verdict: str
    status: Optional[int]
    exception: str
    faults: Tuple[Tuple[str, int], ...]
    recoveries: Dict[str, int]


class TrialCache:
    """Verdict store for one campaign fingerprint (JSON on disk)."""

    def __init__(self, fingerprint: str = ""):
        self.fingerprint = fingerprint
        self._entries: Dict[TrialKey, CachedTrial] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------

    def lookup(self, key: TrialKey) -> Optional[CachedTrial]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
            return entry

    def record(self, key: TrialKey, entry: CachedTrial) -> None:
        with self._lock:
            self._entries[key] = entry

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def entries(self) -> Dict[TrialKey, CachedTrial]:
        with self._lock:
            return dict(sorted(self._entries.items(),
                               key=lambda item: item[0].label()))

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "fingerprint": self.fingerprint,
            "entries": [
                {"key": {**asdict(key), "kset": list(key.kset)},
                 "value": {**asdict(entry),
                           "faults": [list(f) for f in entry.faults]}}
                for key, entry in self.entries().items()
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "TrialCache":
        payload = json.loads(text)
        cache = cls(fingerprint=str(payload.get("fingerprint", "")))
        for row in payload.get("entries", []):
            raw_key, raw_value = row["key"], row["value"]
            key = TrialKey(
                attack=str(raw_key["attack"]),
                preset=str(raw_key["preset"]),
                seed=int(raw_key["seed"]),
                trial=int(raw_key["trial"]),
                kset=tuple(str(site) for site in raw_key["kset"]),
            )
            entry = CachedTrial(
                verdict=str(raw_value["verdict"]),
                status=(int(raw_value["status"])
                        if raw_value["status"] is not None else None),
                exception=str(raw_value["exception"]),
                faults=tuple((str(site), int(index))
                             for site, index in raw_value["faults"]),
                recoveries={str(k): int(v) for k, v
                            in raw_value["recoveries"].items()},
            )
            cache._entries[key] = entry
        return cache

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "TrialCache":
        with open(path, encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    @classmethod
    def load_or_create(cls, path: str, fingerprint: str) -> "TrialCache":
        """Resume from ``path`` when it matches ``fingerprint``.

        A missing/corrupt file or a fingerprint mismatch yields a fresh
        empty cache.
        """
        if path and os.path.exists(path):
            try:
                cache = cls.load(path)
            except (OSError, ValueError, KeyError):
                return cls(fingerprint=fingerprint)
            if cache.fingerprint == fingerprint:
                return cache
        return cls(fingerprint=fingerprint)
