"""Deterministic chaos engineering for the toolkit substrate.

Seeded fault plans (:class:`ChaosPlan`), their runtime injection into
the allocator / filesystem / collection transport
(:class:`ChaosInjector`), and a harness running the demo applications
under injected faults (:class:`ChaosHarness`) — the toolkit
fault-injecting *itself*, with every run replayable from its seed.
"""

from repro.chaos.cache import CachedTrial, TrialCache, TrialKey
from repro.chaos.campaign import (
    CAMPAIGN_BACKENDS,
    DEFAULT_PRESETS,
    AdversarialRecord,
    AdversarialReport,
    AdversarialUnit,
    ChaosCampaign,
)
from repro.chaos.harness import (
    ChaosHarness,
    ChaosReport,
    ChaosScenario,
    TrialOutcome,
    standard_scenarios,
)
from repro.chaos.injector import ChaosInjector
from repro.chaos.multifault import (
    KFaultPlan,
    PruneStats,
    SpacePruner,
    enumerate_ksets,
    naive_space_size,
    site_indices,
)
from repro.chaos.plan import SITES, ChaosPlan, trial_seed
from repro.chaos.storm import (
    DEFAULT_PHASES,
    REQUEST_HORIZON,
    SERVING_SITES,
    StormPhase,
    StormSchedule,
    flat_storm,
)

__all__ = [
    "AdversarialRecord",
    "AdversarialReport",
    "AdversarialUnit",
    "CAMPAIGN_BACKENDS",
    "CachedTrial",
    "ChaosCampaign",
    "ChaosHarness",
    "ChaosInjector",
    "ChaosPlan",
    "ChaosReport",
    "ChaosScenario",
    "DEFAULT_PHASES",
    "DEFAULT_PRESETS",
    "KFaultPlan",
    "PruneStats",
    "REQUEST_HORIZON",
    "SERVING_SITES",
    "SITES",
    "SpacePruner",
    "StormPhase",
    "StormSchedule",
    "TrialCache",
    "TrialKey",
    "TrialOutcome",
    "enumerate_ksets",
    "flat_storm",
    "naive_space_size",
    "site_indices",
    "standard_scenarios",
    "trial_seed",
]
