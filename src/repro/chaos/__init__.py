"""Deterministic chaos engineering for the toolkit substrate.

Seeded fault plans (:class:`ChaosPlan`), their runtime injection into
the allocator / filesystem / collection transport
(:class:`ChaosInjector`), and a harness running the demo applications
under injected faults (:class:`ChaosHarness`) — the toolkit
fault-injecting *itself*, with every run replayable from its seed.
"""

from repro.chaos.cache import CachedTrial, TrialCache, TrialKey
from repro.chaos.campaign import (
    CAMPAIGN_BACKENDS,
    DEFAULT_PRESETS,
    AdversarialRecord,
    AdversarialReport,
    AdversarialUnit,
    ChaosCampaign,
)
from repro.chaos.harness import (
    ChaosHarness,
    ChaosReport,
    ChaosScenario,
    TrialOutcome,
    standard_scenarios,
)
from repro.chaos.injector import ChaosInjector
from repro.chaos.multifault import (
    KFaultPlan,
    PruneStats,
    SpacePruner,
    enumerate_ksets,
    naive_space_size,
    site_indices,
)
from repro.chaos.plan import SITES, ChaosPlan, trial_seed

__all__ = [
    "AdversarialRecord",
    "AdversarialReport",
    "AdversarialUnit",
    "CAMPAIGN_BACKENDS",
    "CachedTrial",
    "ChaosCampaign",
    "ChaosHarness",
    "ChaosInjector",
    "ChaosPlan",
    "ChaosReport",
    "ChaosScenario",
    "DEFAULT_PRESETS",
    "KFaultPlan",
    "PruneStats",
    "SITES",
    "SpacePruner",
    "TrialCache",
    "TrialKey",
    "TrialOutcome",
    "enumerate_ksets",
    "naive_space_size",
    "site_indices",
    "standard_scenarios",
    "trial_seed",
]
