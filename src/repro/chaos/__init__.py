"""Deterministic chaos engineering for the toolkit substrate.

Seeded fault plans (:class:`ChaosPlan`), their runtime injection into
the allocator / filesystem / collection transport
(:class:`ChaosInjector`), and a harness running the demo applications
under injected faults (:class:`ChaosHarness`) — the toolkit
fault-injecting *itself*, with every run replayable from its seed.
"""

from repro.chaos.harness import (
    ChaosHarness,
    ChaosReport,
    ChaosScenario,
    TrialOutcome,
    standard_scenarios,
)
from repro.chaos.injector import ChaosInjector
from repro.chaos.plan import SITES, ChaosPlan

__all__ = [
    "SITES",
    "ChaosHarness",
    "ChaosInjector",
    "ChaosPlan",
    "ChaosReport",
    "ChaosScenario",
    "TrialOutcome",
    "standard_scenarios",
]
