"""``healers`` — the command-line face of the toolkit.

Mirrors the demonstrations of Section 3 (the paper shows them through a
Web interface; a CLI is the headless equivalent):

* ``healers list-libs``                 — demo 3.1, library browser
* ``healers scan-lib /lib/libc.so.6``   — demo 3.1, function list / XML
* ``healers scan-app /bin/wordcount``   — demo 3.2, application scan
* ``healers inject [--functions …]``    — Fig. 2, fault injection
* ``healers campaign --jobs 4 --resume``— Fig. 2 at scale: parallel,
  cache-backed, resumable injection sweeps
* ``healers derive``                    — Fig. 2, robust API XML
* ``healers derive-checks``             — introspection-derived check
  plans for every wrappable function (full coverage), optionally folding
  in stored campaign verdicts
* ``healers generate security --c``     — Fig. 3, wrapper source
* ``healers profile wordcount``         — demo 3.3, profiling report
* ``healers attack-demo``               — demo 3.4, overflow prevention
* ``healers adversarial --kmax 3``      — scored red-team corpus under
  multi-fault chaos: containment matrix + replayable escapes
* ``healers serve --app kvd``           — serving throughput: drive a
  server app with the deterministic load generator, report requests/sec
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.apps import app_by_name, run_app, standard_files
from repro.core import Healers
from repro.profiling import render_full_report
from repro.serving import MIXES, SERVING_PRESETS
from repro.wrappers import PRESETS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="healers",
        description="HEALERS toolkit (DSN'03 reproduction) over a "
                    "simulated C runtime",
    )
    parser.add_argument(
        "--telemetry", action="append", default=[], metavar="SINK",
        help="attach a telemetry sink (repeatable): jsonl:PATH, "
             "metrics, or collection:HOST:PORT; events from wrappers, "
             "campaigns and shipped documents all flow through it",
    )
    parser.add_argument(
        "--telemetry-batch", type=int, default=256, metavar="N",
        help="events buffered per bus before an inline flush "
             "(default 256)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-libs", help="list all libraries on the system")
    sub.add_parser("list-apps", help="list all applications on the system")

    scan_lib = sub.add_parser("scan-lib", help="scan one shared library")
    scan_lib.add_argument("path")
    scan_lib.add_argument("--xml", action="store_true",
                          help="emit the XML declaration file")

    scan_app = sub.add_parser("scan-app", help="scan one application")
    scan_app.add_argument("path")
    scan_app.add_argument("--html", default="",
                          help="also write the Fig. 4 style HTML page here")

    inject = sub.add_parser("inject", help="run fault-injection experiments")
    inject.add_argument("--functions",
                        help="comma-separated subset (default: all)")
    inject.add_argument("--save", default="",
                        help="store the experiment verdicts as XML here")
    _add_execution_args(inject)

    campaign = sub.add_parser(
        "campaign",
        help="parallel, resumable fault-injection sweep with a "
             "probe-result cache",
    )
    campaign.add_argument("--functions",
                          help="comma-separated subset (default: all)")
    campaign.add_argument("--save", default="",
                          help="store the experiment verdicts as XML here")
    campaign.add_argument("--cache", default="healers-probe-cache.xml",
                          help="probe-result cache file (written after "
                               "the run; loaded first with --resume)")
    campaign.add_argument("--resume", action="store_true",
                          help="reuse cached verdicts; execute only the "
                               "probes not in the cache")
    campaign.add_argument("--progress", action="store_true",
                          help="print live progress while probing")
    campaign.add_argument("--metrics", action="store_true",
                          help="print the telemetry metrics summary "
                               "after the sweep")
    _add_execution_args(campaign, default_jobs=0, default_backend="thread")

    derive = sub.add_parser("derive",
                            help="derive the robust API (runs injection)")
    derive.add_argument("--functions",
                        help="comma-separated subset (default: all)")
    derive.add_argument("--load", default="",
                        help="derive from stored experiments instead of "
                             "running injection")
    derive.add_argument("--xml", action="store_true",
                        help="emit the full XML declaration document")
    _add_execution_args(derive)

    derive_checks = sub.add_parser(
        "derive-checks",
        help="derive introspection check plans for every function "
             "(full coverage; no injection required)",
    )
    derive_checks.add_argument(
        "--load", default="",
        help="fold stored campaign experiments (XML) into the plans")
    derive_checks.add_argument(
        "--xml", action="store_true",
        help="emit the full-coverage XML declaration document "
             "(with <checks> plan nodes)")
    derive_checks.add_argument(
        "--uncovered", action="store_true",
        help="list functions whose plan carries no enforceable check")

    generate = sub.add_parser("generate", help="generate a wrapper library")
    generate.add_argument("preset", choices=sorted(PRESETS))
    generate.add_argument("--functions",
                          help="comma-separated subset (default: all)")
    generate.add_argument("--c", action="store_true",
                          help="print the generated C source (Fig. 3)")

    profile = sub.add_parser("profile",
                             help="run a bundled app under the profiling "
                                  "wrapper and print the report")
    profile.add_argument("app")
    profile.add_argument("--arg", action="append", default=[],
                         dest="app_args", help="argv entry for the app")
    profile.add_argument("--stdin", default="",
                         help="text fed to the app's stdin")
    profile.add_argument("--html", default="",
                         help="also write the Fig. 5 style HTML page here")

    run = sub.add_parser("run", help="run a bundled app, optionally wrapped")
    run.add_argument("app")
    run.add_argument("--wrap", action="append", default=[],
                     choices=sorted(PRESETS),
                     help="preload this wrapper type (repeatable)")
    run.add_argument("--config", default="",
                     help="XML deployment file selecting wrappers per app")
    run.add_argument("--arg", action="append", default=[], dest="app_args")
    run.add_argument("--stdin", default="")

    sub.add_parser("attack-demo",
                   help="demo 3.4: heap smash with and without the "
                        "security wrapper")

    adversarial = sub.add_parser(
        "adversarial",
        help="run the scored attack corpus under k-fault chaos "
             "schedules and print the containment matrix",
    )
    adversarial.add_argument("--attacks",
                             help="comma-separated corpus subset "
                                  "(default: the full corpus)")
    adversarial.add_argument("--presets", default="",
                             help="comma-separated presets to score "
                                  "(default: security,robustness,"
                                  "hardened,recovery)")
    adversarial.add_argument("--seeds", default="2003",
                             help="comma-separated campaign seeds")
    adversarial.add_argument("--trials", type=int, default=2,
                             help="trials per (attack, preset, seed)")
    adversarial.add_argument("--kmax", type=int, default=3,
                             help="largest simultaneous-fault set size")
    adversarial.add_argument("--horizon", type=int, default=6,
                             help="invocation-index horizon faults are "
                                  "scheduled within (default 6)")
    adversarial.add_argument("--wrapper-backend", default="compiled",
                             choices=["compiled", "interpreted"],
                             help="wrapper execution backend")
    adversarial.add_argument("--exec-backend", default="serial",
                             choices=["serial", "thread"],
                             help="campaign worker pool backend")
    adversarial.add_argument("--jobs", type=int, default=2,
                             help="worker count for --exec-backend "
                                  "thread (default 2)")
    adversarial.add_argument("--watchdog", type=float, default=0.0,
                             help="per-cell watchdog in seconds "
                                  "(0 = disabled)")
    adversarial.add_argument("--cache", default="",
                             help="trial-result cache file: loaded "
                                  "before the run (fingerprint-gated), "
                                  "written after it")
    adversarial.add_argument("--output", default="",
                             help="write the full campaign report as "
                                  "JSON here")

    serve = sub.add_parser(
        "serve",
        help="drive a bundled server app through the deterministic "
             "load generator and report requests/sec",
    )
    serve.add_argument("--app", default="kvd",
                       help="server app name (kvd, httpd, tmpld)")
    serve.add_argument("--preset", default="robustness",
                       choices=sorted(SERVING_PRESETS),
                       help="wrapper preset (unwrapped = bare baseline)")
    serve.add_argument("--mix", default="hot", choices=sorted(MIXES),
                       help="load-generator request mix (default hot)")
    serve.add_argument("--requests", type=int, default=400,
                       help="timed requests to serve (default 400)")
    serve.add_argument("--seed", type=int, default=7,
                       help="load-generator seed (default 7)")
    serve.add_argument("--rps", type=float, default=0.0,
                       help="minimum requests/sec to accept "
                            "(0 = report only; below the floor exits 1)")
    serve.add_argument("--no-fuse", action="store_true",
                       help="serve without the fused fast path")
    serve.add_argument("--wrapper-backend", default="compiled",
                       choices=["compiled", "interpreted"],
                       help="wrapper execution backend")

    storm = sub.add_parser(
        "storm",
        help="drive a fault storm against a live serving session and "
             "report availability under the graceful-degradation ladder",
    )
    storm.add_argument("--app", default="kvd",
                       help="server app name (kvd, httpd, tmpld)")
    storm.add_argument("--preset", default="security",
                       choices=sorted(SERVING_PRESETS),
                       help="wrapper preset for the supervised session")
    storm.add_argument("--mix", default="storm", choices=sorted(MIXES),
                       help="load-generator request mix (default storm)")
    storm.add_argument("--requests", type=int, default=400,
                       help="storm length in requests (default 400)")
    storm.add_argument("--seed", type=int, default=42,
                       help="storm schedule seed (default 42)")
    storm.add_argument("--load-seed", type=int, default=11,
                       help="load-generator seed (default 11)")
    storm.add_argument("--trial", type=int, default=0,
                       help="storm trial index (default 0)")
    storm.add_argument("--deadline-fuel", type=int, default=0,
                       help="per-request fuel deadline "
                            "(0 = the built-in default)")
    storm.add_argument("--baseline", action="store_true",
                       help="also run the unsupervised no-ladder "
                            "baseline over the same storm")
    storm.add_argument("--gate", type=float, default=0.0,
                       help="availability floor to accept "
                            "(0 = report only; below the floor exits 1)")
    storm.add_argument("--json", action="store_true",
                       help="print the full storm report as JSON")
    storm.add_argument("--wrapper-backend", default="compiled",
                       choices=["compiled", "interpreted"],
                       help="wrapper execution backend")

    collector = sub.add_parser(
        "serve-collector",
        help="run the central collection server for profile documents",
    )
    collector.add_argument("--port", type=int, default=0)
    collector.add_argument("--expect", type=int, default=0,
                           help="exit after receiving this many documents "
                                "(0 = run until interrupted)")

    collect = sub.add_parser(
        "collect",
        help="the collection fabric: serve, query fleet stats, or "
             "replay a write-ahead spool",
    )
    collect_sub = collect.add_subparsers(dest="collect_command",
                                         required=True)
    collect_serve = collect_sub.add_parser(
        "serve",
        help="run the sharded non-blocking ingest fabric",
    )
    collect_serve.add_argument("--port", type=int, default=0)
    collect_serve.add_argument("--shards", type=int, default=4,
                               help="ingest shard workers (default 4)")
    collect_serve.add_argument("--credit-limit", type=int, default=64,
                               help="un-acked documents per connection "
                                    "before reads pause (default 64)")
    collect_serve.add_argument("--spool-dir", default="",
                               help="write-ahead spool directory "
                                    "(empty = spooling off)")
    collect_serve.add_argument("--no-fsync", action="store_true",
                               help="skip fsync on spool commits "
                                    "(faster, loses the crash guarantee)")
    collect_serve.add_argument("--spool-key", default="",
                               help="deployment key HMAC-chaining spool "
                                    "records (empty = CRC-only legacy "
                                    "spool)")
    collect_serve.add_argument("--backend", default="fabric",
                               choices=["fabric", "legacy"],
                               help="ingest backend (default fabric)")
    collect_serve.add_argument("--expect", type=int, default=0,
                               help="exit after receiving this many "
                                    "documents (0 = run until "
                                    "interrupted)")
    collect_stats = collect_sub.add_parser(
        "stats",
        help="query a live fabric server for its fleet rollup",
    )
    collect_stats.add_argument("--host", default="127.0.0.1")
    collect_stats.add_argument("--port", type=int, required=True)
    collect_stats.add_argument("--json", action="store_true",
                               help="print the raw JSON snapshot")
    collect_replay = collect_sub.add_parser(
        "replay",
        help="inspect a write-ahead spool offline (recovered documents, "
             "torn tails, per-shipper sequences)",
    )
    collect_replay.add_argument("--spool-dir", required=True)
    collect_replay.add_argument("--shards", type=int, default=4,
                                help="shard count the spool was written "
                                     "with (default 4)")
    collect_replay.add_argument("--key", default="",
                                help="deployment key the spool was "
                                     "HMAC-chained under (empty = "
                                     "CRC-only legacy spool)")
    return parser


def _add_execution_args(parser, default_jobs: int = 1,
                        default_backend: str = "serial") -> None:
    """``--jobs/--backend`` for commands that run the injection engine."""
    parser.add_argument("--jobs", type=int, default=default_jobs,
                        help="worker count (0 = one per CPU; "
                             f"default {default_jobs})")
    parser.add_argument("--backend", default=default_backend,
                        choices=["serial", "thread", "process"],
                        help=f"worker pool backend (default "
                             f"{default_backend})")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    toolkit = Healers()
    if args.telemetry:
        from repro.core.config import TelemetrySettings

        toolkit.configure_telemetry(
            TelemetrySettings(sinks=args.telemetry,
                              batch_size=args.telemetry_batch)
        )
    handler = _HANDLERS[args.command]
    try:
        return handler(toolkit, args)
    finally:
        toolkit.close_telemetry()


# ----------------------------------------------------------------------
# subcommand bodies
# ----------------------------------------------------------------------

def _cmd_list_libs(toolkit: Healers, args) -> int:
    print(f"{'PATH':<24} {'SONAME':<16} {'FUNCS':>6} {'PROTOTYPED':>10}")
    for scan in toolkit.list_libraries():
        print(f"{scan.path:<24} {scan.soname:<16} "
              f"{scan.function_count:>6} {scan.prototyped:>10}")
    return 0


def _cmd_list_apps(toolkit: Healers, args) -> int:
    for path in toolkit.list_applications():
        print(path)
    return 0


def _cmd_scan_lib(toolkit: Healers, args) -> int:
    if args.xml:
        print(toolkit.declaration_file(args.path))
        return 0
    scan = toolkit.scan_library(args.path)
    print(f"{scan.path} (soname {scan.soname}): "
          f"{scan.function_count} functions, "
          f"{scan.prototyped} with prototypes")
    for name in scan.functions:
        print(f"  {name}")
    return 0


def _cmd_scan_app(toolkit: Healers, args) -> int:
    scan = toolkit.scan_application(args.path)
    if args.html:
        from repro.reporting import render_application_scan_html

        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(render_application_scan_html(scan))
        print(f"wrote {args.html}")
    print(f"{scan.path}:")
    if not scan.dynamically_linked:
        print("  statically linked — HEALERS cannot protect this binary")
        return 1
    print("  linked libraries:")
    for soname, path in scan.resolved_libraries.items():
        print(f"    {soname} => {path}")
    for soname in scan.missing_libraries:
        print(f"    {soname} => NOT FOUND")
    print(f"  undefined functions ({len(scan.undefined_functions)}, "
          f"{scan.coverage:.0%} wrappable):")
    for name in scan.undefined_functions:
        marker = "" if name in scan.wrappable else "   [no wrapper]"
        print(f"    {name}{marker}")
    return 0


def _functions_arg(args) -> Optional[List[str]]:
    if getattr(args, "functions", None):
        return [name.strip() for name in args.functions.split(",")]
    return None


def _cmd_inject(toolkit: Healers, args) -> int:
    result = toolkit.run_fault_injection(
        _functions_arg(args), jobs=args.jobs, backend=args.backend
    )
    if args.save:
        from repro.injection import campaign_to_xml

        with open(args.save, "w", encoding="utf-8") as handle:
            handle.write(campaign_to_xml(result))
        print(f"experiments stored in {args.save}")
    _print_campaign_summary(result)
    return 0


def _cmd_campaign(toolkit: Healers, args) -> int:
    observer = None
    if args.progress:
        from repro.reporting import CampaignProgress

        # progress is just another telemetry sink on the probe stream
        toolkit.add_telemetry_sink(CampaignProgress())
    metrics = toolkit.metrics_sink()
    if args.metrics and metrics is None:
        from repro.telemetry import MetricsSink

        metrics = toolkit.add_telemetry_sink(MetricsSink())
    result = toolkit.run_fault_injection(
        _functions_arg(args),
        jobs=args.jobs,
        backend=args.backend,
        cache=args.cache,
        resume=args.resume,
        observer=observer,
    )
    if args.save:
        from repro.injection import campaign_to_xml

        with open(args.save, "w", encoding="utf-8") as handle:
            handle.write(campaign_to_xml(result))
        print(f"experiments stored in {args.save}")
    stats = toolkit.campaign_stats
    if stats is not None:
        print(stats.describe())
        if args.cache:
            print(f"cache: {args.cache} "
                  f"({stats.cache_hit_rate:.0%} hit rate)")
    if args.metrics and metrics is not None:
        toolkit.telemetry.flush()
        print(metrics.describe())
    _print_campaign_summary(result)
    return 0


def _print_campaign_summary(result) -> None:
    print(f"library {result.library}: {result.total_probes} probes, "
          f"{result.total_failures} robustness failures "
          f"({result.failure_rate:.1%})")
    for key, value in sorted(result.outcome_counts().items()):
        print(f"  {key:<8} {value}")
    worst = sorted(result.reports.values(),
                   key=lambda r: -r.failure_rate)[:10]
    print("most brittle functions:")
    for report in worst:
        print(f"  {report.function:<12} {report.failure_rate:.1%} "
              f"({len(report.failures)}/{report.total_probes})")


def _cmd_derive(toolkit: Healers, args) -> int:
    if args.load:
        from repro.injection import campaign_from_xml

        with open(args.load, encoding="utf-8") as handle:
            result = campaign_from_xml(handle.read())
    else:
        result = toolkit.run_fault_injection(
            _functions_arg(args), jobs=args.jobs, backend=args.backend
        )
    document = toolkit.derive_robust_api(result)
    if args.xml:
        print(document.to_xml())
        return 0
    for name in sorted(toolkit.derivations):
        derivation = toolkit.derivations[name]
        strengthened = [p for p in derivation.params if p.strengthened]
        if not strengthened:
            continue
        print(name)
        for param in strengthened:
            print(f"  {param.describe()}")
    return 0


def _cmd_derive_checks(toolkit: Healers, args) -> int:
    from repro.robust import coverage_report, derive_api, uncovered

    if args.load:
        from repro.injection import campaign_from_xml

        with open(args.load, encoding="utf-8") as handle:
            result = campaign_from_xml(handle.read())
        toolkit.campaign_result = result
        toolkit.derivations = derive_api(result, toolkit.registry,
                                         toolkit.manpages)
    document = toolkit.build_introspected_document()
    if args.xml:
        print(document.to_xml())
        return 0
    plans = toolkit.all_check_plans()
    report = coverage_report(plans)
    libraries = [toolkit.registry.library_name]
    libraries += sorted(toolkit.extra_registries)
    print(f"check plans: {report['functions']} functions across "
          f"{', '.join(libraries)} "
          f"({report['functions_with_checks']} with enforceable checks)")
    print(f"  parameters: {report['params_with_plans']}/{report['params']} "
          f"planned, {report['relational_params']} relational "
          f"(pointer+length, capacity, base)")
    sources = ", ".join(f"{key}={value}" for key, value in
                        sorted(report["params_by_source"].items()))
    print(f"  plan sources: {sources}")
    if toolkit.derivations:
        print(f"  campaign verdicts folded in for "
              f"{len(toolkit.derivations)} functions")
    if args.uncovered:
        names = uncovered(plans)
        print(f"scalar-only functions (nothing to enforce): {len(names)}")
        for name in names:
            print(f"  {name}")
    return 0


def _cmd_generate(toolkit: Healers, args) -> int:
    functions = _functions_arg(args)
    if args.c:
        print(toolkit.wrapper_source(args.preset, functions))
        return 0
    built = toolkit.generate_wrapper(args.preset, functions)
    print(f"built {built.library.soname}: {len(built.functions)} wrappers "
          f"({', '.join(built.spec.generators)})")
    return 0


def _cmd_profile(toolkit: Healers, args) -> int:
    app = app_by_name(args.app)
    result, document = toolkit.profile_run(
        app,
        argv=args.app_args or _default_argv(app.name),
        stdin=args.stdin.encode(),
        files=standard_files(),
    )
    if args.html:
        from repro.reporting import render_profile_html

        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(render_profile_html(document))
        print(f"wrote {args.html}")
    print(render_full_report(document))
    return 0 if result.succeeded else 1


def _cmd_run(toolkit: Healers, args) -> int:
    app = app_by_name(args.app)
    if args.config:
        from repro.core.config import DeploymentConfig

        with open(args.config, encoding="utf-8") as handle:
            config = DeploymentConfig.from_xml(handle.read())
        toolkit.apply_deployment(config, app.path)
    for preset in args.wrap:
        toolkit.preload(preset)
    result = run_app(app, toolkit.linker,
                     argv=args.app_args or _default_argv(app.name),
                     stdin=args.stdin.encode(),
                     files=standard_files())
    sys.stdout.write(result.stdout)
    if result.crashed:
        print(f"[{app.name} died: {result.exception}]")
        return 139
    return result.status or 0


def _cmd_attack_demo(toolkit: Healers, args) -> int:
    from repro.security.attacks import HEAP_SMASH

    print("demo 3.4 — heap buffer overflow against the root daemon authd")
    print(f"payload: {len(HEAP_SMASH.payload())} bytes\n")

    print("[1/2] without protection:")
    result = run_app(HEAP_SMASH.app, toolkit.linker,
                     stdin=HEAP_SMASH.payload())
    print(result.stdout.rstrip())
    if HEAP_SMASH.hijacked(result):
        print("  => control flow hijacked: attacker has a ROOT SHELL\n")
    else:
        print("  => exploit failed (unexpected)\n")

    print("[2/2] with the security wrapper preloaded:")
    built = toolkit.preload("security")
    result = run_app(HEAP_SMASH.app, toolkit.linker,
                     stdin=HEAP_SMASH.payload())
    print(result.stdout.rstrip() or "  (no output)")
    if result.crashed and not HEAP_SMASH.hijacked(result):
        print(f"  => overflow detected, program terminated: "
              f"{result.exception}")
        for event in built.state.security_events:
            print(f"     security event: {event.function}: {event.reason}")
        return 0
    print("  => exploit was NOT contained (unexpected)")
    return 1


def _cmd_adversarial(toolkit: Healers, args) -> int:
    import json

    from repro.chaos import ChaosCampaign, DEFAULT_PRESETS, TrialCache
    from repro.security.corpus import CORPUS, GATED_PRESETS, attack_by_name

    if args.attacks:
        attacks = [attack_by_name(name.strip())
                   for name in args.attacks.split(",")]
    else:
        attacks = list(CORPUS)
    presets = ([name.strip() for name in args.presets.split(",")]
               if args.presets else list(DEFAULT_PRESETS))
    seeds = [int(seed) for seed in args.seeds.split(",")]

    campaign = ChaosCampaign(
        toolkit.registry,
        toolkit.build_declaration_document(),
        attacks=attacks,
        presets=presets,
        seeds=seeds,
        trials=args.trials,
        kmax=args.kmax,
        horizon=args.horizon,
        backend=args.wrapper_backend,
        exec_backend=args.exec_backend,
        jobs=args.jobs,
        watchdog=args.watchdog or None,
        on_incident=lambda line: print(f"  [incident] {line}"),
    )
    if args.cache:
        campaign.cache = TrialCache.load_or_create(
            args.cache, campaign.fingerprint())
        if len(campaign.cache):
            print(f"resuming: {len(campaign.cache)} cached cells "
                  f"in {args.cache}")
    metrics = toolkit.metrics_sink()
    if metrics is not None:
        campaign.sinks.append(metrics)

    report = campaign.run()

    print(f"adversarial campaign: {len(attacks)} attacks x "
          f"{len(presets)} presets x {len(seeds)} seeds x "
          f"{args.trials} trials, kmax={args.kmax}")
    prune = report.prune
    print(f"k-fault space: naive {prune.naive}, executed "
          f"{prune.executed}, skipped {prune.skipped_fraction:.0%} "
          f"({prune.pruned_equivalence} equivalence, "
          f"{prune.pruned_dominated} dominated)")
    if report.cache_hits:
        print(f"cache hits: {report.cache_hits}")

    print("containment matrix (preset x attack class):")
    matrix = report.matrix()
    for preset in presets:
        classes = matrix.get(preset, {})
        print(f"  {preset}: containment "
              f"{report.containment_rate(preset):.0%}")
        for attack_class in sorted(classes):
            cell = classes[attack_class]
            summary = " ".join(f"{verdict}={count}" for verdict, count
                               in sorted(cell.items()))
            print(f"    {attack_class:<18} {summary}")

    escapes = report.escapes()
    gated = [record for record in escapes
             if record.preset in GATED_PRESETS]
    if escapes:
        print(f"escapes ({len(escapes)}), replay witnesses:")
        for record in escapes[:20]:
            witness = json.dumps(record.replay_witness(), sort_keys=True)
            print(f"  {witness}")
        if len(escapes) > 20:
            print(f"  ... and {len(escapes) - 20} more")

    if args.cache:
        campaign.cache.save(args.cache)
        print(f"cache written: {args.cache} "
              f"({len(campaign.cache)} cells)")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print(f"report written: {args.output}")

    if gated:
        print(f"FAIL: {len(gated)} escapes under gated presets "
              f"({', '.join(sorted({r.preset for r in gated}))})")
        return 1
    return 0


def _cmd_serve(toolkit: Healers, args) -> int:
    from repro.apps import SERVER_APPS
    from repro.serving import LoadGenerator, ServingSession
    from repro.wrappers.presets import full_coverage_api

    apps = {app.name: app for app in SERVER_APPS}
    app = apps.get(args.app)
    if app is None:
        print(f"unknown server app {args.app!r}; "
              f"known: {', '.join(sorted(apps))}")
        return 2
    fused = not args.no_fuse
    session = ServingSession(
        app, preset=args.preset, backend=args.wrapper_backend,
        fused=fused, registry=toolkit.registry,
        api=full_coverage_api(toolkit.registry, toolkit.manpages),
    )
    gen = LoadGenerator(app.name, mix=args.mix, seed=args.seed)
    if fused:
        recorded = session.record_traces(gen.warmup, gen.samples)
        print(f"recorded {len(recorded)} trace kinds "
              f"({sum(recorded.values())} wrapped calls)")
    session.serve_all(gen.warmup)
    stats = session.drive(gen.stream(args.requests))
    lane = "fused" if fused else "unfused"
    print(f"{app.name} [{args.preset}/{args.wrapper_backend}, {lane}] "
          f"mix={args.mix} seed={args.seed}")
    print(f"  {stats.requests} requests in {stats.elapsed:.3f}s "
          f"=> {stats.rps:,.0f} requests/sec")
    if fused:
        print(f"  trace hits {stats.trace_hits}, deopts {stats.deopts}, "
              f"table calls {stats.table_calls}, fallback calls "
              f"{stats.fallback_calls}")
    if args.rps and stats.rps < args.rps:
        print(f"FAIL: {stats.rps:,.0f} requests/sec is below the "
              f"--rps {args.rps:,.0f} floor")
        return 1
    return 0


def _cmd_storm(toolkit: Healers, args) -> int:
    import json

    from repro.apps import SERVER_APPS
    from repro.chaos import StormSchedule
    from repro.serving import (
        LoadGenerator,
        ResilientSession,
        ServingSLO,
        run_unsupervised,
    )
    from repro.wrappers.presets import full_coverage_api

    apps = {app.name: app for app in SERVER_APPS}
    app = apps.get(args.app)
    if app is None:
        print(f"unknown server app {args.app!r}; "
              f"known: {', '.join(sorted(apps))}")
        return 2
    api = full_coverage_api(toolkit.registry, toolkit.manpages)
    gen = LoadGenerator(app.name, mix=args.mix, seed=args.load_seed)
    schedule = StormSchedule(seed=args.seed, trial=args.trial,
                             requests=args.requests)
    requests = gen.stream(schedule.requests)
    slo = ServingSLO(deadline_fuel=args.deadline_fuel) \
        if args.deadline_fuel else None
    session = ResilientSession(
        app, preset=args.preset, backend=args.wrapper_backend,
        registry=toolkit.registry, api=api, slo=slo,
    )
    session.prepare(gen)
    report = session.serve_storm(schedule, requests)
    base = None
    if args.baseline:
        base = run_unsupervised(
            app, schedule, requests, preset=args.preset,
            backend=args.wrapper_backend, registry=toolkit.registry,
            api=api, gen=gen,
        )
    if args.json:
        payload = {"supervised": report.to_dict()}
        payload["supervised"]["witnesses"] = report.witnesses()
        if base is not None:
            payload["baseline"] = base.to_dict()
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        counts = report.counts()
        print(f"{app.name} [{args.preset}/{args.wrapper_backend}] "
              f"storm seed={args.seed} trial={args.trial} "
              f"({schedule.total_faults()} scheduled faults)")
        print(f"  availability {report.availability:.1%} "
              f"({report.answered}/{len(report.outcomes)} answered): "
              f"{counts['ok']} ok, {counts['degraded']} degraded, "
              f"{counts['timeout']} timeout, {counts['crashed']} crashed, "
              f"{counts['shed']} shed")
        print(f"  fuel p50 {report.fuel_quantile(0.5)}, "
              f"p99 {report.fuel_quantile(0.99)} "
              f"(deadline {session.slo.deadline_fuel})")
        for t in session.breaker.transitions:
            print(f"  ladder: request {t.request_index} "
                  f"{t.rung_from} -> {t.rung_to} ({t.reason})")
        if base is not None:
            print(f"  baseline (no ladder): availability "
                  f"{base.availability:.1%} "
                  f"({base.answered}/{len(base.outcomes)} answered)")
    if args.gate and report.availability < args.gate:
        print(f"FAIL: availability {report.availability:.1%} is below "
              f"the --gate {args.gate:.1%} floor")
        return 1
    return 0


def _cmd_serve_collector(toolkit: Healers, args) -> int:
    import time

    from repro.collection import CollectionServer

    with CollectionServer(port=args.port) as server:
        print(f"collection server listening on "
              f"{server.address[0]}:{server.address[1]}")
        try:
            while True:
                time.sleep(0.1)
                if args.expect and len(server.store) >= args.expect:
                    break
        except KeyboardInterrupt:
            pass
        print(f"received {len(server.store)} documents from "
              f"{', '.join(server.store.applications()) or 'nobody'}")
    return 0


def _cmd_collect(toolkit: Healers, args) -> int:
    handler = {
        "serve": _cmd_collect_serve,
        "stats": _cmd_collect_stats,
        "replay": _cmd_collect_replay,
    }[args.collect_command]
    return handler(toolkit, args)


def _cmd_collect_serve(toolkit: Healers, args) -> int:
    import time

    from repro.core.config import CollectionSettings

    settings = CollectionSettings(
        port=args.port, backend=args.backend, shards=args.shards,
        credit_limit=args.credit_limit, spool_dir=args.spool_dir,
        fsync=not args.no_fsync, spool_key=args.spool_key,
    )
    settings.validate()
    with settings.build_server() as server:
        backend = args.backend
        detail = (f", {args.shards} shard(s), credit {args.credit_limit}"
                  if backend == "fabric" else "")
        print(f"collection fabric ({backend}{detail}) listening on "
              f"{server.address[0]}:{server.address[1]}")
        if backend == "fabric" and server.replayed:
            print(f"replayed {server.replayed} document(s) from the "
                  f"spool at {args.spool_dir}")
        try:
            while True:
                time.sleep(0.1)
                if args.expect and len(server.store) >= args.expect:
                    break
        except KeyboardInterrupt:
            pass
        print(f"received {len(server.store)} documents from "
              f"{', '.join(server.store.applications()) or 'nobody'}")
        if backend == "fabric":
            print(server.fleet().describe())
    return 0


def _cmd_collect_stats(toolkit: Healers, args) -> int:
    import json

    from repro.collection import fetch_fleet_stats

    snapshot = fetch_fleet_stats((args.host, args.port))
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    server = snapshot.get("server", {})
    print(f"[fleet] server: {server.get('documents', 0)} documents, "
          f"{server.get('frames', 0)} frames, "
          f"{server.get('duplicates', 0)} duplicates, "
          f"{server.get('connections', 0)} connections, "
          f"{server.get('shards', 0)} shard(s)")
    print(f"[fleet] {snapshot.get('documents', 0)} documents from "
          f"{snapshot.get('applications', 0)} application(s), "
          f"{snapshot.get('keys', 0)} (library, function, wrapper) keys")
    cells = snapshot.get("cells", {})
    busiest = sorted(cells.items(),
                     key=lambda item: -item[1]["calls"])[:15]
    for key, cell in busiest:
        library, _, rest = key.partition("|")
        function, _, wrapper = rest.partition("|")
        print(f"[fleet]   {library:<12} {function:<16} {wrapper:<12} "
              f"{cell['calls']:>8} calls  p50 {cell['p50_ns_per_call']:>7}"
              f" ns  p99 {cell['p99_ns_per_call']:>7} ns"
              f"  viol {cell['violation_rate']:.2%}")
    return 0


def _cmd_collect_replay(toolkit: Healers, args) -> int:
    from repro.collection import SpoolAuthenticationError, replay_documents

    try:
        documents, last_seq, results = replay_documents(
            args.spool_dir, args.shards,
            key=args.key.encode() if args.key else None)
    except SpoolAuthenticationError as exc:
        print(f"[spool] authentication failure: {exc}")
        return 1
    segments = sum(result.segments for result in results)
    torn = [entry for result in results for entry in result.truncated]
    print(f"[spool] {args.spool_dir}: {len(documents)} document(s) "
          f"recoverable from {segments} segment(s)")
    for path, valid, original in torn:
        print(f"[spool]   torn tail in {path}: {original - valid} "
              f"byte(s) after offset {valid}")
    for shipper in sorted(last_seq):
        print(f"[spool]   shipper {shipper}: last committed "
              f"seq {last_seq[shipper]}")
    return 0


def _default_argv(app_name: str) -> List[str]:
    defaults = {
        "wordcount": ["/data/sample.txt"],
        "csvstat": ["/data/values.csv"],
    }
    return defaults.get(app_name, [])


_HANDLERS = {
    "list-libs": _cmd_list_libs,
    "list-apps": _cmd_list_apps,
    "scan-lib": _cmd_scan_lib,
    "scan-app": _cmd_scan_app,
    "inject": _cmd_inject,
    "campaign": _cmd_campaign,
    "derive": _cmd_derive,
    "derive-checks": _cmd_derive_checks,
    "generate": _cmd_generate,
    "profile": _cmd_profile,
    "run": _cmd_run,
    "attack-demo": _cmd_attack_demo,
    "adversarial": _cmd_adversarial,
    "serve": _cmd_serve,
    "storm": _cmd_storm,
    "serve-collector": _cmd_serve_collector,
    "collect": _cmd_collect,
}


if __name__ == "__main__":
    sys.exit(main())
