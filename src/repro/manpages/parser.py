"""Parser for the simulated manual-page corpus.

The corpus uses classic man(7) macros (``.TH``, ``.SH``, ``\\-``), with a
``HEALERS`` section carrying the machine-readable annotations the toolkit
mines.  A native HEALERS deployment extracts the same facts from prose
DESCRIPTION text with patterns plus manual editing ("although some manual
editing may be needed, this process is largely automated"); encoding the
post-editing result as a structured section reproduces the pipeline
without a natural-language stage.

Annotation grammar inside ``.SH HEALERS``::

    param <name> <role> [size_from=<p>] [size_param=<p>] [size_mul=<p>]
                        [min_size=<n>] [nullable]
    errno <NAME> ...
    return <null|negative|eof|zero>
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from repro.manpages.model import ManPage, ParamRole


class ManParseError(ValueError):
    """Raised on a malformed manual page."""


_TH_RE = re.compile(r"^\.TH\s+(\S+)\s+(\d+)", re.MULTILINE)


def parse_manpage(text: str) -> ManPage:
    """Parse one man-formatted document into a :class:`ManPage`."""
    th = _TH_RE.search(text)
    if th is None:
        raise ManParseError("missing .TH header")
    function = th.group(1).lower()
    section = int(th.group(2))
    sections = _split_sections(text)
    page = ManPage(function=function, section=section)
    name_text = sections.get("NAME", "")
    if "\\-" in name_text:
        page.brief = name_text.split("\\-", 1)[1].strip()
    elif "-" in name_text:
        page.brief = name_text.split("-", 1)[1].strip()
    page.synopsis = " ".join(
        line.strip() for line in sections.get("SYNOPSIS", "").splitlines()
        if line.strip() and not line.startswith(".")
    )
    page.description = sections.get("DESCRIPTION", "").strip()
    _parse_healers_section(page, sections.get("HEALERS", ""))
    return page


def _split_sections(text: str) -> Dict[str, str]:
    sections: Dict[str, str] = {}
    current: Optional[str] = None
    buffer: List[str] = []
    for line in text.splitlines():
        if line.startswith(".SH"):
            if current is not None:
                sections[current] = "\n".join(buffer)
            current = line[3:].strip().strip('"')
            buffer = []
        elif line.startswith(".TH") or line.startswith('.\\"'):
            continue
        elif current is not None:
            buffer.append(line)
    if current is not None:
        sections[current] = "\n".join(buffer)
    return sections


def _parse_healers_section(page: ManPage, text: str) -> None:
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith('.\\"') or line.startswith("."):
            continue
        words = line.split()
        keyword = words[0]
        if keyword == "param":
            if len(words) < 3:
                raise ManParseError(f"malformed param line: {line!r}")
            role = ParamRole(name=words[1], role=words[2])
            for option in words[3:]:
                if option == "nullable":
                    role.nullable = True
                elif "=" in option:
                    key, _, value = option.partition("=")
                    if key == "size_from":
                        role.size_from = value
                    elif key == "size_param":
                        role.size_param = value
                    elif key == "size_mul":
                        role.size_mul = value
                    elif key == "min_size":
                        role.min_size = int(value)
                    else:
                        raise ManParseError(f"unknown option {option!r}")
                else:
                    raise ManParseError(f"unknown option {option!r}")
            page.roles[role.name] = role
        elif keyword == "errno":
            page.errnos.extend(words[1:])
        elif keyword == "return":
            if len(words) != 2 or words[1] not in ("null", "negative", "eof", "zero"):
                raise ManParseError(f"malformed return line: {line!r}")
            page.error_return = words[1]
        else:
            raise ManParseError(f"unknown HEALERS keyword {keyword!r}")


def parse_corpus(documents: Dict[str, str]) -> Dict[str, ManPage]:
    """Parse a path → text corpus into function → ManPage."""
    pages: Dict[str, ManPage] = {}
    for path, text in sorted(documents.items()):
        try:
            page = parse_manpage(text)
        except ManParseError as exc:
            raise ManParseError(f"{path}: {exc}") from exc
        pages[page.function] = page
    return pages
