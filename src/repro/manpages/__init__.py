"""Simulated manual pages: role annotations mined per function."""

from repro.manpages.corpus import corpus_documents, load_corpus, manpage_for
from repro.manpages.model import ROLES, ManPage, ParamRole
from repro.manpages.parser import ManParseError, parse_corpus, parse_manpage

__all__ = [
    "ManPage",
    "ManParseError",
    "ParamRole",
    "ROLES",
    "corpus_documents",
    "load_corpus",
    "manpage_for",
    "parse_corpus",
    "parse_manpage",
]
