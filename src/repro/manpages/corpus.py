"""The simulated manual-page corpus.

One man(7)-formatted document per simulated libc function, each carrying a
``.SH HEALERS`` annotation section (see :mod:`repro.manpages.parser` for
the grammar and for why the annotations are structured rather than mined
from prose).  ``load_corpus()`` parses the whole tree.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.manpages.model import ManPage
from repro.manpages.parser import parse_corpus


def _man(name: str, brief: str, synopsis: str, annotations: List[str],
         description: str = "", section: int = 3) -> str:
    body = description or f"The {name}() function: {brief}."
    lines = "\n".join(annotations)
    return (
        f'.TH {name.upper()} {section} "2002-11-01" "HEALERS simulated corpus"\n'
        f".SH NAME\n{name} \\- {brief}\n"
        f".SH SYNOPSIS\n{synopsis}\n"
        f'.SH HEALERS\n.\\" machine-readable annotations\n{lines}\n'
        f".SH DESCRIPTION\n{body}\n"
    )


def _build_documents() -> Dict[str, str]:
    docs: Dict[str, str] = {}

    def add(name: str, brief: str, synopsis: str, annotations: List[str],
            description: str = "") -> None:
        docs[f"/usr/share/man/man3/{name}.3"] = _man(
            name, brief, synopsis, annotations, description
        )

    # ------------------------------------------------------------ string
    add("strlen", "calculate the length of a string",
        "size_t strlen(const char *s);",
        ["param s in_string"])
    add("strnlen", "length of a fixed-size string",
        "size_t strnlen(const char *s, size_t maxlen);",
        ["param s in_buffer size_param=maxlen", "param maxlen size"])
    add("strcpy", "copy a string",
        "char *strcpy(char *dest, const char *src);",
        ["param dest out_string size_from=src", "param src in_string"],
        "Copies the string pointed to by src, including the terminating "
        "null byte, to the buffer pointed to by dest.  The strings may not "
        "overlap, and the destination string dest must be large enough to "
        "receive the copy.")
    add("stpcpy", "copy a string, returning its end",
        "char *stpcpy(char *dest, const char *src);",
        ["param dest out_string size_from=src", "param src in_string"])
    add("strncpy", "copy a fixed-size string",
        "char *strncpy(char *dest, const char *src, size_t n);",
        ["param dest out_buffer size_param=n", "param src in_string",
         "param n size"])
    add("strcat", "concatenate two strings",
        "char *strcat(char *dest, const char *src);",
        ["param dest inout_string size_from=src", "param src in_string"])
    add("strncat", "concatenate a fixed-size string",
        "char *strncat(char *dest, const char *src, size_t n);",
        ["param dest inout_string size_param=n", "param src in_string",
         "param n size"])
    add("strcmp", "compare two strings",
        "int strcmp(const char *s1, const char *s2);",
        ["param s1 in_string", "param s2 in_string"])
    add("strncmp", "compare fixed-size strings",
        "int strncmp(const char *s1, const char *s2, size_t n);",
        ["param s1 in_string", "param s2 in_string", "param n size"])
    add("strcasecmp", "compare strings ignoring case",
        "int strcasecmp(const char *s1, const char *s2);",
        ["param s1 in_string", "param s2 in_string"])
    add("strncasecmp", "compare fixed-size strings ignoring case",
        "int strncasecmp(const char *s1, const char *s2, size_t n);",
        ["param s1 in_string", "param s2 in_string", "param n size"])
    add("strcoll", "compare strings using the current locale",
        "int strcoll(const char *s1, const char *s2);",
        ["param s1 in_string", "param s2 in_string"])
    add("strchr", "locate a character in a string",
        "char *strchr(const char *s, int c);",
        ["param s in_string", "param c any_int", "return null"])
    add("strrchr", "locate the last occurrence of a character",
        "char *strrchr(const char *s, int c);",
        ["param s in_string", "param c any_int", "return null"])
    add("strstr", "locate a substring",
        "char *strstr(const char *haystack, const char *needle);",
        ["param haystack in_string", "param needle in_string", "return null"])
    add("strspn", "span of accepted characters",
        "size_t strspn(const char *s, const char *accept);",
        ["param s in_string", "param accept in_string"])
    add("strcspn", "span of rejected characters",
        "size_t strcspn(const char *s, const char *reject);",
        ["param s in_string", "param reject in_string"])
    add("strpbrk", "search a string for any of a set of bytes",
        "char *strpbrk(const char *s, const char *accept);",
        ["param s in_string", "param accept in_string", "return null"])
    add("strdup", "duplicate a string",
        "char *strdup(const char *s);",
        ["param s in_string", "errno ENOMEM", "return null"])
    add("strndup", "duplicate at most n bytes of a string",
        "char *strndup(const char *s, size_t n);",
        ["param s in_string", "param n size", "errno ENOMEM", "return null"])
    add("strtok", "extract tokens from a string",
        "char *strtok(char *str, const char *delim);",
        ["param str inout_string nullable", "param delim in_string",
         "return null"])
    add("strtok_r", "extract tokens from a string (re-entrant)",
        "char *strtok_r(char *str, const char *delim, char **saveptr);",
        ["param str inout_string nullable", "param delim in_string",
         "param saveptr out_ptr", "return null"])
    add("memcpy", "copy a memory area",
        "void *memcpy(void *dest, const void *src, size_t n);",
        ["param dest out_buffer size_param=n",
         "param src in_buffer size_param=n", "param n size"])
    add("memmove", "copy a possibly overlapping memory area",
        "void *memmove(void *dest, const void *src, size_t n);",
        ["param dest out_buffer size_param=n",
         "param src in_buffer size_param=n", "param n size"])
    add("memset", "fill memory with a constant byte",
        "void *memset(void *s, int c, size_t n);",
        ["param s out_buffer size_param=n", "param c any_int",
         "param n size"])
    add("memcmp", "compare memory areas",
        "int memcmp(const void *s1, const void *s2, size_t n);",
        ["param s1 in_buffer size_param=n",
         "param s2 in_buffer size_param=n", "param n size"])
    add("memchr", "scan memory for a byte",
        "void *memchr(const void *s, int c, size_t n);",
        ["param s in_buffer size_param=n", "param c any_int",
         "param n size", "return null"])
    add("strerror", "describe an errno value",
        "char *strerror(int errnum);",
        ["param errnum errnum"])

    # ------------------------------------------------------------- ctype
    for fn, brief in (
        ("isalpha", "alphabetic character predicate"),
        ("isdigit", "decimal digit predicate"),
        ("isalnum", "alphanumeric character predicate"),
        ("isxdigit", "hexadecimal digit predicate"),
        ("isspace", "whitespace predicate"),
        ("isupper", "uppercase predicate"),
        ("islower", "lowercase predicate"),
        ("iscntrl", "control character predicate"),
        ("isprint", "printable character predicate"),
        ("isgraph", "graphic character predicate"),
        ("ispunct", "punctuation predicate"),
        ("toupper", "convert to uppercase"),
        ("tolower", "convert to lowercase"),
    ):
        add(fn, brief, f"int {fn}(int c);",
            ["param c uchar_or_eof"],
            "The argument must be representable as an unsigned char or "
            "equal to EOF; other values give undefined behaviour.")

    # ------------------------------------------------------------ stdlib
    add("malloc", "allocate dynamic memory",
        "void *malloc(size_t size);",
        ["param size size", "errno ENOMEM", "return null"])
    add("calloc", "allocate zeroed dynamic memory",
        "void *calloc(size_t nmemb, size_t size);",
        ["param nmemb size", "param size size", "errno ENOMEM",
         "return null"])
    add("realloc", "resize dynamic memory",
        "void *realloc(void *ptr, size_t size);",
        ["param ptr heap_ptr nullable", "param size size", "errno ENOMEM",
         "return null"])
    add("free", "free dynamic memory",
        "void free(void *ptr);",
        ["param ptr heap_ptr nullable"],
        "The ptr argument must have been returned by a previous call to "
        "malloc(), calloc() or realloc(); otherwise, or if free(ptr) has "
        "already been called, undefined behaviour occurs.")
    add("abs", "absolute value of an integer",
        "int abs(int j);", ["param j any_int"])
    add("labs", "absolute value of a long",
        "long labs(long j);", ["param j any_int"])
    add("llabs", "absolute value of a long long",
        "long long llabs(long long j);", ["param j any_int"])
    add("div_quot", "quotient of an integer division",
        "int div_quot(int numer, int denom);",
        ["param numer any_int", "param denom nonzero_int"],
        "Simulated scalar projection of div(3)'s quot field; division by "
        "zero raises SIGFPE as on real hardware.")
    add("div_rem", "remainder of an integer division",
        "int div_rem(int numer, int denom);",
        ["param numer any_int", "param denom nonzero_int"])
    add("atoi", "convert a string to an int",
        "int atoi(const char *nptr);", ["param nptr in_string"])
    add("atol", "convert a string to a long",
        "long atol(const char *nptr);", ["param nptr in_string"])
    add("atoll", "convert a string to a long long",
        "long long atoll(const char *nptr);", ["param nptr in_string"])
    add("atof", "convert a string to a double",
        "double atof(const char *nptr);", ["param nptr in_string"])
    add("strtol", "convert a string to a long with error checking",
        "long strtol(const char *nptr, char **endptr, int base);",
        ["param nptr in_string", "param endptr opt_out_ptr nullable",
         "param base base", "errno EINVAL ERANGE"])
    add("strtoul", "convert a string to an unsigned long",
        "unsigned long strtoul(const char *nptr, char **endptr, int base);",
        ["param nptr in_string", "param endptr opt_out_ptr nullable",
         "param base base", "errno EINVAL ERANGE"])
    add("strtod", "convert a string to a double with error checking",
        "double strtod(const char *nptr, char **endptr);",
        ["param nptr in_string", "param endptr opt_out_ptr nullable",
         "errno ERANGE"])
    add("qsort", "sort an array",
        "void qsort(void *base, size_t nmemb, size_t size, "
        "int (*compar)(const void *, const void *));",
        ["param base out_buffer size_param=nmemb size_mul=size",
         "param nmemb size", "param size size", "param compar callback"])
    add("bsearch", "binary search of a sorted array",
        "void *bsearch(const void *key, const void *base, size_t nmemb, "
        "size_t size, int (*compar)(const void *, const void *));",
        ["param key in_buffer size_param=size",
         "param base in_buffer size_param=nmemb size_mul=size",
         "param nmemb size", "param size size", "param compar callback",
         "return null"])
    add("rand", "pseudo-random number generator",
        "int rand(void);", [])
    add("srand", "seed the pseudo-random number generator",
        "void srand(unsigned int seed);", ["param seed any_int"])
    add("getenv", "get an environment variable",
        "char *getenv(const char *name);",
        ["param name in_string", "return null"])
    add("setenv", "set an environment variable",
        "int setenv(const char *name, const char *value, int overwrite);",
        ["param name in_string", "param value in_string",
         "param overwrite any_int", "errno EINVAL ENOMEM",
         "return negative"])
    add("exit", "terminate the calling process",
        "void exit(int status);", ["param status any_int"])
    add("abort", "abort the calling process",
        "void abort(void);", [])

    # ------------------------------------------------------------- stdio
    add("sprintf", "formatted output to a string",
        "int sprintf(char *str, const char *format, ...);",
        ["param str out_string size_from=format", "param format format"],
        "Writes formatted output to str with no bound; callers must "
        "guarantee the buffer is large enough for the expansion.")
    add("snprintf", "bounded formatted output to a string",
        "int snprintf(char *str, size_t size, const char *format, ...);",
        ["param str out_buffer size_param=size nullable",
         "param size size", "param format format"])
    add("printf", "formatted output to stdout",
        "int printf(const char *format, ...);",
        ["param format format"])
    add("fprintf", "formatted output to a stream",
        "int fprintf(FILE *stream, const char *format, ...);",
        ["param stream file", "param format format"])
    add("puts", "write a string and a newline to stdout",
        "int puts(const char *s);",
        ["param s in_string", "return eof"])
    add("putchar", "write a character to stdout",
        "int putchar(int c);", ["param c any_int"])
    add("gets", "read a line from stdin (never bounds-checked)",
        "char *gets(char *s);",
        ["param s out_string", "return null"],
        "Never use gets().  It performs no bounds checking and a long "
        "input line overflows the destination buffer.")
    add("fgets", "read a bounded line from a stream",
        "char *fgets(char *s, int size, FILE *stream);",
        ["param s out_buffer size_param=size", "param size size",
         "param stream file", "return null"])
    add("fopen", "open a stream",
        "FILE *fopen(const char *path, const char *mode);",
        ["param path path", "param mode mode", "errno ENOENT EINVAL ENOMEM",
         "return null"])
    add("fclose", "close a stream",
        "int fclose(FILE *stream);",
        ["param stream file", "errno EBADF", "return eof"])
    add("fread", "binary input from a stream",
        "size_t fread(void *ptr, size_t size, size_t nmemb, FILE *stream);",
        ["param ptr out_buffer size_param=nmemb size_mul=size",
         "param size size", "param nmemb size", "param stream file"])
    add("fwrite", "binary output to a stream",
        "size_t fwrite(const void *ptr, size_t size, size_t nmemb, "
        "FILE *stream);",
        ["param ptr in_buffer size_param=nmemb size_mul=size",
         "param size size", "param nmemb size", "param stream file"])
    add("fputs", "write a string to a stream",
        "int fputs(const char *s, FILE *stream);",
        ["param s in_string", "param stream file", "return eof"])
    add("fgetc", "read a character from a stream",
        "int fgetc(FILE *stream);",
        ["param stream file", "return eof"])
    add("fputc", "write a character to a stream",
        "int fputc(int c, FILE *stream);",
        ["param c any_int", "param stream file", "return eof"])
    add("feof", "end-of-file indicator",
        "int feof(FILE *stream);", ["param stream file"])
    add("ferror", "stream error indicator",
        "int ferror(FILE *stream);", ["param stream file"])
    add("remove", "delete a file",
        "int remove(const char *path);",
        ["param path path", "errno ENOENT", "return negative"])
    add("rename", "rename a file",
        "int rename(const char *old, const char *new);",
        ["param old path", "param new path", "errno ENOENT",
         "return negative"])

    # -------------------------------------------------------------- time
    add("time", "calendar time in seconds since the Epoch",
        "time_t time(time_t *tloc);",
        ["param tloc opt_out_ptr nullable"])
    add("difftime", "difference between two calendar times",
        "double difftime(time_t time1, time_t time0);",
        ["param time1 any_int", "param time0 any_int"])
    add("gmtime", "broken-down UTC time",
        "struct tm *gmtime(const time_t *timep);",
        ["param timep in_buffer min_size=8", "return null"],
        "The result points to a statically allocated struct tm that is "
        "overwritten by subsequent calls to gmtime(), localtime() or "
        "ctime().")
    add("localtime", "broken-down local time",
        "struct tm *localtime(const time_t *timep);",
        ["param timep in_buffer min_size=8", "return null"])
    add("mktime", "calendar time from broken-down time",
        "time_t mktime(struct tm *tm);",
        ["param tm out_buffer min_size=36"],
        "The fields of tm are normalised in place.")
    add("asctime", "textual representation of broken-down time",
        "char *asctime(const struct tm *tm);",
        ["param tm in_buffer min_size=36", "return null"],
        "Formats into a statically allocated 26-byte buffer; the result "
        "is undefined (and the buffer overflows) when the year does not "
        "fit in four digits.")
    add("ctime", "textual representation of calendar time",
        "char *ctime(const time_t *timep);",
        ["param timep in_buffer min_size=8", "return null"])
    add("strftime", "formatted time to a bounded buffer",
        "size_t strftime(char *s, size_t max, const char *format, "
        "const struct tm *tm);",
        ["param s out_buffer size_param=max", "param max size",
         "param format in_string", "param tm in_buffer min_size=36"])
    add("clock", "processor time consumed by the program",
        "clock_t clock(void);", [])

    # -------------------------------------------------------------- math
    for fn, brief, params, errnos in (
        ("sqrt", "square root", ["x"], "EDOM"),
        ("cbrt", "cube root", ["x"], ""),
        ("pow", "power function", ["x", "y"], "EDOM ERANGE"),
        ("exp", "exponential function", ["x"], "ERANGE"),
        ("log", "natural logarithm", ["x"], "EDOM ERANGE"),
        ("log10", "base-10 logarithm", ["x"], "EDOM ERANGE"),
        ("sin", "sine", ["x"], "EDOM"),
        ("cos", "cosine", ["x"], "EDOM"),
        ("tan", "tangent", ["x"], "EDOM"),
        ("atan2", "two-argument arctangent", ["y", "x"], ""),
        ("asin", "arcsine", ["x"], "EDOM"),
        ("acos", "arccosine", ["x"], "EDOM"),
        ("fmod", "floating-point remainder", ["x", "y"], "EDOM"),
        ("floor", "round down", ["x"], ""),
        ("ceil", "round up", ["x"], ""),
        ("fabs", "absolute value", ["x"], ""),
        ("hypot", "Euclidean distance", ["x", "y"], "ERANGE"),
    ):
        synopsis = f"double {fn}({', '.join('double ' + p for p in params)});"
        annotations = [f"param {p} real" for p in params]
        if errnos:
            annotations.append(f"errno {errnos}")
        add(fn, brief, synopsis, annotations,
            "C99 error reporting: domain errors set errno to EDOM and "
            "return NaN; range errors set ERANGE and return HUGE_VAL.")

    # -------------------------------------------------------------- wide
    add("wcslen", "length of a wide string",
        "size_t wcslen(const wchar_t *s);", ["param s in_wstring"])
    add("wcscpy", "copy a wide string",
        "wchar_t *wcscpy(wchar_t *dest, const wchar_t *src);",
        ["param dest out_wstring size_from=src", "param src in_wstring"])
    add("wcsncpy", "copy a fixed-size wide string",
        "wchar_t *wcsncpy(wchar_t *dest, const wchar_t *src, size_t n);",
        ["param dest out_wbuffer size_param=n", "param src in_wstring",
         "param n size"])
    add("wcscmp", "compare wide strings",
        "int wcscmp(const wchar_t *s1, const wchar_t *s2);",
        ["param s1 in_wstring", "param s2 in_wstring"])
    add("wcschr", "locate a wide character",
        "wchar_t *wcschr(const wchar_t *s, wchar_t c);",
        ["param s in_wstring", "param c wide_char", "return null"])
    add("wctrans", "name a wide-character transformation",
        "wctrans_t wctrans(const char *name);",
        ["param name in_string", "return zero"],
        "Returns a transformation descriptor for the named mapping, valid "
        "names being \"tolower\" and \"toupper\"; returns zero for an "
        "invalid name.  This is the function wrapped in the HEALERS "
        "paper's Figure 3.")
    add("towctrans", "apply a wide-character transformation",
        "wint_t towctrans(wint_t wc, wctrans_t desc);",
        ["param wc wide_char", "param desc desc"])
    add("wctype", "name a wide-character class",
        "wctype_t wctype(const char *name);",
        ["param name in_string", "return zero"])
    add("iswctype", "test a wide character against a class",
        "int iswctype(wint_t wc, wctype_t desc);",
        ["param wc wide_char", "param desc desc"])
    add("towupper", "convert a wide character to uppercase",
        "wint_t towupper(wint_t wc);", ["param wc wide_char"])
    add("towlower", "convert a wide character to lowercase",
        "wint_t towlower(wint_t wc);", ["param wc wide_char"])
    add("iswalpha", "wide alphabetic predicate",
        "int iswalpha(wint_t wc);", ["param wc wide_char"])
    add("iswdigit", "wide digit predicate",
        "int iswdigit(wint_t wc);", ["param wc wide_char"])

    return docs


_CACHE: Optional[Dict[str, ManPage]] = None


def corpus_documents() -> Dict[str, str]:
    """The raw man-page tree (path → man source text)."""
    return _build_documents()


def load_corpus() -> Dict[str, ManPage]:
    """Parse (and cache) the whole corpus: function name → ManPage."""
    global _CACHE
    if _CACHE is None:
        _CACHE = parse_corpus(_build_documents())
    return _CACHE


def manpage_for(function: str) -> Optional[ManPage]:
    """The parsed manual page for one function, or None."""
    return load_corpus().get(function)
