"""Model of the metadata HEALERS mines from manual pages.

Header files give declared types, but the *robust* API needs more: which
pointer parameters are outputs, how big a destination buffer must be
relative to other arguments, which integer parameters have restricted
domains.  The paper's strcpy example — the prototype says ``char *`` but
the argument "actually has to be a pointer to a writable buffer with
enough space to accommodate the source string" — is precisely a
:class:`ParamRole` with ``role='out_string'`` and ``size_from='src'``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: the role vocabulary; each maps to a robust-type chain in repro.ftypes
ROLES = {
    "in_string",      # readable NUL-terminated string
    "opt_in_string",  # NULL allowed, else readable string
    "out_string",     # writable buffer receiving a string
    "in_buffer",      # readable raw buffer, extent given by a size param
    "out_buffer",     # writable raw buffer, extent given by a size param
    "inout_string",   # writable buffer already holding a string (strcat dest)
    "opt_out_ptr",    # nullable pointer to a pointer-sized out slot (endptr)
    "out_ptr",        # non-null pointer-sized out slot
    "uchar_or_eof",   # ctype domain: 0..255 or EOF
    "wide_char",      # wint_t
    "size",           # size_t count governing a buffer
    "any_int",        # unrestricted integer
    "nonzero_int",    # divisor-style integer (zero traps)
    "errnum",         # errno value
    "base",           # strtol base: 0 or 2..36
    "callback",       # function pointer
    "file",           # FILE* obtained from fopen/std streams
    "path",           # readable string naming a file
    "mode",           # fopen mode string
    "format",         # printf format string
    "heap_ptr",       # pointer previously returned by malloc (free/realloc)
    "desc",           # descriptor from wctrans()/wctype()
    "in_wstring",     # readable NUL-terminated wide string (wchar_t)
    "out_wstring",    # writable buffer receiving a wide string
    "out_wbuffer",    # writable wide buffer, extent in wide chars
    "real",           # floating-point scalar (double)
}


@dataclass
class ParamRole:
    """Semantic role of one parameter, refined beyond its declared type."""

    name: str
    role: str
    #: buffer extent must cover strlen(<param>)+1
    size_from: Optional[str] = None
    #: buffer extent must cover the value of integer parameter <param>
    size_param: Optional[str] = None
    #: buffer extent must cover at least this many bytes
    min_size: int = 0
    #: element size multiplier parameter (fread: size * nmemb)
    size_mul: Optional[str] = None
    #: NULL is an accepted value even where the role implies a pointer
    nullable: bool = False

    def __post_init__(self) -> None:
        if self.role not in ROLES:
            raise ValueError(f"unknown role {self.role!r} for {self.name!r}")


@dataclass
class ManPage:
    """Parsed manual page for one function."""

    function: str
    section: int = 3
    brief: str = ""
    synopsis: str = ""
    roles: Dict[str, ParamRole] = field(default_factory=dict)
    errnos: List[str] = field(default_factory=list)
    #: error-return convention: "", "null", "negative", "eof", "zero"
    error_return: str = ""
    description: str = ""

    def role_of(self, param: str) -> Optional[ParamRole]:
        return self.roles.get(param)
