"""Simulated process runtime and probe sandbox."""

from repro.runtime.process import Errno, SimProcess
from repro.runtime.sandbox import DEFAULT_PROBE_FUEL, ProbeResult, Sandbox

__all__ = [
    "DEFAULT_PROBE_FUEL",
    "Errno",
    "ProbeResult",
    "Sandbox",
    "SimProcess",
]
