"""Simulated process: address space + heap + stack + errno + fuel.

A :class:`SimProcess` stands in for the OS process that HEALERS' native
fault-injection harness forks for each probe.  It owns all mutable runtime
state, so a probe that corrupts memory is discarded with its process and
the next probe starts clean — the same isolation a fork-per-probe harness
provides.

Fuel is the deterministic replacement for a wall-clock watchdog: simulated
libc loops consume one unit per byte processed, and exceeding the budget
raises :class:`~repro.errors.OutOfFuel`, which the sandbox classifies as a
HANG.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import OutOfFuel, ProcessExit, SegmentationFault
from repro.memory import AddressSpace, CallStack, HeapAllocator, Perm
from repro.runtime.filesystem import SimFileSystem


class Errno:
    """POSIX errno values used by the simulated libc."""

    EPERM = 1
    ENOENT = 2
    EINTR = 4
    EIO = 5
    EBADF = 9
    ENOMEM = 12
    EACCES = 13
    EFAULT = 14
    EEXIST = 17
    EINVAL = 22
    ENFILE = 23
    EMFILE = 24
    ENOSPC = 28
    EPIPE = 32
    EDOM = 33
    ERANGE = 34
    ENAMETOOLONG = 36
    EOVERFLOW = 75

    #: upper bound used by profiling wrappers when bucketing by errno,
    #: mirroring MAX_ERRNO in the generated code of Fig. 3
    MAX_ERRNO = 128

    _NAMES: Dict[int, str] = {}

    @classmethod
    def name(cls, value: int) -> str:
        """Symbolic name for an errno value (or ``errno_<n>``)."""
        if not cls._NAMES:
            cls._NAMES = {
                v: k
                for k, v in vars(cls).items()
                if k.isupper() and isinstance(v, int) and k != "MAX_ERRNO"
            }
        return cls._NAMES.get(value, f"errno_{value}")


class SimProcess:
    """One simulated process instance.

    Parameters mirror what matters for the experiments: heap/stack sizes,
    whether allocator canaries and stack protection are on (security-wrapper
    policies), and the fuel budget (None = unlimited, for normal app runs).
    """

    def __init__(
        self,
        heap_size: int = 1 << 20,
        stack_size: int = 256 * 1024,
        heap_canaries: bool = False,
        stack_protect: bool = False,
        fuel: Optional[int] = None,
        environ: Optional[Dict[str, str]] = None,
    ):
        self.space = AddressSpace()
        #: read-only segment for interned string literals
        self.rodata = self.space.map_region(256 * 1024, Perm.READ, "[rodata]")
        self._rodata_cursor = self.rodata.start
        self._interned: Dict[bytes, int] = {}
        #: writable data segment for statics (environ block, wrapper state)
        self.data = self.space.map_region(256 * 1024, Perm.RW, "[data]")
        self._data_cursor = self.data.start
        self.heap = HeapAllocator(self.space, heap_size, canaries=heap_canaries)
        self.stack = CallStack(self.space, stack_size, protect=stack_protect)
        self.errno = 0
        self.fuel = fuel
        self._fuel_used = 0
        #: fuel pre-drawn for the current request batch (serving fast
        #: path); 0 means no batch is engaged and every consume pays the
        #: full budget comparison
        self._batch_fuel = 0
        self.exit_status: Optional[int] = None
        #: optional :class:`repro.robust.checks.CheckMemo` consulted by the
        #: wrapper check primitives; installed by the fused serving image,
        #: None everywhere else (the primitives then run unmemoized)
        self.check_memo = None
        #: optional ``(function, violation_kind)`` callback fired by the
        #: recovery ``degrade`` action; the serving layer's circuit
        #: breaker listens here, None everywhere else
        self.degrade_hook: Optional[Callable[[str, str], None]] = None
        self.environ: Dict[str, str] = dict(environ or {})
        self._environ_ptrs: Dict[str, int] = {}
        #: in-memory filesystem + FILE stream table (stdio family)
        self.fs = SimFileSystem()
        #: executable region backing simulated function pointers
        self.text = self.space.map_region(64 * 1024, Perm.RX, "[text]")
        self._text_cursor = self.text.start
        self._callbacks: Dict[int, Callable] = {}
        #: PRNG state for rand()/srand()
        self.rand_state = 1

    # ------------------------------------------------------------------
    # simulated function pointers
    # ------------------------------------------------------------------

    def register_callback(self, fn: Callable) -> int:
        """Assign a code address to a Python callable.

        The address lands in the executable [text] mapping; calling through
        any other address simulates a jump to garbage and faults.
        """
        address = self._text_cursor
        if address + 16 > self.text.end:
            raise MemoryError("text segment exhausted")
        self._text_cursor += 16
        self._callbacks[address] = fn
        return address

    def resolve_callback(self, address: int) -> Callable:
        """Callable behind a simulated function pointer.

        Raises :class:`SegmentationFault` for NULL or non-code addresses —
        an indirect call through a corrupted pointer.
        """
        fn = self._callbacks.get(address)
        if fn is None:
            raise SegmentationFault(address, "exec", "call through invalid function pointer")
        return fn

    # ------------------------------------------------------------------
    # fuel
    # ------------------------------------------------------------------

    def consume(self, units: int = 1) -> None:
        """Burn ``units`` of fuel; raises OutOfFuel past the budget."""
        if 0 < units <= self._batch_fuel:
            # inside a pre-drawn batch: the draw already proved the
            # budget covers these units, so skip the comparison
            self._batch_fuel -= units
            self._fuel_used += units
            return
        if units > 0:
            # overran the draw: abandon the batch, resume exact checks
            self._batch_fuel = 0
        self._fuel_used += units
        if self.fuel is not None and self._fuel_used > self.fuel:
            raise OutOfFuel(self._fuel_used)

    def fuel_headroom(self) -> Optional[int]:
        """Units left before the budget trips (None = unlimited).

        Bulk libc paths use this to clamp their side effects to what the
        equivalent unit-at-a-time loop would have completed before running
        out of fuel.
        """
        if self.fuel is None:
            return None
        return max(self.fuel - self._fuel_used, 0)

    def consume_metered(self, units: int) -> None:
        """Burn ``units`` of fuel as ``units`` successive :meth:`consume` calls.

        A single ``consume(units)`` would overshoot the recorded usage when
        the budget trips mid-batch; this stops the meter at the first unit
        past the budget so ``OutOfFuel.consumed`` matches the scalar loop
        exactly.
        """
        if units <= 0:
            return
        if units <= self._batch_fuel:
            self._batch_fuel -= units
            self._fuel_used += units
            return
        self._batch_fuel = 0
        if self.fuel is not None and self._fuel_used + units > self.fuel:
            self._fuel_used = self.fuel + 1
            raise OutOfFuel(self._fuel_used)
        self._fuel_used += units

    # ------------------------------------------------------------------
    # batched fuel accounting (serving request loops)
    # ------------------------------------------------------------------

    def begin_fuel_batch(self, units: int) -> int:
        """Draw up to ``units`` of headroom once for a request batch.

        Returns the drawn amount (0 = batch not engaged).  The draw is a
        single budget comparison: while the batch lasts, ``consume`` and
        ``consume_metered`` skip their per-call budget checks, because
        the draw already proved the whole batch fits the headroom.
        Accounting stays exact — ``fuel_used`` advances per consume, no
        refund is ever needed, and a batch that runs over its draw falls
        back to the exact per-call path, so :class:`OutOfFuel` fires at
        precisely the same consume (with the same ``consumed`` value) as
        unbatched execution.
        """
        if units <= 0:
            return 0
        if self.fuel is not None and self.fuel - self._fuel_used < units:
            return 0
        self._batch_fuel = units
        return units

    def end_fuel_batch(self) -> int:
        """Reconcile the batch: return (and drop) the unused draw."""
        unused = self._batch_fuel
        self._batch_fuel = 0
        return unused

    @property
    def fuel_used(self) -> int:
        """Total fuel consumed so far."""
        return self._fuel_used

    # ------------------------------------------------------------------
    # allocation convenience
    # ------------------------------------------------------------------

    def malloc(self, size: int) -> int:
        """Shorthand for ``self.heap.malloc``."""
        return self.heap.malloc(size)

    def free(self, address: int) -> None:
        """Shorthand for ``self.heap.free``."""
        self.heap.free(address)

    def alloc_bytes(self, data: bytes) -> int:
        """malloc a buffer holding ``data`` exactly (no terminator).

        Uses the fault-exempt allocation path: these helpers stand in
        for data a real binary carries statically, so chaos injection
        does not apply to them.
        """
        address = self.heap.reliable_malloc(max(len(data), 1))
        if address and data:
            self.space.write(address, data)
        return address

    def alloc_cstring(self, value: bytes) -> int:
        """malloc a buffer holding ``value`` plus a NUL terminator."""
        address = self.heap.reliable_malloc(len(value) + 1)
        if address:
            self.space.write_cstring(address, value)
        return address

    def alloc_buffer(self, size: int, fill: int = 0) -> int:
        """malloc ``size`` zero-filled (or ``fill``-filled) bytes."""
        address = self.heap.reliable_malloc(size)
        if address and size:
            self.space.fill(address, fill, size)
        return address

    def intern_cstring(self, value: bytes) -> int:
        """Place ``value`` in the read-only segment (a string literal)."""
        cached = self._interned.get(value)
        if cached is not None:
            return cached
        needed = len(value) + 1
        if self._rodata_cursor + needed > self.rodata.end:
            raise MemoryError("rodata segment exhausted")
        address = self._rodata_cursor
        # write through the mapping directly: rodata is not CPU-writable
        # (still counted as a content mutation for memo invalidation)
        space = self.space
        space.mutations += 1
        if address < space.dirty_lo:
            space.dirty_lo = address
        if address + needed > space.dirty_hi:
            space.dirty_hi = address + needed
        offset = address - self.rodata.start
        self.rodata.data[offset : offset + len(value)] = value
        self.rodata.data[offset + len(value)] = 0
        self._rodata_cursor += needed
        self._interned[value] = address
        return address

    def static_alloc(self, size: int, align: int = 16) -> int:
        """Carve ``size`` bytes out of the writable data segment."""
        cursor = (self._data_cursor + align - 1) & ~(align - 1)
        if cursor + size > self.data.end:
            raise MemoryError("data segment exhausted")
        self._data_cursor = cursor + size
        return cursor

    # ------------------------------------------------------------------
    # strings
    # ------------------------------------------------------------------

    def read_cstring(self, address: int, limit: Optional[int] = None) -> bytes:
        """Read a NUL-terminated string (delegates to the address space)."""
        return self.space.read_cstring(address, limit)

    # ------------------------------------------------------------------
    # environment & exit
    # ------------------------------------------------------------------

    def getenv_ptr(self, name: str) -> int:
        """Pointer to the value of environment variable ``name`` (0 if unset).

        Values are materialised in the data segment on first lookup, so the
        returned pointer stays valid, as getenv(3) guarantees.
        """
        if name not in self.environ:
            return 0
        if name not in self._environ_ptrs:
            value = self.environ[name].encode()
            address = self.static_alloc(len(value) + 1, align=1)
            self.space.write_cstring(address, value)
            self._environ_ptrs[name] = address
        return self._environ_ptrs[name]

    def setenv(self, name: str, value: str) -> None:
        """Set an environment variable (invalidates any cached pointer)."""
        self.environ[name] = value
        self._environ_ptrs.pop(name, None)

    def exit(self, status: int = 0) -> None:
        """Terminate the simulated process."""
        self.exit_status = status
        raise ProcessExit(status)
