"""In-memory filesystem and FILE-stream table for the simulated libc.

The stdio family needs files to operate on; a native HEALERS run uses the
real filesystem, here a per-process in-memory tree stands in.  ``FILE *``
values handed to applications are real heap allocations holding a magic
number and a stream index, so that stdio functions exhibit C-faithful
fragility: passing a garbage ``FILE *`` dereferences it and either faults
or fails the magic check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

FILE_MAGIC = 0xF11E0001
FILE_STRUCT_SIZE = 16  # u32 magic, u32 stream index, u32 flags, u32 pad

#: stream indices for the standard streams
STDIN_INDEX = 0
STDOUT_INDEX = 1
STDERR_INDEX = 2


@dataclass
class OpenStream:
    """State of one open stream."""

    path: str
    mode: str
    position: int = 0
    eof: bool = False
    error: bool = False
    closed: bool = False

    @property
    def readable(self) -> bool:
        return "r" in self.mode or "+" in self.mode

    @property
    def writable(self) -> bool:
        return any(flag in self.mode for flag in "wa+")


@dataclass
class SimFileSystem:
    """Flat in-memory file store plus the process's open-stream table."""

    #: chaos-injection hook (a plain class attribute, not a field): when
    #: set to ``hook(op, index) -> bool``, a True return fails that
    #: file-stream read/write as an I/O error (``stream.error`` set,
    #: ``None`` returned).  Only streams with index >= 3 are eligible —
    #: the standard streams stay deterministic for the scalar/vector
    #: differential suites.
    fault_hook = None

    files: Dict[str, bytearray] = field(default_factory=dict)
    streams: List[Optional[OpenStream]] = field(default_factory=list)
    #: captured writes to stdout/stderr (inspectable by tests and demos)
    stdout: bytearray = field(default_factory=bytearray)
    stderr: bytearray = field(default_factory=bytearray)
    stdin: bytearray = field(default_factory=bytearray)
    _stdin_pos: int = 0

    def __post_init__(self) -> None:
        self.streams = [
            OpenStream(path="<stdin>", mode="r"),
            OpenStream(path="<stdout>", mode="w"),
            OpenStream(path="<stderr>", mode="w"),
        ]

    # ------------------------------------------------------------------
    # file store
    # ------------------------------------------------------------------

    def add_file(self, path: str, content: bytes) -> None:
        """Create (or replace) a file."""
        self.files[path] = bytearray(content)

    def read_file(self, path: str) -> bytes:
        """Whole-file contents (KeyError when missing)."""
        return bytes(self.files[path])

    def exists(self, path: str) -> bool:
        return path in self.files

    # ------------------------------------------------------------------
    # streams
    # ------------------------------------------------------------------

    def open(self, path: str, mode: str) -> Optional[int]:
        """Open a stream; returns its index or None on failure."""
        primary = mode[0] if mode else ""
        if primary not in ("r", "w", "a"):
            return None
        if primary == "r" and path not in self.files:
            return None
        if primary == "w":
            self.files[path] = bytearray()
        if primary == "a" and path not in self.files:
            self.files[path] = bytearray()
        stream = OpenStream(path=path, mode=mode)
        if primary == "a":
            stream.position = len(self.files[path])
        self.streams.append(stream)
        return len(self.streams) - 1

    def stream(self, index: int) -> Optional[OpenStream]:
        """Look up a stream by index; None for invalid/closed indices."""
        if 0 <= index < len(self.streams):
            stream = self.streams[index]
            if stream is not None and not stream.closed:
                return stream
        return None

    def close(self, index: int) -> bool:
        """Close a stream; False when the index is invalid."""
        stream = self.stream(index)
        if stream is None:
            return False
        stream.closed = True
        return True

    def read(self, index: int, count: int) -> Optional[bytes]:
        """Read up to ``count`` bytes from a stream (None = invalid stream)."""
        stream = self.stream(index)
        if stream is None or not stream.readable:
            return None
        if index == STDIN_INDEX:
            data = bytes(self.stdin[self._stdin_pos : self._stdin_pos + count])
            self._stdin_pos += len(data)
            if not data:
                stream.eof = True
            return data
        hook = self.fault_hook
        if hook is not None and index >= 3 and hook("read", index):
            stream.error = True
            return None
        content = self.files.get(stream.path)
        if content is None:
            stream.error = True
            return None
        data = bytes(content[stream.position : stream.position + count])
        stream.position += len(data)
        if not data:
            stream.eof = True
        return data

    def peek(self, index: int, count: int, offset: int = 0) -> Optional[bytes]:
        """Look ahead up to ``count`` bytes at ``offset`` past the position.

        Pure lookahead: never advances the stream and never touches the
        ``eof``/``error`` flags — bulk line scans use it to find the newline,
        then :meth:`read` to consume exactly the bytes the byte-at-a-time
        loop would have, with identical flag side effects.
        """
        stream = self.stream(index)
        if stream is None or not stream.readable:
            return None
        if index == STDIN_INDEX:
            start = self._stdin_pos + offset
            return bytes(self.stdin[start : start + count])
        content = self.files.get(stream.path)
        if content is None:
            return None
        start = stream.position + offset
        return bytes(content[start : start + count])

    def write(self, index: int, data: bytes) -> Optional[int]:
        """Write to a stream; returns bytes written (None = invalid)."""
        stream = self.stream(index)
        if stream is None or not stream.writable:
            return None
        if index == STDOUT_INDEX:
            self.stdout.extend(data)
            return len(data)
        if index == STDERR_INDEX:
            self.stderr.extend(data)
            return len(data)
        hook = self.fault_hook
        if hook is not None and index >= 3 and hook("write", index):
            stream.error = True
            return None
        content = self.files.setdefault(stream.path, bytearray())
        end = stream.position + len(data)
        if end > len(content):
            content.extend(b"\x00" * (end - len(content)))
        content[stream.position : end] = data
        stream.position = end
        return len(data)

    def feed_stdin(self, data: bytes) -> None:
        """Append bytes that subsequent stdin reads will return."""
        self.stdin.extend(data)

    def drain_stdin(self) -> int:
        """Discard un-consumed stdin; returns the bytes dropped.

        The serving supervisor calls this after a request dies
        mid-read, so a half-consumed line cannot bleed into the next
        request's input.
        """
        dropped = len(self.stdin) - self._stdin_pos
        self._stdin_pos = len(self.stdin)
        return dropped

    def stdout_text(self) -> str:
        """Captured stdout decoded for assertions/demos."""
        return self.stdout.decode(errors="replace")
