"""Probe sandbox: run one call, classify its outcome on the CRASH scale.

HEALERS' native harness forks a child per probe, calls the function under
test, and classifies the child's fate (exit / signal / watchdog timeout).
Here each probe runs against a fresh :class:`SimProcess`; the sandbox
catches simulator faults and maps them onto :class:`~repro.errors.Outcome`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.errors import Outcome, ProcessExit, SimulatorError, classify_exception
from repro.runtime.process import SimProcess

#: default fuel budget for a probe; generous enough for any legitimate call
#: on probe-sized inputs, small enough that unterminated scans over a large
#: mapping exhaust it quickly (the ablation bench varies this)
DEFAULT_PROBE_FUEL = 100_000


@dataclass
class ProbeResult:
    """Outcome of one sandboxed call."""

    outcome: Outcome
    value: Any = None
    errno: int = 0
    exception: Optional[BaseException] = None
    fuel_used: int = 0

    @property
    def failed(self) -> bool:
        """True when the probe was a robustness failure (crash/hang/abort)."""
        return self.outcome.is_robustness_failure

    def describe(self) -> str:
        """One-line summary for reports."""
        detail = ""
        if self.exception is not None:
            detail = f": {self.exception}"
        return f"{self.outcome.value}{detail}"

    # ------------------------------------------------------------------
    # portable form (process-pool transport)
    # ------------------------------------------------------------------

    def to_portable(self) -> Dict[str, Any]:
        """Reduce to plain picklable data for cross-process transport.

        ``value`` and the live ``exception`` object are dropped (they may
        reference simulator state); the exception's text survives as
        ``detail``.  Everything derivation and the store consume —
        outcome, errno, fuel — round-trips exactly.
        """
        return {
            "outcome": self.outcome.value,
            "errno": self.errno,
            "fuel_used": self.fuel_used,
            "detail": str(self.exception) if self.exception else "",
        }

    @classmethod
    def from_portable(cls, data: Dict[str, Any]) -> "ProbeResult":
        """Rebuild a result from :meth:`to_portable` output."""
        return cls(
            outcome=Outcome(data["outcome"]),
            errno=int(data.get("errno", 0)),
            fuel_used=int(data.get("fuel_used", 0)),
        )


class Sandbox:
    """Runs callables against a process and classifies what happens.

    The sandbox holds no mutable state of its own — all per-probe state
    lives in the :class:`SimProcess` passed to :meth:`run` — so one
    instance may be shared by concurrent workers (threads) and survives
    ``fork()`` into process-pool workers unchanged.  Classification is a
    pure function of the call's behaviour, which keeps parallel campaign
    verdicts deterministic per worker.
    """

    def __init__(self, error_is_robust: bool = True):
        #: when True, a call that sets errno / returns an error indicator
        #: counts as ERROR (robust); classification of return values is the
        #: caller's job via ``error_detector``
        self.error_is_robust = error_is_robust

    def run(
        self,
        process: SimProcess,
        call: Callable[[], Any],
        error_detector: Optional[Callable[[Any, int], bool]] = None,
    ) -> ProbeResult:
        """Execute ``call`` and classify the result.

        ``error_detector(value, errno)`` decides whether a normal return
        was an error indication (e.g. returned NULL / -1 with errno set).
        """
        fuel_before = process.fuel_used
        errno_before = process.errno
        try:
            value = call()
        except ProcessExit as exc:
            return ProbeResult(
                outcome=Outcome.PASS if exc.status == 0 else Outcome.ERROR,
                value=exc.status,
                errno=process.errno,
                exception=exc,
                fuel_used=process.fuel_used - fuel_before,
            )
        except SimulatorError as exc:
            return ProbeResult(
                outcome=classify_exception(exc),
                exception=exc,
                errno=process.errno,
                fuel_used=process.fuel_used - fuel_before,
            )
        except (RecursionError, ZeroDivisionError, OverflowError) as exc:
            return ProbeResult(
                outcome=Outcome.CRASH,
                exception=exc,
                errno=process.errno,
                fuel_used=process.fuel_used - fuel_before,
            )
        outcome = Outcome.PASS
        errno_now = process.errno
        if self.error_is_robust:
            if error_detector is not None and error_detector(value, errno_now):
                outcome = Outcome.ERROR
            elif errno_now != errno_before and errno_now != 0:
                outcome = Outcome.ERROR
        return ProbeResult(
            outcome=outcome,
            value=value,
            errno=errno_now,
            fuel_used=process.fuel_used - fuel_before,
        )
