"""The HEALERS toolkit facade."""

from repro.core.config import AppPolicy, DeploymentConfig
from repro.core.toolkit import ApplicationScan, Healers, LibraryScan

__all__ = [
    "AppPolicy",
    "ApplicationScan",
    "DeploymentConfig",
    "Healers",
    "LibraryScan",
]
