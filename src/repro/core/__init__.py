"""The HEALERS toolkit facade."""

from repro.core.config import (
    AppPolicy,
    CampaignSettings,
    CollectionSettings,
    DeploymentConfig,
    TelemetrySettings,
)
from repro.core.toolkit import ApplicationScan, Healers, LibraryScan

__all__ = [
    "AppPolicy",
    "ApplicationScan",
    "CampaignSettings",
    "CollectionSettings",
    "DeploymentConfig",
    "Healers",
    "LibraryScan",
    "TelemetrySettings",
]
