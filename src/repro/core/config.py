"""Per-application wrapper deployment configuration.

The flexibility requirement from Section 1: "Different applications may
have different reliability and security requirements and need different
levels of protection.  An one size fits all approach would not work."
Fig. 1 realises it by giving each application its own wrapper selection;
this module makes that selection declarative — an XML deployment file a
system administrator maintains, the moral equivalent of per-service
``LD_PRELOAD`` settings:

.. code-block:: xml

    <healers-deployment>
      <application path="/sbin/authd" wrappers="security"/>
      <application path="/bin/wordcount" wrappers="robustness"
                   functions="strcpy,strcat,sprintf"/>
      <default wrappers="logging"/>
    </healers-deployment>
"""

from __future__ import annotations

import os
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.recovery import RecoveryPolicy
from repro.wrappers import PRESETS

#: execution backends the campaign engine supports (mirrors
#: :data:`repro.injection.executor.BACKENDS` without importing it —
#: config must stay import-light)
CAMPAIGN_BACKENDS = ("serial", "thread", "process")


@dataclass
class CampaignSettings:
    """How fault-injection campaigns execute on this deployment.

    The paper's sweep runs "once per library release"; an administrator
    tunes *how* it runs here — worker count, pool backend, and where the
    probe-result cache lives so interrupted or repeated sweeps resume
    instead of restarting:

    .. code-block:: xml

        <campaign jobs="8" backend="process"
                  cache="/var/lib/healers/probe-cache.xml" resume="true"/>
    """

    #: worker count; 0 means one worker per CPU
    jobs: int = 1
    backend: str = "thread"
    #: probe-result cache file ("" = no persistent cache)
    cache_path: str = ""
    #: load the cache before running, so only deltas execute
    resume: bool = False
    #: wall-clock seconds before a hung work unit's probes become HANGs
    #: (0 = no watchdog)
    watchdog: float = 0.0
    #: resubmissions granted to a unit whose worker died
    unit_retries: int = 2

    def validate(self) -> None:
        if self.backend not in CAMPAIGN_BACKENDS:
            raise ValueError(
                f"unknown campaign backend {self.backend!r}; "
                f"known: {', '.join(CAMPAIGN_BACKENDS)}"
            )
        if self.jobs < 0:
            raise ValueError(f"campaign jobs must be >= 0, got {self.jobs}")
        if self.resume and not self.cache_path:
            raise ValueError("campaign resume requires a cache path")
        if self.watchdog < 0:
            raise ValueError(
                f"campaign watchdog must be >= 0, got {self.watchdog}"
            )
        if self.unit_retries < 0:
            raise ValueError(
                f"campaign unit-retries must be >= 0, "
                f"got {self.unit_retries}"
            )

    def effective_jobs(self) -> int:
        """The concrete worker count (resolving 0 = all CPUs)."""
        return self.jobs if self.jobs > 0 else (os.cpu_count() or 1)

    # ------------------------------------------------------------------
    # XML round trip (an element of the deployment file)
    # ------------------------------------------------------------------

    @classmethod
    def from_node(cls, node: ET.Element) -> "CampaignSettings":
        settings = cls(
            jobs=int(node.get("jobs", "1")),
            backend=node.get("backend", "thread"),
            cache_path=node.get("cache", ""),
            resume=node.get("resume", "false").lower()
            in ("true", "yes", "1"),
            watchdog=float(node.get("watchdog", "0")),
            unit_retries=int(node.get("unit-retries", "2")),
        )
        settings.validate()
        return settings

    def to_node(self, parent: ET.Element) -> ET.Element:
        node = ET.SubElement(parent, "campaign", jobs=str(self.jobs),
                             backend=self.backend)
        if self.cache_path:
            node.set("cache", self.cache_path)
        if self.resume:
            node.set("resume", "true")
        if self.watchdog:
            node.set("watchdog", f"{self.watchdog:g}")
        if self.unit_retries != 2:
            node.set("unit-retries", str(self.unit_retries))
        return node


#: sink kinds TelemetrySettings can instantiate
TELEMETRY_SINK_KINDS = ("jsonl", "metrics", "collection")


@dataclass
class TelemetrySettings:
    """How wrapper/campaign telemetry flows on this deployment.

    Each sink spec is ``kind`` or ``kind:argument``:

    * ``jsonl:PATH``            — append one JSON object per event;
    * ``metrics``               — in-process counters and p50/p99;
    * ``collection:HOST:PORT``  — batched, retrying shipment of profile
      documents to the collection server.

    .. code-block:: xml

        <telemetry sinks="jsonl:/var/log/healers.jsonl,metrics"
                   batch-size="256" flush-interval="0.5"/>
    """

    sinks: List[str] = field(default_factory=list)
    #: events buffered per bus before an inline flush
    batch_size: int = 256
    #: seconds between shipper drains (collection sink only)
    flush_interval: float = 0.5

    def validate(self) -> None:
        if self.batch_size < 1:
            raise ValueError(
                f"telemetry batch size must be >= 1, got {self.batch_size}"
            )
        if self.flush_interval <= 0:
            raise ValueError(
                f"telemetry flush interval must be > 0, "
                f"got {self.flush_interval}"
            )
        for spec in self.sinks:
            kind, _, argument = spec.partition(":")
            if kind not in TELEMETRY_SINK_KINDS:
                raise ValueError(
                    f"unknown telemetry sink {kind!r}; "
                    f"known: {', '.join(TELEMETRY_SINK_KINDS)}"
                )
            if kind == "jsonl" and not argument:
                raise ValueError("jsonl sink requires a path: jsonl:PATH")
            if kind == "collection":
                host, _, port = argument.rpartition(":")
                if not host or not port.isdigit():
                    raise ValueError(
                        "collection sink requires collection:HOST:PORT"
                    )

    # ------------------------------------------------------------------
    # sink construction (imports stay lazy: config is import-light)
    # ------------------------------------------------------------------

    def build_sinks(self) -> list:
        """Instantiate the configured sinks (order preserved)."""
        from repro.telemetry import CollectionSink, JsonlSink, MetricsSink

        built = []
        for spec in self.sinks:
            kind, _, argument = spec.partition(":")
            if kind == "jsonl":
                built.append(JsonlSink(argument))
            elif kind == "metrics":
                built.append(MetricsSink())
            elif kind == "collection":
                host, _, port = argument.rpartition(":")
                built.append(
                    CollectionSink((host, int(port)),
                                   flush_interval=self.flush_interval)
                )
        return built

    def build_bus(self, extra_sinks=()) -> "object":
        """An :class:`~repro.telemetry.EventBus` over the built sinks."""
        from repro.telemetry import EventBus

        return EventBus(capacity=self.batch_size,
                        sinks=[*self.build_sinks(), *extra_sinks])

    # ------------------------------------------------------------------
    # XML round trip (an element of the deployment file)
    # ------------------------------------------------------------------

    @classmethod
    def from_node(cls, node: ET.Element) -> "TelemetrySettings":
        settings = cls(
            sinks=[spec.strip()
                   for spec in node.get("sinks", "").split(",")
                   if spec.strip()],
            batch_size=int(node.get("batch-size", "256")),
            flush_interval=float(node.get("flush-interval", "0.5")),
        )
        settings.validate()
        return settings

    def to_node(self, parent: ET.Element) -> ET.Element:
        node = ET.SubElement(parent, "telemetry",
                             {"batch-size": str(self.batch_size),
                              "flush-interval": str(self.flush_interval)})
        if self.sinks:
            node.set("sinks", ",".join(self.sinks))
        return node


#: collection server backends a deployment may select
COLLECTION_BACKENDS = ("fabric", "legacy")


@dataclass
class CollectionSettings:
    """How the deployment's collection service ingests documents.

    ``backend="fabric"`` selects the sharded non-blocking
    :class:`~repro.collection.fabric.IngestServer` (credit-based
    backpressure, write-ahead spool, fleet aggregation);
    ``backend="legacy"`` keeps the thread-per-connection reference
    server.

    .. code-block:: xml

        <collection host="0.0.0.0" port="7433" backend="fabric"
                    shards="4" credit-limit="64"
                    spool-dir="/var/spool/healers" fsync="true"/>
    """

    host: str = "127.0.0.1"
    port: int = 0
    backend: str = "fabric"
    #: ingest shard workers (fabric backend only)
    shards: int = 4
    #: un-acked documents per connection before reads pause
    credit_limit: int = 64
    #: write-ahead spool directory (empty = spooling off)
    spool_dir: str = ""
    #: fsync spool segments before acking (the zero-loss guarantee)
    fsync: bool = True
    #: deployment key HMAC-chaining spool records (empty = CRC only);
    #: replay then refuses forged or spliced records
    spool_key: str = ""

    def validate(self) -> None:
        if self.backend not in COLLECTION_BACKENDS:
            raise ValueError(
                f"unknown collection backend {self.backend!r}; "
                f"known: {', '.join(COLLECTION_BACKENDS)}"
            )
        if not (0 <= self.port <= 65535):
            raise ValueError(
                f"collection port must be 0..65535, got {self.port}"
            )
        if self.shards < 1:
            raise ValueError(
                f"collection shards must be >= 1, got {self.shards}"
            )
        if self.credit_limit < 1:
            raise ValueError(
                f"collection credit limit must be >= 1, "
                f"got {self.credit_limit}"
            )

    def build_server(self):
        """Instantiate (not start) the configured server backend."""
        if self.backend == "legacy":
            from repro.collection.server import CollectionServer
            return CollectionServer(host=self.host, port=self.port)
        from repro.collection.fabric import IngestServer
        return IngestServer(
            host=self.host, port=self.port, shards=self.shards,
            spool_dir=self.spool_dir or None,
            credit_limit=self.credit_limit, fsync=self.fsync,
            spool_key=self.spool_key.encode() if self.spool_key else None,
        )

    # ------------------------------------------------------------------
    # XML round trip (an element of the deployment file)
    # ------------------------------------------------------------------

    @classmethod
    def from_node(cls, node: ET.Element) -> "CollectionSettings":
        settings = cls(
            host=node.get("host", "127.0.0.1"),
            port=int(node.get("port", "0")),
            backend=node.get("backend", "fabric"),
            shards=int(node.get("shards", "4")),
            credit_limit=int(node.get("credit-limit", "64")),
            spool_dir=node.get("spool-dir", ""),
            fsync=node.get("fsync", "true").lower() != "false",
            spool_key=node.get("spool-key", ""),
        )
        settings.validate()
        return settings

    def to_node(self, parent: ET.Element) -> ET.Element:
        node = ET.SubElement(
            parent, "collection",
            {"host": self.host, "port": str(self.port),
             "backend": self.backend, "shards": str(self.shards),
             "credit-limit": str(self.credit_limit),
             "fsync": "true" if self.fsync else "false"})
        if self.spool_dir:
            node.set("spool-dir", self.spool_dir)
        if self.spool_key:
            node.set("spool-key", self.spool_key)
        return node


@dataclass
class AppPolicy:
    """Wrapper selection for one application (or the default)."""

    path: str
    wrappers: List[str] = field(default_factory=list)
    #: restrict wrapping to these functions (empty = whole library)
    functions: List[str] = field(default_factory=list)

    def validate(self) -> None:
        for name in self.wrappers:
            if name not in PRESETS:
                raise ValueError(
                    f"unknown wrapper {name!r} for {self.path or 'default'}; "
                    f"known: {', '.join(sorted(PRESETS))}"
                )


@dataclass
class DeploymentConfig:
    """The whole deployment file."""

    policies: Dict[str, AppPolicy] = field(default_factory=dict)
    default: Optional[AppPolicy] = None
    #: how injection campaigns run on this deployment
    campaign: CampaignSettings = field(default_factory=CampaignSettings)
    #: where wrapper/campaign telemetry flows on this deployment
    telemetry: TelemetrySettings = field(default_factory=TelemetrySettings)
    #: how the deployment's collection service ingests documents
    collection: CollectionSettings = field(
        default_factory=CollectionSettings)
    #: how wrappers respond to violations (None = legacy terminate/contain)
    recovery: Optional[RecoveryPolicy] = None

    def policy_for(self, path: str) -> Optional[AppPolicy]:
        """The policy governing an application path (explicit or default)."""
        return self.policies.get(path, self.default)

    # ------------------------------------------------------------------
    # XML round trip
    # ------------------------------------------------------------------

    @classmethod
    def from_xml(cls, text: str) -> "DeploymentConfig":
        root = ET.fromstring(text)
        if root.tag != "healers-deployment":
            raise ValueError(
                f"not a deployment file (root {root.tag!r})"
            )
        config = cls()
        for node in root.findall("application"):
            policy = _policy_from_node(node, require_path=True)
            config.policies[policy.path] = policy
        default_node = root.find("default")
        if default_node is not None:
            config.default = _policy_from_node(default_node,
                                               require_path=False)
        campaign_node = root.find("campaign")
        if campaign_node is not None:
            config.campaign = CampaignSettings.from_node(campaign_node)
        telemetry_node = root.find("telemetry")
        if telemetry_node is not None:
            config.telemetry = TelemetrySettings.from_node(telemetry_node)
        collection_node = root.find("collection")
        if collection_node is not None:
            config.collection = CollectionSettings.from_node(
                collection_node)
        recovery_node = root.find("recovery")
        if recovery_node is not None:
            config.recovery = RecoveryPolicy.from_node(recovery_node)
        return config

    def to_xml(self) -> str:
        root = ET.Element("healers-deployment")
        for path in sorted(self.policies):
            policy = self.policies[path]
            node = ET.SubElement(root, "application", path=path,
                                 wrappers=",".join(policy.wrappers))
            if policy.functions:
                node.set("functions", ",".join(policy.functions))
        if self.default is not None:
            node = ET.SubElement(root, "default",
                                 wrappers=",".join(self.default.wrappers))
            if self.default.functions:
                node.set("functions", ",".join(self.default.functions))
        if self.campaign != CampaignSettings():
            self.campaign.to_node(root)
        if self.telemetry != TelemetrySettings():
            self.telemetry.to_node(root)
        if self.collection != CollectionSettings():
            self.collection.to_node(root)
        if self.recovery is not None:
            self.recovery.to_node(root)
        ET.indent(root)
        return ET.tostring(root, encoding="unicode", xml_declaration=True)


def _policy_from_node(node: ET.Element, require_path: bool) -> AppPolicy:
    path = node.get("path", "")
    if require_path and not path:
        raise ValueError("<application> requires a path attribute")
    wrappers = [
        name.strip() for name in node.get("wrappers", "").split(",")
        if name.strip()
    ]
    functions = [
        name.strip() for name in node.get("functions", "").split(",")
        if name.strip()
    ]
    policy = AppPolicy(path=path, wrappers=wrappers, functions=functions)
    policy.validate()
    return policy
