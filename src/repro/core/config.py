"""Per-application wrapper deployment configuration.

The flexibility requirement from Section 1: "Different applications may
have different reliability and security requirements and need different
levels of protection.  An one size fits all approach would not work."
Fig. 1 realises it by giving each application its own wrapper selection;
this module makes that selection declarative — an XML deployment file a
system administrator maintains, the moral equivalent of per-service
``LD_PRELOAD`` settings:

.. code-block:: xml

    <healers-deployment>
      <application path="/sbin/authd" wrappers="security"/>
      <application path="/bin/wordcount" wrappers="robustness"
                   functions="strcpy,strcat,sprintf"/>
      <default wrappers="logging"/>
    </healers-deployment>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.wrappers import PRESETS


@dataclass
class AppPolicy:
    """Wrapper selection for one application (or the default)."""

    path: str
    wrappers: List[str] = field(default_factory=list)
    #: restrict wrapping to these functions (empty = whole library)
    functions: List[str] = field(default_factory=list)

    def validate(self) -> None:
        for name in self.wrappers:
            if name not in PRESETS:
                raise ValueError(
                    f"unknown wrapper {name!r} for {self.path or 'default'}; "
                    f"known: {', '.join(sorted(PRESETS))}"
                )


@dataclass
class DeploymentConfig:
    """The whole deployment file."""

    policies: Dict[str, AppPolicy] = field(default_factory=dict)
    default: Optional[AppPolicy] = None

    def policy_for(self, path: str) -> Optional[AppPolicy]:
        """The policy governing an application path (explicit or default)."""
        return self.policies.get(path, self.default)

    # ------------------------------------------------------------------
    # XML round trip
    # ------------------------------------------------------------------

    @classmethod
    def from_xml(cls, text: str) -> "DeploymentConfig":
        root = ET.fromstring(text)
        if root.tag != "healers-deployment":
            raise ValueError(
                f"not a deployment file (root {root.tag!r})"
            )
        config = cls()
        for node in root.findall("application"):
            policy = _policy_from_node(node, require_path=True)
            config.policies[policy.path] = policy
        default_node = root.find("default")
        if default_node is not None:
            config.default = _policy_from_node(default_node,
                                               require_path=False)
        return config

    def to_xml(self) -> str:
        root = ET.Element("healers-deployment")
        for path in sorted(self.policies):
            policy = self.policies[path]
            node = ET.SubElement(root, "application", path=path,
                                 wrappers=",".join(policy.wrappers))
            if policy.functions:
                node.set("functions", ",".join(policy.functions))
        if self.default is not None:
            node = ET.SubElement(root, "default",
                                 wrappers=",".join(self.default.wrappers))
            if self.default.functions:
                node.set("functions", ",".join(self.default.functions))
        ET.indent(root)
        return ET.tostring(root, encoding="unicode", xml_declaration=True)


def _policy_from_node(node: ET.Element, require_path: bool) -> AppPolicy:
    path = node.get("path", "")
    if require_path and not path:
        raise ValueError("<application> requires a path attribute")
    wrappers = [
        name.strip() for name in node.get("wrappers", "").split(",")
        if name.strip()
    ]
    functions = [
        name.strip() for name in node.get("functions", "").split(",")
        if name.strip()
    ]
    policy = AppPolicy(path=path, wrappers=wrappers, functions=functions)
    policy.validate()
    return policy
