"""The HEALERS toolkit facade.

One object wiring the whole pipeline together, in the order the paper's
demonstrations walk it:

* **demo 3.1** — :meth:`list_libraries`, :meth:`scan_library`,
  :meth:`declaration_file`;
* **demo 3.2** — :meth:`scan_application`;
* **Fig. 2**   — :meth:`extract_prototypes`, :meth:`run_fault_injection`,
  :meth:`derive_robust_api`;
* **Fig. 1/3** — :meth:`generate_wrapper`, :meth:`wrapper_source`,
  :meth:`preload`;
* **demo 3.3** — :meth:`profile_run`, :meth:`collect`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.apps import SimApp, standard_system
from repro.apps.base import AppResult, run_app
from repro.headers.corpus import parse_include_tree, render_include_tree
from repro.headers.model import Prototype
from repro.injection import (
    Campaign,
    CampaignResult,
    CampaignStats,
    ProbeCache,
    ProbeExecutor,
)
from repro.injection.campaign import ProbeObserver
from repro.libc import LibcRegistry, math_registry, standard_registry
from repro.linker import DynamicLinker
from repro.manpages import load_corpus
from repro.manpages.model import ManPage
from repro.objfile import ObjFormatError, SimELF, SimSystem
from repro.profiling import ProfileDocument
from repro.robust import RobustAPIDocument, derive_api
from repro.robust.derivation import FunctionDerivation
from repro.security.policy import SecurityPolicy
from repro.telemetry import DocumentReady, EventBus, MetricsSink, Sink
from repro.wrappers import (
    BuiltWrapper,
    PRESETS,
    WrapperFactory,
    WrapperSpec,
    default_generator_registry,
    render_library,
    units_for,
)


@dataclass
class LibraryScan:
    """Demo 3.1 output: one library's function inventory."""

    path: str
    soname: str
    functions: List[str]
    prototyped: int

    @property
    def function_count(self) -> int:
        return len(self.functions)


@dataclass
class ApplicationScan:
    """Demo 3.2 output: an application's linkage inventory."""

    path: str
    dynamically_linked: bool
    needed: List[str] = field(default_factory=list)
    resolved_libraries: Dict[str, str] = field(default_factory=dict)
    missing_libraries: List[str] = field(default_factory=list)
    undefined_functions: List[str] = field(default_factory=list)
    wrappable: List[str] = field(default_factory=list)
    unwrappable: List[str] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        """Share of imported functions the toolkit can wrap."""
        if not self.undefined_functions:
            return 1.0
        return len(self.wrappable) / len(self.undefined_functions)


class Healers:
    """The toolkit: scanning, injection, derivation, generation."""

    def __init__(
        self,
        system: Optional[SimSystem] = None,
        linker: Optional[DynamicLinker] = None,
        registry: Optional[LibcRegistry] = None,
        manpages: Optional[Dict[str, ManPage]] = None,
        security_policy: Optional[SecurityPolicy] = None,
        telemetry=None,
    ):
        #: whether the registry is the stock libc (then process-pool
        #: campaign workers can rebuild it from the module-level factory)
        self._registry_is_standard = registry is None
        self.registry = registry or standard_registry()
        #: secondary wrappable libraries by soname (libm out of the box)
        self.extra_registries: Dict[str, LibcRegistry] = {}
        math = math_registry()
        self.extra_registries[math.library_name] = math
        if system is None or linker is None:
            system_, linker_ = standard_system(self.registry)
            system = system if system is not None else system_
            linker = linker if linker is not None else linker_
        self.system = system
        self.linker = linker
        self.manpages = manpages if manpages is not None else load_corpus()
        self.security_policy = security_policy or SecurityPolicy()
        self._generator_registry = default_generator_registry(
            self.security_policy
        )
        #: populated by derive_robust_api / build_declaration_document
        self.api_document: Optional[RobustAPIDocument] = None
        self.derivations: Dict[str, FunctionDerivation] = {}
        self.campaign_result: Optional[CampaignResult] = None
        #: execution accounting of the most recent campaign
        self.campaign_stats: Optional[CampaignStats] = None
        #: the toolkit-level telemetry pipeline: every wrapper library
        #: built here and every campaign emits into this bus (plus the
        #: per-library StateSink that keeps Fig. 5 intact)
        self.telemetry_settings = None
        self.telemetry_sinks: List[Sink] = []
        self.telemetry: EventBus = EventBus()
        if telemetry is not None:
            self.configure_telemetry(telemetry)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------

    def configure_telemetry(self, settings) -> EventBus:
        """Install a :class:`~repro.core.config.TelemetrySettings`.

        Rebuilds the toolkit bus over the configured sinks; wrapper
        libraries built afterwards share those sinks (each keeps its own
        ``StateSink``).  Accepts a live :class:`EventBus` as well.
        """
        if isinstance(settings, EventBus):
            self.telemetry_settings = None
            self.telemetry = settings
            self.telemetry_sinks = settings.sinks
            return settings
        settings.validate()
        self.telemetry_settings = settings
        self.telemetry_sinks = settings.build_sinks()
        self.telemetry = EventBus(capacity=settings.batch_size,
                                  sinks=self.telemetry_sinks)
        return self.telemetry

    def add_telemetry_sink(self, sink: Sink) -> Sink:
        """Attach one more sink to the toolkit pipeline."""
        self.telemetry_sinks.append(sink)
        self.telemetry.subscribe(sink)
        return sink

    def metrics_sink(self) -> Optional[MetricsSink]:
        """The first configured MetricsSink, if any."""
        for sink in self.telemetry_sinks:
            if isinstance(sink, MetricsSink):
                return sink
        return None

    def close_telemetry(self) -> None:
        """Flush and close the toolkit bus and every attached sink."""
        self.telemetry.close()

    # ------------------------------------------------------------------
    # demo 3.1: library scanning
    # ------------------------------------------------------------------

    def list_libraries(self) -> List[LibraryScan]:
        """All shared objects on the system with their function lists."""
        return [self.scan_library(image.path)
                for image in self.system.list_libraries()]

    def scan_library(self, path: str) -> LibraryScan:
        """Parse one shared object and list the functions it defines."""
        image = SimELF.parse(self.system.read(path), path=path)
        if not image.is_shared_object:
            raise ObjFormatError(f"{path} is not a shared object")
        prototyped = sum(
            1 for name in image.defined if self._registry_with(name)
        )
        return LibraryScan(
            path=path,
            soname=image.soname,
            functions=list(image.defined),
            prototyped=prototyped,
        )

    def declaration_file(self, path: str) -> str:
        """The XML declaration file for a library (demo 3.1's artifact)."""
        scan = self.scan_library(path)
        if scan.soname == self.registry.library_name:
            document = self.build_declaration_document()
        elif scan.soname in self.extra_registries:
            document = RobustAPIDocument.build(
                self.extra_registries[scan.soname], self.manpages
            )
        else:
            # a library we have no implementations for: names only
            document = RobustAPIDocument(library=scan.soname)
        return document.to_xml()

    def _registry_with(self, name: str) -> Optional[LibcRegistry]:
        """The registry (primary or extra) defining ``name``, if any."""
        if name in self.registry:
            return self.registry
        for registry in self.extra_registries.values():
            if name in registry:
                return registry
        return None

    # ------------------------------------------------------------------
    # demo 3.2: application scanning
    # ------------------------------------------------------------------

    def list_applications(self) -> List[str]:
        return [image.path for image in self.system.list_applications()]

    def scan_application(self, path: str) -> ApplicationScan:
        """Extract linked libraries and undefined functions of a binary."""
        image = SimELF.parse(self.system.read(path), path=path)
        if not image.is_executable:
            raise ObjFormatError(f"{path} is not an executable")
        scan = ApplicationScan(
            path=path,
            dynamically_linked=image.is_dynamically_linked,
            needed=list(image.needed),
            undefined_functions=sorted(image.undefined),
        )
        for soname in image.needed:
            found = self.system.find_by_soname(soname)
            if found is None:
                scan.missing_libraries.append(soname)
            else:
                scan.resolved_libraries[soname] = found.path
        for name in scan.undefined_functions:
            if self._registry_with(name) is not None:
                scan.wrappable.append(name)
            else:
                scan.unwrappable.append(name)
        return scan

    # ------------------------------------------------------------------
    # Fig. 2: prototypes → injection → robust API
    # ------------------------------------------------------------------

    def extract_prototypes(self) -> List[Prototype]:
        """Parse the simulated /usr/include tree (the pipeline's stage 1).

        The headers are rendered from all wrappable libraries'
        declarations (libc + libm out of the box) and then *parsed back*
        with the C declaration parser, so this stage runs the same code a
        native deployment would run over /usr/include.
        """
        prototypes = list(self.registry.prototypes())
        for registry in self.extra_registries.values():
            prototypes.extend(registry.prototypes())
        tree = render_include_tree(prototypes)
        return parse_include_tree(tree)

    def run_fault_injection(
        self,
        functions: Optional[Iterable[str]] = None,
        fuel: Optional[int] = None,
        jobs: int = 1,
        backend: str = "serial",
        cache: "Optional[str | ProbeCache]" = None,
        resume: bool = False,
        observer: Optional[ProbeObserver] = None,
        watchdog: Optional[float] = None,
        unit_retries: int = 2,
    ) -> CampaignResult:
        """Run the automated fault-injection experiments.

        The default is the paper's serial sweep.  ``jobs``/``backend``
        fan the probe matrix out over a worker pool, and ``cache`` (a
        path or a live :class:`ProbeCache`) makes runs resumable: with
        ``resume=True`` verdicts cached for this library release are
        reused and only new probes execute.  A path-backed cache is
        written back after the run.  ``watchdog`` bounds each work
        unit's host wall time (hung probes become HANG verdicts) and
        ``unit_retries`` bounds resubmission after a worker death.
        Execution accounting lands in :attr:`campaign_stats`.
        """
        kwargs = {}
        if fuel is not None:
            kwargs["fuel"] = fuel
        campaign = Campaign(self.registry, manpages=self.manpages,
                            observer=observer, **kwargs)

        cache_path = cache if isinstance(cache, str) else ""
        if isinstance(cache, ProbeCache):
            probe_cache: Optional[ProbeCache] = cache
        elif cache_path:
            if resume:
                probe_cache = ProbeCache.load_or_create(cache_path,
                                                        self.registry)
            else:
                probe_cache = ProbeCache.for_registry(self.registry)
        else:
            probe_cache = None

        executor = ProbeExecutor(
            campaign,
            jobs=jobs,
            backend=backend,
            cache=probe_cache,
            registry_factory=(standard_registry
                              if self._registry_is_standard else None),
            bus=self.telemetry,
            watchdog=watchdog,
            unit_retries=unit_retries,
        )
        self.campaign_result = executor.run(functions)
        self.campaign_stats = executor.stats
        if cache_path and probe_cache is not None:
            probe_cache.save(cache_path)
        self.telemetry.flush()
        return self.campaign_result

    def derive_robust_api(
        self, result: Optional[CampaignResult] = None
    ) -> RobustAPIDocument:
        """Derive weakest robust types and build the declaration document."""
        result = result or self.campaign_result
        if result is None:
            result = self.run_fault_injection()
        self.derivations = derive_api(result, self.registry, self.manpages)
        self.api_document = RobustAPIDocument.build(
            self.registry, self.manpages, self.derivations
        )
        return self.api_document

    def build_declaration_document(self) -> RobustAPIDocument:
        """The declaration document, with derivations when available."""
        if self.api_document is None:
            self.api_document = RobustAPIDocument.build(
                self.registry, self.manpages, self.derivations or None
            )
        return self.api_document

    def build_introspected_document(self) -> RobustAPIDocument:
        """The *full-coverage* declaration document (ROADMAP item 5).

        Every primary-registry function receives an introspection-derived
        :class:`~repro.robust.introspect.CheckPlan` — campaign verdicts
        where :attr:`derivations` has them, static role/ctype derivation
        everywhere else.  The document becomes the toolkit's active one,
        so wrappers built afterwards (robustness, hardened, …) check all
        functions instead of the probed subset.
        """
        self.api_document = RobustAPIDocument.build_introspected(
            self.registry, self.manpages, self.derivations or None
        )
        return self.api_document

    def all_check_plans(self):
        """Check plans across every wrappable library (libc + libm).

        The primary registry folds in campaign derivations when
        available; extra registries get static plans.  This is the
        123/123 coverage set the ``derive-checks`` subcommand reports.
        """
        from repro.robust.introspect import derive_check_plans

        plans = derive_check_plans(self.registry, self.manpages,
                                   self.derivations or None)
        for registry in self.extra_registries.values():
            plans.update(derive_check_plans(registry, self.manpages))
        return plans

    # ------------------------------------------------------------------
    # wrapper generation (Fig. 1 / Fig. 3)
    # ------------------------------------------------------------------

    def _factory(self) -> WrapperFactory:
        return WrapperFactory(
            self.registry,
            self.build_declaration_document(),
            generators=self._generator_registry,
        )

    def resolve_spec(self, wrapper: "str | WrapperSpec") -> WrapperSpec:
        if isinstance(wrapper, WrapperSpec):
            return wrapper
        try:
            return PRESETS[wrapper]
        except KeyError:
            raise KeyError(
                f"unknown wrapper preset {wrapper!r}; "
                f"known: {', '.join(sorted(PRESETS))}"
            ) from None

    def generate_wrapper(
        self,
        wrapper: "str | WrapperSpec",
        functions: Optional[Sequence[str]] = None,
        backend: str = "compiled",
    ) -> BuiltWrapper:
        """Build a wrapper library (not yet preloaded).

        The library's bus carries its own ``StateSink`` plus whatever
        sinks :meth:`configure_telemetry` installed, so one JSONL trace
        or metrics view spans every wrapper the toolkit builds.
        ``backend`` selects the composition strategy (``"compiled"``
        fast-path closures or the ``"interpreted"`` reference loop).
        """
        capacity = (self.telemetry_settings.batch_size
                    if self.telemetry_settings is not None else 256)
        return self._factory().build_library(
            self.linker, self.resolve_spec(wrapper), functions=functions,
            sinks=self.telemetry_sinks, bus_capacity=capacity,
            backend=backend,
        )

    def preload(
        self,
        wrapper: "str | WrapperSpec",
        functions: Optional[Sequence[str]] = None,
        backend: str = "compiled",
    ) -> BuiltWrapper:
        """Build a wrapper library and LD_PRELOAD it into the linker."""
        built = self.generate_wrapper(wrapper, functions, backend=backend)
        self.linker.preload(built.library)
        return built

    def clear_preloads(self) -> None:
        self.linker.clear_preloads()

    def wrapper_source(
        self,
        wrapper: "str | WrapperSpec",
        functions: Optional[Sequence[str]] = None,
    ) -> str:
        """The generated C source of a wrapper library (Fig. 3 text)."""
        spec = self.resolve_spec(wrapper)
        factory = self._factory()
        names = list(functions) if functions else self.registry.names()
        units, _ = units_for(factory, names)
        generators = factory.resolve_spec(spec)
        return render_library(units, generators,
                              soname=f"libhealers_{spec.name}.so")

    # ------------------------------------------------------------------
    # demo 3.3: profiling runs
    # ------------------------------------------------------------------

    def profile_run(
        self,
        app: SimApp,
        argv: Optional[List[str]] = None,
        stdin: bytes = b"",
        files: Optional[Dict[str, bytes]] = None,
        wrapper: "str | WrapperSpec" = "profiling",
    ) -> Tuple[AppResult, ProfileDocument]:
        """Run an app under a fresh wrapper; return run + XML document."""
        built = self.preload(wrapper)
        try:
            result = run_app(app, self.linker, argv=argv, stdin=stdin,
                             files=files)
        finally:
            self.linker.clear_preloads()
        document = ProfileDocument.from_state(
            built.state, application=app.name,
            wrapper_type=built.spec.name,
            library=self.registry.library_name,
        )
        # the rendered document enters the pipeline too, so a configured
        # CollectionSink ships it (batched) without any extra plumbing
        self.telemetry.emit(
            DocumentReady(application=app.name, xml=document.to_xml())
        )
        self.telemetry.flush()
        return result, document

    def run(self, app: SimApp, **kwargs) -> AppResult:
        """Run an app under the current linker configuration."""
        return run_app(app, self.linker, **kwargs)

    # ------------------------------------------------------------------
    # declarative deployment (the Fig. 1 per-app wrapper selection)
    # ------------------------------------------------------------------

    def apply_deployment(self, config, app_path: str) -> List[BuiltWrapper]:
        """Preload the wrappers a deployment file assigns to one app.

        Returns the built wrappers (empty when no policy applies);
        callers pair this with :meth:`clear_preloads` between apps.
        """
        from repro.core.config import DeploymentConfig

        assert isinstance(config, DeploymentConfig)
        if config.recovery is not None:
            # deployment-selected recovery: the generator registry holds
            # a live reference to the policy object, so mutating it here
            # reaches every wrapper built afterwards
            self.security_policy.recovery = config.recovery
        policy = config.policy_for(app_path)
        if policy is None:
            return []
        return [
            self.preload(preset, policy.functions or None)
            for preset in policy.wrappers
        ]
