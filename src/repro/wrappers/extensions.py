"""Extension micro-generators beyond the paper's core set.

The generator architecture's selling point ([5]) is that new features
drop in as micro-generators and compose with the existing ones.  Two
extensions exercise that claim:

* :class:`RetryGen` — transparently retries calls that fail with a
  *transient* errno (EINTR/EIO-style), a classic availability wrapper.
  Since the recovery subsystem landed this is a thin preset over
  :class:`repro.recovery.RetryGen`: a fixed attempt budget and errno
  set instead of a full :class:`~repro.recovery.RecoveryPolicy`;
* :class:`RateLimitGen` — refuses calls beyond a per-function budget, a
  denial-of-service damper for wrapped services.

Both are registered under the standard registry names ``retry`` and
``rate limit`` and can be added to any :class:`WrapperSpec`.
"""

from __future__ import annotations

from typing import Set

from repro.recovery import RecoveryPolicy
from repro.recovery import RetryGen as _PolicyRetryGen
from repro.runtime.process import Errno
from repro.telemetry import CallEvent
from repro.wrappers.generators import error_return_value
from repro.wrappers.microgen import (
    CallFrame,
    Fragment,
    MicroGenerator,
    RuntimeHooks,
    WrapperUnit,
)

#: errnos considered transient (worth retrying)
TRANSIENT_ERRNOS: Set[int] = {Errno.EINTR, Errno.EIO}


class RetryGen(_PolicyRetryGen):
    """Retries transiently-failing calls up to ``attempts`` times.

    A compatibility preset over the recovery subsystem's retry
    generator: ``RetryGen(attempts)`` is the standing policy "retry
    every function's transient failures up to ``attempts`` times", with
    this module's :data:`TRANSIENT_ERRNOS` set.  Runtime behaviour
    (bounded re-execution, deterministic fuel backoff, RecoveryEvent
    telemetry) comes from the shared implementation.
    """

    def __init__(self, attempts: int = 3):
        self.attempts = attempts
        super().__init__(RecoveryPolicy(
            actions={"transient_errno": "retry"},
            max_retries=attempts,
            transient_errnos=tuple(sorted(TRANSIENT_ERRNOS)),
        ))

    def c_fragment(self, unit: WrapperUnit) -> Fragment:
        proto = unit.prototype
        args = ", ".join(p.name for p in proto.params)
        assign = "" if proto.return_type.is_void else "ret = "
        return Fragment(
            generator=self.name,
            prefix="    int retry_budget = %d;\n" % self.attempts,
            postfix=(
                "    while (retry_budget-- > 0 && healers_is_transient(errno))\n"
                f"        {assign}(*addr_{proto.name})({args});\n"
            ),
        )


class RateLimitGen(MicroGenerator):
    """Refuses calls past a per-function budget (a DoS damper)."""

    name = "rate limit"

    def __init__(self, budget: int = 10_000):
        self.budget = budget

    def c_fragment(self, unit: WrapperUnit) -> Fragment:
        error_value = (
            "NULL" if unit.prototype.return_type.is_pointer else "-1"
        )
        body = (
            f"    if (++rate_limit_count[{unit.index}] > {self.budget})\n"
            f"        {{ errno = EAGAIN; return {error_value}; }}\n"
        )
        if unit.prototype.return_type.is_void:
            body = (
                f"    if (++rate_limit_count[{unit.index}] > {self.budget})\n"
                "        { errno = EAGAIN; return; }\n"
            )
        return Fragment(
            generator=self.name,
            globals="static unsigned long rate_limit_count[MAX_FUNCTIONS];\n",
            prefix=body,
        )

    def runtime_hooks(self, unit: WrapperUnit) -> RuntimeHooks:
        budget = self.budget
        error_value = error_return_value(
            unit.prototype, unit.decl.error_return if unit.decl else ""
        )
        # the /seen budget counter is read back on every call, so it
        # stays a direct mutation; the /ratelimited tally is telemetry
        state = unit.state
        emit = unit.bus.emit
        name = unit.name
        key = name + "/ratelimited"

        def limit(frame: CallFrame) -> None:
            if frame.skip_call:
                return
            state.calls[name + "/seen"] += 1
            if state.calls[name + "/seen"] > budget:
                emit(CallEvent(key))
                frame.skip_call = True
                frame.ret = error_value
                frame.process.errno = Errno.EINTR  # closest to EAGAIN here

        return RuntimeHooks(generator=self.name, prefix=limit)


def register_extensions(registry, retry_attempts: int = 3,
                        rate_budget: int = 10_000) -> None:
    """Add the extension generators to a generator registry.

    The default registry already carries the recovery subsystem's
    ``retry`` generator; names that are taken are left in place rather
    than clobbered.
    """
    for generator in (RetryGen(retry_attempts), RateLimitGen(rate_budget)):
        if generator.name not in registry:
            registry.register(generator)
