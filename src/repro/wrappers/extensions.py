"""Extension micro-generators beyond the paper's core set.

The generator architecture's selling point ([5]) is that new features
drop in as micro-generators and compose with the existing ones.  Two
extensions exercise that claim:

* :class:`RetryGen` — transparently retries calls that fail with a
  *transient* errno (EINTR/EIO-style), a classic availability wrapper;
* :class:`RateLimitGen` — refuses calls beyond a per-function budget, a
  denial-of-service damper for wrapped services.

Both are registered under the standard registry names ``retry`` and
``rate limit`` and can be added to any :class:`WrapperSpec`.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.runtime.process import Errno
from repro.telemetry import CallEvent
from repro.wrappers.generators import error_return_value
from repro.wrappers.microgen import (
    CallFrame,
    Fragment,
    MicroGenerator,
    RuntimeHooks,
    WrapperUnit,
)

#: errnos considered transient (worth retrying)
TRANSIENT_ERRNOS: Set[int] = {Errno.EINTR, Errno.EIO}


class RetryGen(MicroGenerator):
    """Retries transiently-failing calls up to ``attempts`` times.

    Placed before ``caller`` in the generator list, its postfix runs
    *after* the call and re-invokes the next definition while the result
    matches the function's error convention and errno is transient.
    """

    name = "retry"

    def __init__(self, attempts: int = 3):
        self.attempts = attempts

    def c_fragment(self, unit: WrapperUnit) -> Fragment:
        proto = unit.prototype
        args = ", ".join(p.name for p in proto.params)
        assign = "" if proto.return_type.is_void else "ret = "
        return Fragment(
            generator=self.name,
            prefix="    int retry_budget = %d;\n" % self.attempts,
            postfix=(
                "    while (retry_budget-- > 0 && healers_is_transient(errno))\n"
                f"        {assign}(*addr_{proto.name})({args});\n"
            ),
        )

    def runtime_hooks(self, unit: WrapperUnit) -> RuntimeHooks:
        attempts = self.attempts
        error_value = error_return_value(
            unit.prototype, unit.decl.error_return if unit.decl else ""
        )
        resolve_next = unit.resolve_next
        emit = unit.bus.emit
        name = unit.name

        def maybe_retry(frame: CallFrame) -> None:
            if frame.skip_call:
                return
            budget = attempts
            while (budget > 0 and frame.ret == error_value
                   and frame.process.errno in TRANSIENT_ERRNOS):
                budget -= 1
                emit(CallEvent(name + "/retry"))
                frame.process.errno = 0
                frame.ret = resolve_next()(frame.process, *frame.all_args)

        return RuntimeHooks(generator=self.name, postfix=maybe_retry)


class RateLimitGen(MicroGenerator):
    """Refuses calls past a per-function budget (a DoS damper)."""

    name = "rate limit"

    def __init__(self, budget: int = 10_000):
        self.budget = budget

    def c_fragment(self, unit: WrapperUnit) -> Fragment:
        error_value = (
            "NULL" if unit.prototype.return_type.is_pointer else "-1"
        )
        body = (
            f"    if (++rate_limit_count[{unit.index}] > {self.budget})\n"
            f"        {{ errno = EAGAIN; return {error_value}; }}\n"
        )
        if unit.prototype.return_type.is_void:
            body = (
                f"    if (++rate_limit_count[{unit.index}] > {self.budget})\n"
                "        { errno = EAGAIN; return; }\n"
            )
        return Fragment(
            generator=self.name,
            globals="static unsigned long rate_limit_count[MAX_FUNCTIONS];\n",
            prefix=body,
        )

    def runtime_hooks(self, unit: WrapperUnit) -> RuntimeHooks:
        budget = self.budget
        error_value = error_return_value(
            unit.prototype, unit.decl.error_return if unit.decl else ""
        )
        # the /seen budget counter is read back on every call, so it
        # stays a direct mutation; the /ratelimited tally is telemetry
        state = unit.state
        emit = unit.bus.emit
        name = unit.name
        key = name + "/ratelimited"

        def limit(frame: CallFrame) -> None:
            if frame.skip_call:
                return
            state.calls[name + "/seen"] += 1
            if state.calls[name + "/seen"] > budget:
                emit(CallEvent(key))
                frame.skip_call = True
                frame.ret = error_value
                frame.process.errno = Errno.EINTR  # closest to EAGAIN here

        return RuntimeHooks(generator=self.name, prefix=limit)


def register_extensions(registry, retry_attempts: int = 3,
                        rate_budget: int = 10_000) -> None:
    """Add the extension generators to a generator registry."""
    registry.register(RetryGen(retry_attempts))
    registry.register(RateLimitGen(rate_budget))
