"""Flexible wrapper generation: micro-generators, composer, backends."""

from repro.wrappers.c_backend import render_function, render_library
from repro.wrappers.composer import (
    BACKENDS,
    BuiltWrapper,
    WrapperFactory,
    WrapperSpec,
    units_for,
)
from repro.wrappers.fastpath import compile_wrapper
from repro.wrappers.generators import (
    ArgCheckGen,
    CallCounterGen,
    CallerGen,
    CollectErrorsGen,
    ExectimeGen,
    FuncErrorsGen,
    LogCallGen,
    PrototypeGen,
    error_return_value,
)
from repro.wrappers.microgen import (
    CallFrame,
    Fragment,
    GeneratorRegistry,
    MicroGenerator,
    RuntimeHooks,
    WrapperUnit,
    compose_wrapper,
)
from repro.wrappers.presets import (
    HARDENED,
    LOGGING,
    PRESETS,
    PROFILING,
    RECOVERY,
    ROBUSTNESS,
    SECURITY,
    default_generator_registry,
    full_coverage_api,
)
from repro.wrappers.state import (
    SecurityEvent,
    ViolationRecord,
    WrapperState,
)

__all__ = [
    "ArgCheckGen",
    "BACKENDS",
    "BuiltWrapper",
    "CallCounterGen",
    "CallerGen",
    "CallFrame",
    "CollectErrorsGen",
    "ExectimeGen",
    "Fragment",
    "FuncErrorsGen",
    "GeneratorRegistry",
    "HARDENED",
    "LOGGING",
    "LogCallGen",
    "MicroGenerator",
    "PRESETS",
    "PROFILING",
    "PrototypeGen",
    "RECOVERY",
    "ROBUSTNESS",
    "RuntimeHooks",
    "SECURITY",
    "SecurityEvent",
    "ViolationRecord",
    "WrapperFactory",
    "WrapperSpec",
    "WrapperState",
    "WrapperUnit",
    "compile_wrapper",
    "compose_wrapper",
    "default_generator_registry",
    "error_return_value",
    "full_coverage_api",
    "render_function",
    "render_library",
    "units_for",
]
