"""Wrapper-type presets: the Fig. 1 wrapper taxonomy.

* **profiling** — exactly the six micro-generators visible in Fig. 3:
  prototype, function exectime, collect errors, func errors, call
  counter, caller.
* **robustness** — argument checks from the derived robust API; invalid
  calls become error returns instead of crashes/hangs.  Built over an
  introspected document (:func:`full_coverage_api`) the checks cover
  every registry function, not just the campaign-probed subset.
* **security** — heap-overflow containment (size table, bounds, %n,
  safe gets, heap verification); violations terminate the program.
* **logging** — call log for later failure diagnosis.
* **hardened** — robustness + security combined (micro-generators
  compose, which is the architecture's point).
* **recovery** — the security features plus the retry generator, with
  the violation response (contain / repair / retry / escalate) chosen by
  the policy's :class:`~repro.recovery.RecoveryPolicy`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # runtime import would be circular: security.policy
    from repro.security.policy import SecurityPolicy  # embeds recovery,
    # which builds on the wrapper base classes this package defines

from repro.wrappers.composer import WrapperSpec
from repro.wrappers.generators import (
    ArgCheckGen,
    CallCounterGen,
    CallerGen,
    CollectErrorsGen,
    ExectimeGen,
    FuncErrorsGen,
    LogCallGen,
    PrototypeGen,
)
from repro.wrappers.microgen import GeneratorRegistry


def default_generator_registry(
    policy: "Optional[SecurityPolicy]" = None,
) -> GeneratorRegistry:
    """All standard micro-generators (security policy configurable)."""
    # imported here: security.guard itself builds on the generator base
    # classes, so a module-level import would be circular
    from repro.recovery import RetryGen
    from repro.security.guard import HeapGuardGen

    registry = GeneratorRegistry()
    registry.register(PrototypeGen())
    registry.register(CallerGen())
    registry.register(CallCounterGen())
    registry.register(ExectimeGen())
    registry.register(CollectErrorsGen())
    registry.register(FuncErrorsGen())
    registry.register(ArgCheckGen(policy))
    registry.register(LogCallGen())
    registry.register(HeapGuardGen(policy))
    registry.register(RetryGen(policy))
    return registry


PROFILING = WrapperSpec(
    name="profiling",
    generators=[
        "prototype",
        "function exectime",
        "collect errors",
        "func errors",
        "call counter",
        "caller",
    ],
    description="execution statistics and errno distributions (Fig. 3/5)",
)

ROBUSTNESS = WrapperSpec(
    name="robustness",
    generators=["prototype", "arg check", "caller"],
    description="fault containment from the derived robust API",
)

SECURITY = WrapperSpec(
    name="security",
    generators=["prototype", "heap guard", "caller"],
    description="buffer-overflow prevention (terminates attacks)",
)

LOGGING = WrapperSpec(
    name="logging",
    generators=["prototype", "log call", "caller"],
    description="call logging for failure diagnosis",
)

HARDENED = WrapperSpec(
    name="hardened",
    # arg check first: invalid calls become error returns; the heap guard
    # then only terminates on what argument checking cannot express
    # (e.g. it repairs gets() with a bounded read)
    generators=["prototype", "arg check", "heap guard", "caller"],
    description="security + robustness combined",
)

RECOVERY = WrapperSpec(
    name="recovery",
    # the security features with the retry generator between the guard
    # and the caller: retry re-executes the innermost call, so the heap
    # guard's size table records the final (retried) result
    generators=["prototype", "heap guard", "retry", "caller"],
    description="policy-driven self-healing: contain/repair/retry/escalate",
)

PRESETS: Dict[str, WrapperSpec] = {
    spec.name: spec
    for spec in (PROFILING, ROBUSTNESS, SECURITY, LOGGING, HARDENED,
                 RECOVERY)
}


def full_coverage_api(registry, manpages, derivations=None):
    """The introspected declaration document, ready for a factory.

    A convenience for preset consumers: robustness and hardened wrapper
    libraries built over this document carry introspection-derived check
    plans for *all* registry functions — campaign verdicts where
    ``derivations`` has them, static role/ctype derivation everywhere
    else — at the same compiled fast-path dispatch cost.
    """
    from repro.robust.api import RobustAPIDocument

    return RobustAPIDocument.build_introspected(registry, manpages,
                                                derivations)
